//! Throughput smoke test for the zero-dependency parallel runtime: at
//! the reproduction workload shape (100 houses, activity 0.01) the
//! sharded simulation plus concurrent analysis must produce *exactly*
//! the sequential results — identical logs, pairing outcomes, and
//! Table 2 class counts — for every thread count.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{Analysis, AnalysisConfig};

fn smoke_cfg() -> WorkloadConfig {
    WorkloadConfig {
        // 100 houses so the simulation actually splits into shards;
        // activity 0.01 keeps the workload a quick smoke run.
        scale: ScaleKnobs { houses: 100, days: 1.0, activity: 0.01 },
        ..WorkloadConfig::default()
    }
}

fn acfg(threads: usize) -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    // The smoke workload has too few lookups per resolver for the
    // default threshold gate; lower it so SC/R classification engages.
    cfg.threshold_rule.min_lookups = 20;
    cfg.threads = threads;
    cfg
}

#[test]
fn parallel_pipeline_matches_sequential() {
    let seed = 42;
    let seq_out = Simulation::new(smoke_cfg(), seed).unwrap().with_threads(1).run();
    let par_out = Simulation::new(smoke_cfg(), seed).unwrap().with_threads(4).run();

    // The sharded simulation must emit byte-for-byte identical logs.
    assert_eq!(seq_out.logs.conns, par_out.logs.conns);
    assert_eq!(seq_out.logs.dns, par_out.logs.dns);

    let seq = Analysis::run(&seq_out.logs, acfg(1));
    let par = Analysis::run(&par_out.logs, acfg(4));

    // Pairing outcomes agree pair-for-pair.
    assert_eq!(seq.pairing.pairs.len(), par.pairing.pairs.len());
    assert!(
        seq.pairing.pairs.iter().zip(&par.pairing.pairs).all(|(a, b)| a == b),
        "pairing diverged between thread counts"
    );
    assert_eq!(seq.thresholds, par.thresholds);

    // Per-connection classes and the Table 2 counts agree exactly.
    assert_eq!(seq.classes, par.classes);
    assert_eq!(seq.class_counts(), par.class_counts());

    // Sanity: the smoke run is big enough to mean something.
    let counts = seq.class_counts();
    assert!(counts.total() > 1_000, "smoke run too small: {} conns", counts.total());
}

#[test]
fn oversubscribed_thread_count_is_harmless() {
    // More workers than shards (and than cores) must change nothing.
    let seed = 7;
    let a = Simulation::new(smoke_cfg(), seed).unwrap().with_threads(64).run();
    let b = Simulation::new(smoke_cfg(), seed).unwrap().with_threads(0).run();
    assert_eq!(a.logs.conns, b.logs.conns);
    assert_eq!(a.logs.dns, b.logs.dns);
    let ca = Analysis::run(&a.logs, acfg(64)).class_counts();
    let cb = Analysis::run(&b.logs, acfg(0)).class_counts();
    assert_eq!(ca, cb);
}
