//! Cross-backend agreement: the packet path (simulator → pcap → monitor)
//! must reproduce what the direct log backend emits, and the Zeek-style
//! TSV logs must round-trip losslessly.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{Analysis, AnalysisConfig};
use dnsctx::zeek_lite::{logfmt, Monitor, MonitorConfig};

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 4, days: 0.03, activity: 1.0 },
        services: 200,
        shared_services: 30,
        ..WorkloadConfig::default()
    }
}

#[test]
fn pcap_and_direct_backends_agree() {
    let sim = Simulation::new(small_cfg(), 11).unwrap();
    let direct = sim.run();

    let mut pcap = Vec::new();
    let (truth, frames) = sim.run_pcap(&mut pcap, 600).unwrap();
    assert!(frames > 200, "capture too small: {frames} frames");
    assert_eq!(truth.conns.len(), direct.truth.conns.len());

    let logs = Monitor::process_pcap(&pcap[..], MonitorConfig::default()).unwrap();

    // Identical connection and transaction counts.
    assert_eq!(logs.app_conns().count(), direct.logs.conns.len());
    assert_eq!(logs.dns.len(), direct.logs.dns.len());

    // Byte-exact volume agreement (TCP via sequence space, UDP via
    // declared datagram lengths).
    let monitor_bytes: u64 = logs.app_conns().map(|c| c.total_bytes()).sum();
    let direct_bytes: u64 = direct.logs.conns.iter().map(|c| c.total_bytes()).sum();
    assert_eq!(monitor_bytes, direct_bytes);

    // DNS transactions agree pairwise (both sorted by query time).
    for (m, d) in logs.dns.iter().zip(&direct.logs.dns) {
        assert_eq!(m.ts, d.ts);
        assert_eq!(m.query, d.query);
        assert_eq!(m.rtt, d.rtt);
        assert_eq!(m.client, d.client);
        assert_eq!(m.resolver, d.resolver);
        assert_eq!(m.addrs().collect::<Vec<_>>(), d.addrs().collect::<Vec<_>>());
        assert_eq!(m.min_ttl(), d.min_ttl());
    }

    // No encrypted DNS anywhere (paper's §5.1 check).
    assert_eq!(logs.stats.dot_port_packets, 0);
    assert_eq!(logs.stats.parse_errors, 0);
    assert_eq!(logs.stats.dns_decode_errors, 0);
}

#[test]
fn classification_identical_across_backends() {
    let sim = Simulation::new(small_cfg(), 23).unwrap();
    let direct = sim.run();
    let mut pcap = Vec::new();
    sim.run_pcap(&mut pcap, 600).unwrap();
    let monitor_logs = Monitor::process_pcap(&pcap[..], MonitorConfig::default()).unwrap();

    let mut cfg = AnalysisConfig::default();
    cfg.threshold_rule.min_lookups = 50;
    let a1 = Analysis::run(&direct.logs, cfg.clone());
    let a2 = Analysis::run(&monitor_logs, cfg);
    let c1 = a1.class_counts();
    let c2 = a2.class_counts();
    assert_eq!(c1.total(), c2.total());
    // Timing recovered from packets is identical to the direct emission,
    // so the classification must agree exactly.
    assert_eq!(c1, c2);
}

#[test]
fn tsv_logs_round_trip_simulated_data() {
    let sim = Simulation::new(small_cfg(), 31).unwrap();
    let out = sim.run();

    let mut conn_buf = Vec::new();
    logfmt::write_conn_log(&mut conn_buf, &out.logs.conns).unwrap();
    let conns_back = logfmt::read_conn_log(&conn_buf[..]).unwrap();
    assert_eq!(conns_back, out.logs.conns);

    let mut dns_buf = Vec::new();
    logfmt::write_dns_log(&mut dns_buf, &out.logs.dns).unwrap();
    let dns_back = logfmt::read_dns_log(&dns_buf[..]).unwrap();
    assert_eq!(dns_back, out.logs.dns);

    // Analyses over original and round-tripped logs are identical.
    let logs2 = dnsctx::zeek_lite::Logs {
        conns: conns_back,
        dns: dns_back,
        ..Default::default()
    };
    let a1 = Analysis::run(&out.logs, AnalysisConfig::default());
    let a2 = Analysis::run(&logs2, AnalysisConfig::default());
    assert_eq!(a1.class_counts(), a2.class_counts());
}

#[test]
fn snaplen_variations_do_not_change_results() {
    // DNS payloads fit in modest snaplens; byte counts come from headers
    // and sequence numbers, so a larger snaplen must change nothing.
    let sim = Simulation::new(small_cfg(), 47).unwrap();
    let mut small = Vec::new();
    sim.run_pcap(&mut small, 600).unwrap();
    let mut large = Vec::new();
    sim.run_pcap(&mut large, 65_535).unwrap();
    let l1 = Monitor::process_pcap(&small[..], MonitorConfig::default()).unwrap();
    let l2 = Monitor::process_pcap(&large[..], MonitorConfig::default()).unwrap();
    assert_eq!(l1.dns.len(), l2.dns.len());
    assert_eq!(l1.app_conns().count(), l2.app_conns().count());
    let b1: u64 = l1.app_conns().map(|c| c.total_bytes()).sum();
    let b2: u64 = l2.app_conns().map(|c| c.total_bytes()).sum();
    assert_eq!(b1, b2);
}
