//! End-to-end fault injection: corrupt a simulated capture at increasing
//! rates and hold the pipeline to its graceful-degradation contract —
//! zero panics, monotone coverage loss, and a rate-0 pass that is
//! byte-identical to the clean pipeline.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{Analysis, AnalysisConfig};
use dnsctx::pcapio::{self, PcapRecord, RecordTransform};
use dnsctx::zeek_lite::{logfmt, Logs, Monitor, MonitorConfig};
use xkit::fault::{FaultConfig, FaultInjector, RawFrame};
use xkit::rng::{SeedableRng, StdRng};

struct Corruptor(FaultInjector);

impl Corruptor {
    fn to_rec(f: RawFrame) -> PcapRecord {
        PcapRecord { ts_nanos: f.ts_nanos, orig_len: f.orig_len, data: f.data }
    }
}

impl RecordTransform for Corruptor {
    fn apply(&mut self, r: PcapRecord) -> Vec<PcapRecord> {
        let raw = RawFrame { ts_nanos: r.ts_nanos, orig_len: r.orig_len, data: r.data };
        self.0.apply(raw).into_iter().map(Self::to_rec).collect()
    }
    fn flush(&mut self) -> Vec<PcapRecord> {
        self.0.flush().into_iter().map(Self::to_rec).collect()
    }
}

fn small_capture(seed: u64) -> Vec<u8> {
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses: 5, days: 0.1, activity: 0.1 },
        ..WorkloadConfig::default()
    };
    let sim = Simulation::new(cfg, seed).expect("valid config").with_threads(1);
    let mut pcap = Vec::new();
    let (_, frames) = sim.run_pcap(&mut pcap, 65_535).expect("in-memory pcap");
    assert!(frames > 100, "workload too small to exercise anything");
    pcap
}

fn corrupt(pcap: &[u8], cfg: FaultConfig, rng: StdRng) -> Vec<u8> {
    let mut out = Vec::new();
    let mut c = Corruptor(FaultInjector::new(cfg, rng));
    pcapio::rewrite(pcap, &mut out, &mut c).expect("in-memory rewrite");
    out
}

fn render_logs(logs: &Logs) -> Vec<u8> {
    let mut buf = Vec::new();
    logfmt::write_conn_log(&mut buf, &logs.conns).expect("in-memory write");
    logfmt::write_dns_log(&mut buf, &logs.dns).expect("in-memory write");
    buf
}

#[test]
fn rate_zero_is_byte_identical_to_clean_pipeline() {
    let clean = small_capture(0);
    let master = StdRng::seed_from_u64(0);
    let rewritten = corrupt(&clean, FaultConfig::clean(), master.split(0));
    assert_eq!(rewritten, clean, "rate-0 rewrite must not change a byte of the capture");

    let base = Monitor::process_pcap(&clean[..], MonitorConfig::default()).unwrap();
    let logs = Monitor::process_pcap(&rewritten[..], MonitorConfig::default()).unwrap();
    assert_eq!(render_logs(&logs), render_logs(&base), "rate-0 logs must match the clean run");
    assert!(logs.degradation.is_clean());
    assert_eq!(logs.degradation.frames_seen, logs.degradation.frames_accepted);
}

#[test]
fn corruption_sweep_never_panics_and_degrades_monotonically() {
    let clean = small_capture(1);
    let master = StdRng::seed_from_u64(7);
    let mut cfg = AnalysisConfig::default();
    cfg.threads = 1;

    let mut acceptances = Vec::new();
    let mut coverages = Vec::new();
    for (i, rate) in [0.0, 0.05, 0.25].into_iter().enumerate() {
        let corrupted = corrupt(&clean, FaultConfig::uniform(rate), master.split(i as u64));
        let logs = Monitor::process_pcap(&corrupted[..], MonitorConfig::default())
            .expect("per-record corruption must never break the pcap container");
        let analysis = Analysis::run(&logs, cfg.clone());
        let cov = analysis.coverage();
        acceptances.push(cov.frame_acceptance);
        coverages.push(cov.pair_coverage());
    }
    for i in 1..acceptances.len() {
        assert!(
            acceptances[i] <= acceptances[i - 1] + 1e-9,
            "frame acceptance rose: {acceptances:?}"
        );
        assert!(
            coverages[i] <= coverages[i - 1] + 0.05,
            "pair coverage rose beyond slack: {coverages:?}"
        );
    }
    assert!(acceptances[2] < acceptances[0], "25% faults must reject frames");
}

#[test]
fn corruption_is_reproducible_for_a_fixed_seed() {
    let clean = small_capture(2);
    let a = corrupt(&clean, FaultConfig::uniform(0.2), StdRng::seed_from_u64(99));
    let b = corrupt(&clean, FaultConfig::uniform(0.2), StdRng::seed_from_u64(99));
    let c = corrupt(&clean, FaultConfig::uniform(0.2), StdRng::seed_from_u64(100));
    assert_eq!(a, b, "same seed must corrupt identically");
    assert_ne!(a, c, "different seeds must corrupt differently");
    assert_ne!(a, clean, "20% faults must actually change the capture");
}

#[test]
fn degradation_stats_merge_across_shards_like_one_pass() {
    let clean = small_capture(3);
    let corrupted = corrupt(&clean, FaultConfig::uniform(0.2), StdRng::seed_from_u64(5));
    let whole = Monitor::process_pcap(&corrupted[..], MonitorConfig::default()).unwrap();

    // Re-reading the same capture twice and merging must double every
    // degradation bucket — the merge is a plain sum.
    let mut twice = Monitor::process_pcap(&corrupted[..], MonitorConfig::default()).unwrap();
    let again = Monitor::process_pcap(&corrupted[..], MonitorConfig::default()).unwrap();
    twice.merge(again);
    assert_eq!(twice.degradation.frames_seen, 2 * whole.degradation.frames_seen);
    assert_eq!(twice.degradation.frames_rejected(), 2 * whole.degradation.frames_rejected());
    assert_eq!(twice.degradation.dns_rejected(), 2 * whole.degradation.dns_rejected());
}
