//! Adversarial corpus: hand-crafted hostile bytes through every parse
//! path. Each case must come back as a typed `Err` — never a panic.

use dnsctx::dns_wire::{tcp_frame, Message, Name, RrType, WireError};
use dnsctx::netpkt::{Frame, MacAddr, Packet, PktError, TcpHeader};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 2);
const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);

fn dns_query_bytes() -> Vec<u8> {
    Message::query(7, Name::parse("www.example.com").unwrap(), RrType::A).encode()
}

fn udp_frame_bytes() -> Vec<u8> {
    Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, CLIENT, RESOLVER, 54321, 53, &dns_query_bytes())
        .encode()
}

fn tcp_frame_bytes() -> Vec<u8> {
    Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, CLIENT, RESOLVER, TcpHeader::syn(49152, 443, 100), b"hello")
        .encode()
}

/// A 12-byte DNS header claiming the given section counts.
fn dns_header(qd: u16, an: u16) -> Vec<u8> {
    let mut h = vec![0u8; 12];
    h[0..2].copy_from_slice(&7u16.to_be_bytes());
    h[4..6].copy_from_slice(&qd.to_be_bytes());
    h[6..8].copy_from_slice(&an.to_be_bytes());
    h
}

#[test]
fn truncated_ethernet_header_is_err() {
    let full = udp_frame_bytes();
    for cut in 0..14 {
        let r = Packet::parse(&full[..cut], full.len());
        assert!(
            matches!(r, Err(PktError::Truncated { layer: "ethernet", .. })),
            "cut at {cut}: {r:?}"
        );
    }
}

#[test]
fn truncated_ipv4_header_is_err() {
    let full = udp_frame_bytes();
    for cut in 14..34 {
        let r = Packet::parse(&full[..cut], full.len());
        assert!(r.is_err(), "cut at {cut} must not parse: {r:?}");
    }
}

#[test]
fn truncated_transport_headers_are_err() {
    // UDP header needs 8 bytes after 34 bytes of eth+ip.
    let udp = udp_frame_bytes();
    for cut in 34..42 {
        let r = Packet::parse(&udp[..cut], udp.len());
        assert!(r.is_err(), "udp cut at {cut} must not parse: {r:?}");
    }
    // TCP header needs 20.
    let tcp = tcp_frame_bytes();
    for cut in 34..54 {
        let r = Packet::parse(&tcp[..cut], tcp.len());
        assert!(r.is_err(), "tcp cut at {cut} must not parse: {r:?}");
    }
}

#[test]
fn every_prefix_of_valid_frames_survives_parsing() {
    // The blanket guarantee behind the corpus above: no prefix length of
    // either frame panics, whatever the verdict.
    for full in [udp_frame_bytes(), tcp_frame_bytes()] {
        for cut in 0..=full.len() {
            let _ = Packet::parse(&full[..cut], full.len());
        }
    }
}

#[test]
fn self_pointing_compression_pointer_is_err() {
    // Owner name is a pointer to its own offset (12): no strictly-earlier
    // target, so the decoder must reject rather than chase it forever.
    // (Answer-section errors keep their variant; question-section errors
    // are flattened to CountMismatch, checked separately below.)
    let mut msg = dns_header(0, 1);
    msg.extend_from_slice(&[0xC0, 12]); // pointer -> offset 12 (itself)
    assert!(matches!(Message::decode(&msg), Err(WireError::BadPointer { target: 12 })));

    let mut pos = 12;
    assert!(matches!(Name::decode(&msg, &mut pos), Err(WireError::BadPointer { target: 12 })));
}

#[test]
fn forward_and_mutually_looping_pointers_are_err() {
    // Pointer at 12 targets offset 14, which holds a pointer back to 12:
    // the forward hop alone already violates strictly-decreasing targets.
    let mut msg = dns_header(0, 1);
    msg.extend_from_slice(&[0xC0, 14]);
    msg.extend_from_slice(&[0xC0, 12]);
    assert!(matches!(Message::decode(&msg), Err(WireError::BadPointer { target: 14 })));
}

#[test]
fn out_of_bounds_pointer_is_err() {
    let mut msg = dns_header(0, 1);
    msg.extend_from_slice(&[0xC0, 0xFF]); // far past the end of the message
    assert!(matches!(Message::decode(&msg), Err(WireError::BadPointer { target: 255 })));
}

#[test]
fn reserved_label_types_are_err() {
    for bad in [0x40u8, 0x80] {
        let mut msg = dns_header(0, 1);
        msg.extend_from_slice(&[bad, b'x', 0]);
        assert!(
            matches!(Message::decode(&msg), Err(WireError::ReservedLabelType(b)) if b == bad),
            "label type {bad:#04x}"
        );
    }
}

#[test]
fn hostile_question_names_are_err() {
    // The question section flattens any malformed entry to CountMismatch;
    // the point here is only that hostile names never parse or panic.
    for tail in [&[0xC0u8, 12][..], &[0xC0, 0xFF], &[0x40, b'x', 0]] {
        let mut msg = dns_header(1, 0);
        msg.extend_from_slice(tail);
        msg.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(
            Message::decode(&msg),
            Err(WireError::CountMismatch { section: "question" })
        ));
    }
}

#[test]
fn zero_length_rdata_for_address_record_is_err() {
    let mut msg = dns_header(0, 1);
    msg.extend_from_slice(&[0]); // root owner name
    msg.extend_from_slice(&1u16.to_be_bytes()); // TYPE A
    msg.extend_from_slice(&1u16.to_be_bytes()); // CLASS IN
    msg.extend_from_slice(&300u32.to_be_bytes()); // TTL
    msg.extend_from_slice(&0u16.to_be_bytes()); // RDLENGTH 0
    assert!(matches!(
        Message::decode(&msg),
        Err(WireError::RdataLengthMismatch { declared: 0, actual: 4 })
    ));
}

#[test]
fn oversized_rdata_is_err() {
    // RDLENGTH promises far more bytes than the message holds.
    let mut msg = dns_header(0, 1);
    msg.extend_from_slice(&[0]);
    msg.extend_from_slice(&16u16.to_be_bytes()); // TYPE TXT
    msg.extend_from_slice(&1u16.to_be_bytes());
    msg.extend_from_slice(&300u32.to_be_bytes());
    msg.extend_from_slice(&u16::MAX.to_be_bytes()); // RDLENGTH 65535
    msg.extend_from_slice(&[4]); // one stray byte of "rdata"
    assert!(Message::decode(&msg).is_err());
}

#[test]
fn section_counts_exceeding_message_are_err() {
    let mut msg = dns_header(9, 0); // promises 9 questions
    msg.extend_from_slice(&[0, 0, 1, 0, 1]); // delivers 1
    assert!(matches!(Message::decode(&msg), Err(WireError::CountMismatch { .. })));
}

#[test]
fn every_cut_of_a_valid_message_is_err_not_panic() {
    let full = {
        let q = Message::query(3, Name::parse("cut.example.com").unwrap(), RrType::A);
        let mut resp = q.answer_template();
        resp.answers.push(dnsctx::dns_wire::Record::a(
            Name::parse("cut.example.com").unwrap(),
            300,
            Ipv4Addr::new(192, 0, 2, 1),
        ));
        resp.encode()
    };
    assert!(Message::decode(&full).is_ok());
    for cut in 0..full.len() {
        assert!(Message::decode(&full[..cut]).is_err(), "cut at {cut} must be Err");
    }
}

#[test]
fn mid_record_tcp_stream_cuts_are_err_not_panic() {
    let payload = dns_query_bytes();
    let mut stream = tcp_frame::frame(&payload);
    stream.extend_from_slice(&tcp_frame::frame(&payload));
    assert_eq!(tcp_frame::deframe_all(&stream).unwrap().len(), 2);
    // Cutting anywhere inside the second message leaves a trailing
    // partial frame: deframe_all must reject it, and what does deframe
    // must still decode or error cleanly.
    for cut in (payload.len() + 3)..stream.len() {
        let cut_stream = &stream[..cut];
        assert!(tcp_frame::deframe_all(cut_stream).is_err(), "cut at {cut}");
        if let Ok(Some((msg, _))) = tcp_frame::deframe(cut_stream) {
            let _ = Message::decode(msg);
        }
    }
    // A length prefix promising bytes that never arrive is a clean error.
    let mut lying = 500u16.to_be_bytes().to_vec();
    lying.extend_from_slice(&[0; 20]);
    assert!(matches!(tcp_frame::deframe_all(&lying), Err(WireError::BadTcpFrame)));
}
