//! End-to-end counter invariants for the observability layer.
//!
//! Runs the full packet pipeline (simulate → ring → monitor → analysis)
//! with every stage contributing to one merged [`Metrics`] snapshot, then
//! checks the accounting identities that make the counters trustworthy:
//! frames in balance against accepted + rejected, class counts partition
//! the connection population, a clean run carries zero `fault.*` damage,
//! and the snapshot is identical for 1/2/8 worker threads.
//!
//! The pipeline is fed through the in-memory ring `RecordSource` — the
//! zero-serialization path — and one regression pin re-runs it through
//! the classic pcap-bytes file backend and demands the same snapshot.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{Analysis, AnalysisConfig};
use dnsctx::obskit::Metrics;
use dnsctx::pcapio::{self, Backpressure, RecordSource};
use dnsctx::xkit::fault::{FaultConfig, FaultInjector, RawFrame};
use dnsctx::xkit::rng::{SeedableRng, StdRng};
use dnsctx::zeek_lite::{Monitor, MonitorConfig, Timestamp};

/// 30 houses spans two simulation shards (25 houses per shard), so the
/// thread-invariance checks exercise a real multi-shard merge.
fn small_cfg() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 30, days: 0.05, activity: 1.0 },
        services: 300,
        shared_services: 40,
        ..WorkloadConfig::default()
    }
}

/// The whole packet pipeline, instrumented: simulator frames cross an
/// in-memory ring into the monitor, and every stage's counters merge
/// into the returned snapshot.
fn pipeline_metrics(threads: usize) -> Metrics {
    let sim = Simulation::new(small_cfg(), 9).unwrap().with_threads(threads);
    let (mut tx, mut rx) = pcapio::ring::channel(1 << 18, 65_535, Backpressure::Block);
    let producer = std::thread::spawn(move || {
        let (_truth, _frames, m) = sim.run_ring(&mut tx);
        m
    });

    let mut monitor = Monitor::new(MonitorConfig::default());
    while let Some(record) = rx.next().unwrap() {
        monitor.handle_frame(Timestamp(record.ts_nanos), record.data, record.orig_len);
    }
    let mut m = producer.join().unwrap();
    m.merge(&rx.metrics());
    let logs = monitor.finish();
    m.merge(&logs.metrics());

    let mut acfg = AnalysisConfig::default();
    acfg.threads = threads;
    m.merge(&Analysis::run(&logs, acfg).metrics());
    m
}

/// The same pipeline over the serialized file backend (pcap bytes in
/// memory, pulled through the seam's file source).
fn file_pipeline_metrics(threads: usize) -> Metrics {
    let sim = Simulation::new(small_cfg(), 9).unwrap().with_threads(threads);
    let mut pcap = Vec::new();
    let (_truth, _frames, mut m) = sim.run_pcap_observed(&mut pcap, 65_535).unwrap();

    let mut source = pcapio::source::file(&pcap[..]).unwrap();
    let mut monitor = Monitor::new(MonitorConfig::default());
    while let Some(record) = source.next().unwrap() {
        monitor.handle_frame(Timestamp(record.ts_nanos), record.data, record.orig_len);
    }
    m.merge(&source.metrics());
    let logs = monitor.finish();
    m.merge(&logs.metrics());

    let mut acfg = AnalysisConfig::default();
    acfg.threads = threads;
    m.merge(&Analysis::run(&logs, acfg).metrics());
    m
}

#[test]
fn frame_accounting_balances() {
    let m = pipeline_metrics(1);
    // Every frame the ring delivered reached the monitor...
    assert!(m.counter("capture.frames_read") > 1_000);
    assert_eq!(m.counter("capture.frames_read"), m.counter("zeek.frames_seen"));
    assert_eq!(m.counter("capture.frames_rejected"), 0);
    // ...and the ring shed nothing: what the simulator offered is what
    // the reader consumed.
    assert_eq!(m.counter("sim.frames_written"), m.counter("capture.frames_read"));
    // ...and each one was either accepted or rejected for a counted reason.
    assert_eq!(
        m.counter("zeek.frames_seen"),
        m.counter("zeek.frames_accepted") + m.sum_counters("zeek.reject.")
    );
    // Same identity one layer up, for DNS payloads.
    assert_eq!(
        m.counter("zeek.dns_payloads"),
        m.counter("zeek.dns_accepted") + m.sum_counters("zeek.reject_dns.")
    );
}

#[test]
fn class_counts_partition_connections() {
    let m = pipeline_metrics(1);
    let total = m.sum_counters("class.");
    assert!(total > 0);
    assert_eq!(total, m.counter("pair.app_conns"));
    assert_eq!(total, m.counter("cover.app_conns"));
    // Pairing outcomes partition the same population.
    assert_eq!(
        m.counter("pair.hit") + m.counter("pair.fallback") + m.counter("pair.miss"),
        total
    );
    // Paired (hit or fallback) is what coverage reports as paired.
    assert_eq!(m.counter("pair.hit") + m.counter("pair.fallback"), m.counter("cover.paired"));
}

#[test]
fn clean_run_has_zero_fault_increments() {
    // The clean pipeline never constructs an injector: no `fault.*`
    // metric exists at all, so the damage sum is exactly zero.
    let m = pipeline_metrics(1);
    assert_eq!(m.sum_counters("fault."), 0);

    // And a rate-0 injector, if one IS constructed, passes frames through
    // untouched: `fault.io.*` counts traffic, every damage counter stays 0.
    let mut inj = FaultInjector::new(FaultConfig::uniform(0.0), StdRng::seed_from_u64(1));
    for i in 0..100u64 {
        let out = inj.apply(RawFrame { ts_nanos: i, orig_len: 64, data: vec![0xAB; 64] });
        assert_eq!(out.len(), 1);
    }
    inj.flush();
    let fm = inj.stats().to_metrics();
    assert_eq!(fm.counter("fault.io.frames_in"), 100);
    assert_eq!(fm.counter("fault.io.frames_out"), 100);
    for damage in ["dropped", "truncated", "bit_flipped", "duplicated", "reordered"] {
        assert_eq!(fm.counter(&format!("fault.{damage}")), 0, "{damage} on a rate-0 injector");
    }
}

#[test]
fn snapshot_identical_across_thread_counts() {
    let a = pipeline_metrics(1);
    let b = pipeline_metrics(2);
    let c = pipeline_metrics(8);
    assert_eq!(a.to_json(), b.to_json(), "1 vs 2 threads");
    assert_eq!(a.to_json(), c.to_json(), "1 vs 8 threads");
}

/// Regression pin for the ingestion seam: swapping the ring for the
/// serialized pcap file path may not move a single counter.
#[test]
fn snapshot_identical_across_backends() {
    assert_eq!(
        pipeline_metrics(1).to_json(),
        file_pipeline_metrics(1).to_json(),
        "ring vs file backend"
    );
}

#[test]
fn study_metrics_facade_agrees_with_views() {
    let study = dnsctx::pipeline::quick_study(4, 0.2, 7);
    let m = dnsctx::obskit::study_metrics(&study);
    assert_eq!(m.counter("sim.conns"), study.sim.truth.conns.len() as u64);
    assert_eq!(m.counter("zeek.conn_rows"), study.logs().conns.len() as u64);
    assert_eq!(m.sum_counters("class."), study.analysis().class_counts().total() as u64);
}
