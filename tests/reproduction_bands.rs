//! Reproduction-band checks: at the pinned seed and default workload, the
//! measured results must land near the paper's headline numbers. These
//! are shape checks (bands and orderings), not exact matches — the
//! substrate is a simulator, not the CCZ testbed. EXPERIMENTS.md records
//! the precise values measured at each release.

use dnsctx::dns_context::{Analysis, AnalysisConfig, ConnClass};
use dnsctx::pipeline;

fn analysis_study() -> dnsctx::pipeline::Study {
    // Two days at the default (calibration) density: the class mix is
    // sensitive to absolute temporal density — cache overlap windows are
    // wall-clock — so the bands are pinned at the density the defaults
    // were calibrated for (100 houses × activity 0.1).
    let cfg = dnsctx::ccz_sim::WorkloadConfig {
        scale: dnsctx::ccz_sim::ScaleKnobs { houses: 100, days: 2.0, activity: 0.1 },
        ..dnsctx::ccz_sim::WorkloadConfig::default()
    };
    let mut study = pipeline::study_with(cfg, 42);
    // The paper's 1000-lookup popularity cut-off was chosen for a 9.2M-
    // lookup dataset; at this test's ~100k lookups the proportional cut
    // keeps the per-resolver thresholds (and Cloudflare's hit rate) from
    // collapsing to the 5 ms floor.
    study.analysis_cfg.threshold_rule.min_lookups = 300;
    study
}

fn assert_band(what: &str, value: f64, lo: f64, hi: f64) {
    assert!(
        (lo..=hi).contains(&value),
        "{what} = {value:.2} outside reproduction band [{lo}, {hi}]"
    );
}

#[test]
fn table2_class_mix_bands() {
    let study = analysis_study();
    let a = study.analysis();
    let c = a.class_counts();
    // Paper: N 7.2, LC 42.9, P 7.8, SC 26.3, R 15.7.
    assert_band("N share %", c.share_pct(ConnClass::NoDns), 3.0, 13.0);
    assert_band("LC share %", c.share_pct(ConnClass::LocalCache), 33.0, 53.0);
    assert_band("P share %", c.share_pct(ConnClass::Prefetched), 3.0, 14.0);
    assert_band("SC share %", c.share_pct(ConnClass::SharedCache), 16.0, 36.0);
    assert_band("R share %", c.share_pct(ConnClass::Resolution), 8.0, 26.0);
    // LC dominates; SC > R (the paper's ordering).
    assert!(c.local_cache > c.shared_cache);
    assert!(c.shared_cache > c.resolution);
    assert!(c.shared_cache > c.prefetched);
}

#[test]
fn blocked_share_and_hit_rate_bands() {
    let study = analysis_study();
    let a = study.analysis();
    let c = a.class_counts();
    // Paper: 42.1 % blocked; 62.6 % shared hit rate.
    assert_band("blocked share %", c.blocked_share_pct(), 28.0, 55.0);
    assert_band("shared hit rate", 100.0 * c.shared_hit_rate(), 45.0, 78.0);
}

#[test]
fn figure1_first_use_rates() {
    let study = analysis_study();
    let a = study.analysis();
    let g = a.gap_analysis();
    // Paper: 91 % within the 20 ms knee, 21 % beyond.
    assert_band("first-use within knee %", 100.0 * g.first_use_within_knee, 75.0, 99.0);
    assert_band("first-use beyond knee %", 100.0 * g.first_use_beyond_knee, 5.0, 40.0);
}

#[test]
fn figure2_delay_and_significance_bands() {
    let study = analysis_study();
    let a = study.analysis();
    let p = a.perf();
    // Paper: median 8.5 ms, p75 20 ms, 3.3 % above 100 ms.
    let median = p.delay_ms.median().unwrap();
    assert_band("blocked delay median ms", median, 1.5, 25.0);
    assert_band(
        "blocked delay >100ms share %",
        100.0 * p.delay_ms.fraction_above(100.0),
        0.2,
        12.0,
    );
    // Paper: DNS contributes >1 % for only 20 % of blocked transactions;
    // significant (both criteria) for 8.6 % of blocked / 3.6 % of all.
    let sig = a.significance();
    assert_band("significant (blocked) %", sig.both_pct, 1.0, 20.0);
    assert_band("significant (all) %", sig.both_share_of_all_pct, 0.3, 9.0);
    assert!(sig.neither_pct > 40.0, "most blocked conns are insignificant");
}

#[test]
fn section7_hit_rate_ordering() {
    let study = analysis_study();
    let a = study.analysis();
    let reports = a.platform_reports();
    let rate = |name: &str| {
        reports
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.hit_rate_pct)
            .unwrap_or(0.0)
    };
    // Paper ordering: Cloudflare 83.6 > Local 71.2 > OpenDNS 58.8 > Google 23.0.
    let (cf, local, od, goog) = (rate("Cloudflare"), rate("Local"), rate("OpenDNS"), rate("Google"));
    assert!(cf > local, "Cloudflare {cf:.1} should beat Local {local:.1}");
    assert!(local > od, "Local {local:.1} should beat OpenDNS {od:.1}");
    assert!(od > goog, "OpenDNS {od:.1} should beat Google {goog:.1}");
    assert_band("Google hit rate %", goog, 5.0, 45.0);
    assert_band("Cloudflare hit rate %", cf, 65.0, 99.0);
}

#[test]
fn table1_resolver_usage_bands() {
    let study = analysis_study();
    let a = study.analysis();
    let reports = a.platform_reports();
    let get = |name: &str| reports.iter().find(|r| r.name == name).unwrap();
    // Paper: Local 72.8 % of lookups from 92.4 % of houses; Google 12.9 %
    // of lookups from 83.5 % of houses; OpenDNS 9.4 %; Cloudflare 3.9 %.
    assert_band("Local lookups %", get("Local").lookups_pct, 55.0, 88.0);
    assert_band("Google lookups %", get("Google").lookups_pct, 5.0, 25.0);
    assert_band("OpenDNS lookups %", get("OpenDNS").lookups_pct, 3.0, 22.0);
    assert_band("Cloudflare lookups %", get("Cloudflare").lookups_pct, 0.5, 12.0);
    assert!(get("Local").houses_pct > 80.0);
    assert!(get("Google").houses_pct > 55.0);
    // Lookup share ordering matches the paper.
    assert!(get("Local").lookups_pct > get("Google").lookups_pct);
    assert!(get("Google").lookups_pct > get("Cloudflare").lookups_pct);
}

#[test]
fn section52_ttl_violations_and_prefetch() {
    let study = analysis_study();
    let a = study.analysis();
    let t = a.ttl_stats();
    // Paper: 22.2 % of LC, 12.4 % of P use expired records; LC rate higher.
    assert_band("LC violation %", t.lc_violation_share_pct, 8.0, 38.0);
    assert_band("P violation %", t.p_violation_share_pct, 1.0, 30.0);
    assert!(
        t.lc_violation_share_pct > t.p_violation_share_pct,
        "LC ({:.1}) should out-violate P ({:.1})",
        t.lc_violation_share_pct,
        t.p_violation_share_pct
    );
    // Paper: unused lookups 37.8 %; 22.3 % of speculative lookups used;
    // P use-gap median 310 s < LC 1033 s.
    assert_band("unused lookups %", t.unused_share_pct, 20.0, 55.0);
    assert_band("speculative used %", t.speculative_used_share_pct, 10.0, 45.0);
    let (p_med, lc_med) = (
        t.p_use_gap_median_secs.unwrap(),
        t.lc_use_gap_median_secs.unwrap(),
    );
    assert!(
        p_med < lc_med,
        "P median use gap ({p_med:.0}s) should undercut LC ({lc_med:.0}s)"
    );
}

#[test]
fn section8_whole_house_and_refresh_bands() {
    let study = analysis_study();
    let a = study.analysis();
    let wh = dnsctx::cache_sim::whole_house(study.logs(), &a);
    // Paper: 9.8 % of all conns move; 22 % of SC, 25 % of R benefit.
    assert_band("whole-house moved %", wh.moved_share_of_all_pct, 3.0, 20.0);
    assert_band("SC benefit %", wh.sc_benefit_pct, 8.0, 45.0);
    // R-side absorption is structurally underestimated (see
    // EXPERIMENTS.md): only fan-out platforms produce absorbable R repeats.
    assert_band("R benefit %", wh.r_benefit_pct, 1.5, 45.0);

    let r = dnsctx::cache_sim::refresh(
        study.logs(),
        &a,
        dnsctx::zeek_lite::Duration::from_secs(10),
    );
    // Paper: hits 61 % → 96.6 %; lookups ×144.
    assert_band("standard hit %", r.standard.hit_pct, 45.0, 80.0);
    assert_band("refresh hit %", r.refresh_all.hit_pct, 72.0, 99.9);
    assert!(
        r.lookup_ratio() > 20.0,
        "refresh cost blow-up only {:.0}x (paper: 144x)",
        r.lookup_ratio()
    );
}

#[test]
fn pairing_ambiguity_band() {
    let study = analysis_study();
    let a = study.analysis();
    // Paper: 82 % of paired connections have a single candidate.
    assert_band(
        "single-candidate share %",
        100.0 * a.pairing.single_candidate_share(),
        60.0,
        97.0,
    );
}

#[test]
fn figure3_artifact_and_threshold_sanity() {
    let study = analysis_study();
    let mut cfg = AnalysisConfig::default();
    cfg.threshold_rule.min_lookups = 200;
    let a = Analysis::run(study.logs(), cfg);
    let reports = a.platform_reports();
    let google = reports.iter().find(|r| r.name == "Google").unwrap();
    // Paper: 23.5 % of Google's blocked conns are connectivitycheck.
    assert_band("Google artifact share %", google.artifact_conn_share_pct, 5.0, 50.0);
    // Per-resolver thresholds were derived for the popular resolvers.
    assert!(
        a.thresholds.len() >= 4,
        "expected thresholds for the popular resolver addresses: {:?}",
        a.thresholds
    );
}
