//! Live-plane validity: a scrape of the observability hub at any epoch
//! boundary is a valid prefix of the final snapshot — every counter
//! monotone across scrapes and bounded by its final value, the frame
//! accounting identity intact at every instant, finish-only keys absent
//! until finish — and the HTTP endpoints answer while the stream run is
//! still in flight.

use std::collections::BTreeMap;

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{stream, AnalysisConfig};
use dnsctx::obskit::{http, json, Metrics, ObsHub};
use dnsctx::pcapio;
use dnsctx::zeek_lite::{Duration, MonitorConfig};

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 4, days: 0.03, activity: 1.0 },
        services: 200,
        shared_services: 30,
        ..WorkloadConfig::default()
    }
}

fn analysis_cfg() -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    cfg.threshold_rule.min_lookups = 50;
    cfg.threads = 1;
    cfg
}

fn capture() -> Vec<u8> {
    let sim = Simulation::new(small_cfg(), 42).unwrap();
    let mut pcap = Vec::new();
    sim.run_pcap(&mut pcap, 600).unwrap();
    pcap
}

/// The counters of a snapshot, read back from its canonical JSON: bare
/// numbers are counters; `{"gauge":..}` and `{"hist":..}` objects are
/// not and carry no prefix guarantee.
fn counters(m: &Metrics) -> BTreeMap<String, u64> {
    let v = json::parse(&m.to_json()).expect("canonical metrics JSON parses");
    v.as_obj()
        .expect("metrics JSON is an object")
        .iter()
        .filter_map(|(k, val)| val.as_f64().map(|n| (k.clone(), n as u64)))
        .collect()
}

/// `zeek.frames_seen == zeek.frames_accepted + Σ zeek.reject.*` — the
/// degradation identity must hold in every published snapshot, not just
/// the final one.
fn assert_frame_identity(cs: &BTreeMap<String, u64>, when: &str) {
    let seen = cs.get("zeek.frames_seen").copied().unwrap_or(0);
    let accepted = cs.get("zeek.frames_accepted").copied().unwrap_or(0);
    let rejected: u64 = cs
        .iter()
        .filter(|(k, _)| k.starts_with("zeek.reject."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(seen, accepted + rejected, "frame identity broken {when}");
}

#[test]
fn midrun_scrapes_are_valid_prefixes_of_the_final_snapshot() {
    let pcap = capture();
    let hub = ObsHub::default();
    let mut scrapes: Vec<Metrics> = Vec::new();
    let mut source = pcapio::source::file(&pcap[..]).unwrap();
    let result = stream::process_source_observed(
        &mut source,
        Duration::from_secs(30),
        MonitorConfig::default(),
        analysis_cfg(),
        Some(&hub),
        |_| scrapes.push(hub.metrics()),
    )
    .unwrap();
    assert!(scrapes.len() > 2, "workload too small to produce mid-run scrapes");

    // finish() publishes the settled snapshot: the hub's final state is
    // exactly the merged analysis + stream metrics.
    let mut merged = result.analysis_metrics.clone();
    merged.merge(&result.stream_metrics);
    assert_eq!(hub.metrics().to_json(), merged.to_json());
    let final_cs = counters(&merged);

    let mut prev: Option<BTreeMap<String, u64>> = None;
    for (i, m) in scrapes.iter().enumerate() {
        let cs = counters(m);
        assert_frame_identity(&cs, &format!("at scrape {i}"));

        // Monotone: every counter a previous scrape carried is still
        // there and never decreased.
        if let Some(prev) = &prev {
            for (k, v) in prev {
                let now = cs.get(k).copied().unwrap_or(0);
                assert!(now >= *v, "counter {k} fell from {v} to {now} at scrape {i}");
            }
        }

        // Prefix: no mid-run counter exceeds its final value.
        for (k, v) in &cs {
            let fin = final_cs.get(k).copied().unwrap_or(0);
            assert!(*v <= fin, "counter {k} = {v} at scrape {i} exceeds final {fin}");
        }

        // The deferred SC/R split settles only at finish.
        assert!(
            !cs.contains_key("class.shared_cache") && !cs.contains_key("class.resolution"),
            "finish-only keys leaked into mid-run scrape {i}"
        );
        prev = Some(cs);
    }
    assert_frame_identity(&final_cs, "at finish");
    assert!(final_cs.contains_key("class.shared_cache"));
}

#[test]
fn endpoints_answer_during_a_live_run() {
    let pcap = capture();
    let hub = ObsHub::default();
    let server = http::serve("127.0.0.1:0", "dnsctx", hub.clone()).unwrap();
    let addr = server.addr().to_string();

    // Scrape over HTTP from inside the sink: the run is mid-flight, the
    // monitor mid-state, and the endpoints must still answer with an
    // internally consistent document.
    let mut midrun_snapshot = None;
    let mut source = pcapio::source::file(&pcap[..]).unwrap();
    let result = stream::process_source_observed(
        &mut source,
        Duration::from_secs(30),
        MonitorConfig::default(),
        analysis_cfg(),
        Some(&hub),
        |_| {
            if midrun_snapshot.is_none() {
                let (status, body) = http::get(&addr, "/healthz").expect("live /healthz");
                assert_eq!((status, body.as_str()), (200, "ok\n"));
                let (status, body) = http::get(&addr, "/snapshot").expect("live /snapshot");
                assert_eq!(status, 200);
                midrun_snapshot = Some(body);
            }
        },
    )
    .unwrap();
    let midrun = midrun_snapshot.expect("at least one epoch boundary");

    // Settle the hub the way the CLI does after the run.
    let mut merged = result.analysis_metrics.clone();
    merged.merge(&result.stream_metrics);
    hub.publish_metrics(merged.clone());

    // The mid-run scrape folds back into Metrics and is a prefix of the
    // final snapshot.
    let parsed =
        Metrics::from_json_value(&json::parse(&midrun).unwrap()).expect("snapshot folds back");
    for (k, v) in counters(&parsed) {
        assert!(v <= merged.counter(&k), "mid-run {k} = {v} exceeds final");
    }

    // Settled: /metrics is exactly the Prometheus rendering of /snapshot.
    let (s1, snap) = http::get(&addr, "/snapshot").unwrap();
    let (s2, prom) = http::get(&addr, "/metrics").unwrap();
    assert_eq!((s1, s2), (200, 200));
    let settled = Metrics::from_json_value(&json::parse(&snap).unwrap()).unwrap();
    assert_eq!(prom, settled.to_prometheus("dnsctx"));
    assert_eq!(snap, merged.to_json());

    // /events carries the flight ring (epoch releases at minimum) and
    // /spans is a valid (here empty) Chrome trace array.
    let (status, events) = http::get(&addr, "/events").unwrap();
    assert_eq!(status, 200);
    let ev = json::parse(&events).unwrap();
    assert!(
        ev.get("events")
            .and_then(|e| e.as_arr())
            .is_some_and(|e| e.iter().any(|r| {
                r.get("kind").and_then(|k| k.as_str()) == Some("epoch.release")
            })),
        "flight ring must have recorded epoch releases"
    );
    let (status, spans) = http::get(&addr, "/spans").unwrap();
    assert_eq!(status, 200);
    assert!(json::parse(&spans).unwrap().as_arr().is_some());

    drop(server);
}
