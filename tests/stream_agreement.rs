//! Streamed vs batch agreement: the bounded-memory epoch pipeline must be
//! indistinguishable from the batch pipeline — byte-identical rendered
//! logs, identical classification counts, and an identical metrics
//! snapshot — for every window size and thread count, while holding
//! strictly less state than the batch path for any finite window.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{stream, Analysis, AnalysisConfig};
use dnsctx::zeek_lite::{logfmt, Duration, Logs, Monitor, MonitorConfig};

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 4, days: 0.03, activity: 1.0 },
        services: 200,
        shared_services: 30,
        ..WorkloadConfig::default()
    }
}

fn analysis_cfg(threads: usize) -> AnalysisConfig {
    let mut cfg = AnalysisConfig::default();
    cfg.threshold_rule.min_lookups = 50;
    cfg.threads = threads;
    cfg
}

fn render_logs(logs: &Logs) -> Vec<u8> {
    let mut buf = Vec::new();
    logfmt::write_conn_log(&mut buf, &logs.conns).unwrap();
    logfmt::write_dns_log(&mut buf, &logs.dns).unwrap();
    buf
}

/// One seed-42 capture, its batch pipeline, and the batch snapshot that
/// every streamed run must reproduce.
struct Batch {
    pcap: Vec<u8>,
    rendered: Vec<u8>,
    metrics_json: String,
    class_counts: dnsctx::dns_context::ClassCounts,
    conn_rows: u64,
    dns_rows: u64,
}

fn batch_oracle() -> Batch {
    let sim = Simulation::new(small_cfg(), 42).unwrap();
    let mut pcap = Vec::new();
    sim.run_pcap(&mut pcap, 600).unwrap();
    let logs = Monitor::process_pcap(&pcap[..], MonitorConfig::default()).unwrap();
    let analysis = Analysis::run(&logs, analysis_cfg(1));
    let mut metrics = logs.metrics();
    metrics.merge(&analysis.metrics());
    Batch {
        rendered: render_logs(&logs),
        metrics_json: metrics.to_json(),
        class_counts: analysis.class_counts(),
        conn_rows: logs.conns.len() as u64,
        dns_rows: logs.dns.len() as u64,
        pcap,
    }
}

/// Run the streaming engine over the capture, concatenating the per-epoch
/// releases *in release order* — no re-sort — into one `Logs`.
fn streamed(batch: &Batch, window: Duration, threads: usize) -> (Logs, stream::StreamResult) {
    let mut out = Logs::default();
    let result = stream::process_pcap(
        &batch.pcap[..],
        window,
        MonitorConfig::default(),
        analysis_cfg(threads),
        |epoch| {
            out.conns.extend(epoch.conns);
            out.dns.extend(epoch.dns);
        },
    )
    .unwrap();
    out.conns.extend(result.tail.conns.iter().cloned());
    out.dns.extend(result.tail.dns.iter().cloned());
    (out, result)
}

#[test]
fn streamed_output_is_byte_identical_to_batch() {
    let batch = batch_oracle();
    assert!(batch.conn_rows > 100 && batch.dns_rows > 100, "workload too small to be probative");

    for window_secs in [30u64, 300, 0] {
        for threads in [1usize, 8] {
            let window = Duration::from_secs(window_secs);
            let (logs, result) = streamed(&batch, window, threads);

            // The concatenated releases ARE the batch-sorted logs: same
            // rows, same order, byte for byte — without ever re-sorting.
            assert_eq!(
                render_logs(&logs),
                batch.rendered,
                "rendered logs diverged at window={window_secs}s threads={threads}"
            );

            // Table 2 and the whole metrics snapshot agree exactly.
            assert_eq!(
                result.class_counts, batch.class_counts,
                "class counts diverged at window={window_secs}s threads={threads}"
            );
            assert_eq!(
                result.analysis_metrics.to_json(),
                batch.metrics_json,
                "metrics snapshot diverged at window={window_secs}s threads={threads}"
            );
        }
    }
}

#[test]
fn finite_windows_bound_live_state() {
    let batch = batch_oracle();
    for window_secs in [30u64, 300] {
        let (_, result) = streamed(&batch, Duration::from_secs(window_secs), 1);
        let s = &result.stream_metrics;
        let peak_flows = s.gauge("stream.peak_live_flows").unwrap_or(f64::MAX) as u64;
        let peak_answers = s.gauge("stream.peak_live_answers").unwrap_or(f64::MAX) as u64;
        assert!(
            peak_flows < batch.conn_rows,
            "window={window_secs}s: peak live flows {peak_flows} not below {} rows",
            batch.conn_rows
        );
        assert!(
            peak_answers < batch.dns_rows,
            "window={window_secs}s: peak live answers {peak_answers} not below {} rows",
            batch.dns_rows
        );
        assert!(s.counter("stream.epochs") > 1, "finite window must produce multiple epochs");
        assert!(
            s.counter("stream.evicted_answers") > 0,
            "finite window must actually evict expired answers"
        );
    }

    // The unwindowed run is the degenerate case: one epoch, no eviction,
    // everything released at finish.
    let (_, result) = streamed(&batch, Duration::from_secs(0), 1);
    assert_eq!(result.stream_metrics.counter("stream.epochs"), 1);
    assert_eq!(result.stream_metrics.counter("stream.evicted_flows"), 0);
}
