//! End-to-end semantic checks: the paper's heuristics, run over the
//! observable logs alone, must largely recover the simulator's ground
//! truth — and the derived analyses must satisfy their invariants.

use dnsctx::cache_sim;
use dnsctx::ccz_sim::{ConnClass as TruthClass, ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{Analysis, AnalysisConfig, ConnClass};
use dnsctx::zeek_lite::Duration;

fn study() -> (dnsctx::ccz_sim::SimOutput, AnalysisConfig) {
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses: 12, days: 0.3, activity: 1.0 },
        ..WorkloadConfig::default()
    };
    let out = Simulation::new(cfg, 42).unwrap().run();
    let mut acfg = AnalysisConfig::default();
    acfg.threshold_rule.min_lookups = 200;
    (out, acfg)
}

fn truth_of(analysis_class: ConnClass) -> TruthClass {
    match analysis_class {
        ConnClass::NoDns => TruthClass::NoDns,
        ConnClass::LocalCache => TruthClass::LocalCache,
        ConnClass::Prefetched => TruthClass::Prefetched,
        ConnClass::SharedCache => TruthClass::SharedCache,
        ConnClass::Resolution => TruthClass::Resolution,
    }
}

#[test]
fn analysis_recovers_ground_truth_classes() {
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);

    // Connection uid = ground-truth index (LogSink contract), so the
    // analysis classification can be joined to the truth exactly.
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut blocked_agree = 0usize;
    let mut blocked_total = 0usize;
    for (pair, class) in analysis.pairing.pairs.iter().zip(&analysis.classes) {
        let conn = &out.logs.conns[pair.conn];
        let truth = &out.truth.conns[conn.uid as usize];
        total += 1;
        if truth.class == truth_of(*class) {
            agree += 1;
        }
        // Blocked-vs-not is the coarser, more important call.
        let truth_blocked = matches!(truth.class, TruthClass::SharedCache | TruthClass::Resolution);
        let ana_blocked = matches!(class, ConnClass::SharedCache | ConnClass::Resolution);
        blocked_total += 1;
        if truth_blocked == ana_blocked {
            blocked_agree += 1;
        }
    }
    let acc = agree as f64 / total as f64;
    let blocked_acc = blocked_agree as f64 / blocked_total as f64;
    assert!(total > 5_000, "too little data: {total}");
    assert!(
        acc > 0.85,
        "classification accuracy vs ground truth too low: {acc:.3} over {total}"
    );
    assert!(
        blocked_acc > 0.93,
        "blocked/non-blocked accuracy too low: {blocked_acc:.3}"
    );
}

#[test]
fn classes_partition_and_shares_sum() {
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);
    let counts = analysis.class_counts();
    assert_eq!(counts.total(), analysis.pairing.app_conn_count());
    let share_sum: f64 = ConnClass::all().iter().map(|c| counts.share_pct(*c)).sum();
    assert!((share_sum - 100.0).abs() < 1e-9, "shares sum to {share_sum}");
    // Every class occurs in a realistic workload.
    for class in ConnClass::all() {
        assert!(counts.get(class) > 0, "class {class:?} absent");
    }
}

#[test]
fn significance_quadrants_partition() {
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);
    let sig = analysis.significance();
    let sum = sig.neither_pct + sig.rel_only_pct + sig.abs_only_pct + sig.both_pct;
    assert!((sum - 100.0).abs() < 1e-9, "quadrants sum to {sum}");
    assert!(sig.both_share_of_all_pct <= sig.both_pct);
}

#[test]
fn first_use_gap_split_is_discriminative() {
    // The Figure 1 rationale: short gaps are dominated by first uses,
    // long gaps by cache reuse.
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);
    let gaps = analysis.gap_analysis();
    assert!(
        gaps.first_use_within_knee > 0.75,
        "within-knee first-use rate {:.2} (paper: 0.91)",
        gaps.first_use_within_knee
    );
    assert!(
        gaps.first_use_beyond_knee < 0.45,
        "beyond-knee first-use rate {:.2} (paper: 0.21)",
        gaps.first_use_beyond_knee
    );
    assert!(gaps.first_use_within_knee > gaps.first_use_beyond_knee + 0.3);
}

#[test]
fn shared_cache_truth_recovered_by_duration_threshold() {
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);
    // For blocked conns, compare the SC/R call against the resolver's
    // ground truth (did the platform actually answer from cache?).
    let mut agree = 0usize;
    let mut total = 0usize;
    for (pair, class) in analysis.pairing.pairs.iter().zip(&analysis.classes) {
        let ana_sc = match class {
            ConnClass::SharedCache => true,
            ConnClass::Resolution => false,
            _ => continue,
        };
        let conn = &out.logs.conns[pair.conn];
        let truth = &out.truth.conns[conn.uid as usize];
        let Some(di) = truth.dns_index else { continue };
        total += 1;
        if out.truth.dns[di].shared_cache_hit == ana_sc {
            agree += 1;
        }
    }
    let acc = agree as f64 / total as f64;
    assert!(total > 1_000);
    assert!(acc > 0.85, "SC/R recovery too weak: {acc:.3} over {total}");
}

#[test]
fn cache_simulations_have_consistent_reports() {
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);

    let wh = cache_sim::whole_house(&out.logs, &analysis);
    assert!(wh.moved <= wh.sc_conns + wh.r_conns);
    assert!(wh.moved_share_of_all_pct <= 100.0);
    assert!(wh.moved > 0, "a shared house cache must absorb something");

    let r = cache_sim::refresh(&out.logs, &analysis, Duration::from_secs(10));
    assert!((r.standard.hit_pct + r.standard.miss_pct - 100.0).abs() < 1e-9);
    assert!((r.refresh_all.hit_pct + r.refresh_all.miss_pct - 100.0).abs() < 1e-9);
    assert!(r.refresh_all.hit_pct > r.standard.hit_pct, "refreshing must help hits");
    assert!(r.refresh_all.lookups > r.standard.lookups, "refreshing must cost lookups");
    assert!(r.lookup_ratio() > 5.0, "cost blow-up should be large: {:.1}", r.lookup_ratio());

    // Selective refresh sits between the two policies.
    let sel = cache_sim::refresh_selective(
        &out.logs,
        &analysis,
        Duration::from_secs(10),
        3,
        Duration::from_secs(3_600),
    );
    assert!(sel.lookups <= r.refresh_all.lookups);
    assert!(sel.hit_pct >= r.standard.hit_pct - 1e-9);
}

#[test]
fn pairing_ambiguity_mostly_single_candidate() {
    let (out, acfg) = study();
    let analysis = Analysis::run(&out.logs, acfg);
    let share = analysis.pairing.single_candidate_share();
    assert!(
        share > 0.55 && share < 0.999,
        "single-candidate share {share:.3} (paper: 0.82) — co-hosting should create some ambiguity"
    );
}

#[test]
fn random_pairing_policy_shifts_results_only_slightly() {
    // The paper's robustness check: re-running with random candidate
    // selection must leave the high-level class mix close to the default.
    let (out, acfg) = study();
    let a1 = Analysis::run(&out.logs, acfg.clone());
    let mut cfg2 = acfg;
    cfg2.policy = dnsctx::dns_context::PairingPolicy::RandomNonExpired;
    let a2 = Analysis::run(&out.logs, cfg2);
    let c1 = a1.class_counts();
    let c2 = a2.class_counts();
    for class in ConnClass::all() {
        let d = (c1.share_pct(class) - c2.share_pct(class)).abs();
        assert!(d < 8.0, "{class:?} share moved {d:.2} points under random pairing");
    }
}
