//! End-to-end semantic checks: the paper's heuristics, run over the
//! observable logs alone, must largely recover the simulator's ground
//! truth — and the derived analyses must satisfy their invariants.
//!
//! Two shared studies over the same workload and seed:
//!
//! * `truth_study` — the direct log backend, where connection uid =
//!   ground-truth index (the LogSink contract). Only the tests that join
//!   analysis results back to the ground truth use it.
//! * `ring_study` — the packet path fed to the monitor through the
//!   in-memory ring `RecordSource`, i.e. the deployment-shaped pipeline.
//!   The monitor assigns its own uids, so no truth joins; everything
//!   else (class mix, significance, gaps, cache models, pairing) runs
//!   over these logs, and a regression pin keeps the ring byte-identical
//!   to the file backend.

use std::sync::OnceLock;

use dnsctx::cache_sim;
use dnsctx::ccz_sim::{
    ConnClass as TruthClass, ScaleKnobs, SimOutput, Simulation, WorkloadConfig,
};
use dnsctx::dns_context::{Analysis, AnalysisConfig, ConnClass};
use dnsctx::pcapio::{self, Backpressure};
use dnsctx::zeek_lite::{logfmt, Duration, Logs, Monitor, MonitorConfig};

const SEED: u64 = 42;

fn base_cfg() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 12, days: 0.3, activity: 1.0 },
        ..WorkloadConfig::default()
    }
}

fn study_acfg() -> AnalysisConfig {
    let mut acfg = AnalysisConfig::default();
    acfg.threshold_rule.min_lookups = 200;
    acfg
}

/// Direct-log study, shared across the truth-join tests.
fn truth_study() -> &'static (SimOutput, AnalysisConfig) {
    static STUDY: OnceLock<(SimOutput, AnalysisConfig)> = OnceLock::new();
    STUDY.get_or_init(|| {
        let out = Simulation::new(base_cfg(), SEED).unwrap().run();
        (out, study_acfg())
    })
}

/// Ring-driven monitor study, shared across the invariant tests: the
/// simulator pushes frames into the SPSC ring from a producer thread and
/// the monitor pulls them out through the `RecordSource` seam.
fn ring_study() -> &'static (Logs, AnalysisConfig) {
    static STUDY: OnceLock<(Logs, AnalysisConfig)> = OnceLock::new();
    STUDY.get_or_init(|| {
        let (mut tx, mut rx) = pcapio::ring::channel(1 << 20, 65_535, Backpressure::Block);
        let producer = std::thread::spawn(move || {
            let sim = Simulation::new(base_cfg(), SEED).unwrap();
            sim.run_ring(&mut tx);
        });
        let logs = Monitor::process_source(&mut rx, MonitorConfig::default()).unwrap();
        producer.join().unwrap();
        (logs, study_acfg())
    })
}

fn truth_of(analysis_class: ConnClass) -> TruthClass {
    match analysis_class {
        ConnClass::NoDns => TruthClass::NoDns,
        ConnClass::LocalCache => TruthClass::LocalCache,
        ConnClass::Prefetched => TruthClass::Prefetched,
        ConnClass::SharedCache => TruthClass::SharedCache,
        ConnClass::Resolution => TruthClass::Resolution,
    }
}

/// Regression pin for the ingestion seam: the ring-fed monitor must be
/// indistinguishable from the classic file backend over the same
/// workload — logs and monitor metrics byte-identical.
#[test]
fn ring_study_is_byte_identical_to_file_backend() {
    let (ring_logs, _) = ring_study();
    let sim = Simulation::new(base_cfg(), SEED).unwrap();
    let mut pcap = Vec::new();
    sim.run_pcap(&mut pcap, 65_535).unwrap();
    let file_logs = Monitor::process_pcap(&pcap[..], MonitorConfig::default()).unwrap();

    let render = |logs: &Logs| {
        let mut buf = Vec::new();
        logfmt::write_conn_log(&mut buf, &logs.conns).unwrap();
        logfmt::write_dns_log(&mut buf, &logs.dns).unwrap();
        buf
    };
    assert_eq!(render(ring_logs), render(&file_logs), "rendered logs must match");
    assert_eq!(
        ring_logs.metrics().render_table(),
        file_logs.metrics().render_table(),
        "monitor metrics must match"
    );
}

#[test]
fn analysis_recovers_ground_truth_classes() {
    let (out, acfg) = truth_study();
    let analysis = Analysis::run(&out.logs, acfg.clone());

    // Connection uid = ground-truth index (LogSink contract), so the
    // analysis classification can be joined to the truth exactly.
    let mut agree = 0usize;
    let mut total = 0usize;
    let mut blocked_agree = 0usize;
    let mut blocked_total = 0usize;
    for (pair, class) in analysis.pairing.pairs.iter().zip(&analysis.classes) {
        let conn = &out.logs.conns[pair.conn];
        let truth = &out.truth.conns[conn.uid as usize];
        total += 1;
        if truth.class == truth_of(*class) {
            agree += 1;
        }
        // Blocked-vs-not is the coarser, more important call.
        let truth_blocked = matches!(truth.class, TruthClass::SharedCache | TruthClass::Resolution);
        let ana_blocked = matches!(class, ConnClass::SharedCache | ConnClass::Resolution);
        blocked_total += 1;
        if truth_blocked == ana_blocked {
            blocked_agree += 1;
        }
    }
    let acc = agree as f64 / total as f64;
    let blocked_acc = blocked_agree as f64 / blocked_total as f64;
    assert!(total > 5_000, "too little data: {total}");
    assert!(
        acc > 0.85,
        "classification accuracy vs ground truth too low: {acc:.3} over {total}"
    );
    assert!(
        blocked_acc > 0.93,
        "blocked/non-blocked accuracy too low: {blocked_acc:.3}"
    );
}

#[test]
fn classes_partition_and_shares_sum() {
    let (logs, acfg) = ring_study();
    let analysis = Analysis::run(logs, acfg.clone());
    let counts = analysis.class_counts();
    assert_eq!(counts.total(), analysis.pairing.app_conn_count());
    let share_sum: f64 = ConnClass::all().iter().map(|c| counts.share_pct(*c)).sum();
    assert!((share_sum - 100.0).abs() < 1e-9, "shares sum to {share_sum}");
    // Every class occurs in a realistic workload.
    for class in ConnClass::all() {
        assert!(counts.get(class) > 0, "class {class:?} absent");
    }
}

#[test]
fn significance_quadrants_partition() {
    let (logs, acfg) = ring_study();
    let analysis = Analysis::run(logs, acfg.clone());
    let sig = analysis.significance();
    let sum = sig.neither_pct + sig.rel_only_pct + sig.abs_only_pct + sig.both_pct;
    assert!((sum - 100.0).abs() < 1e-9, "quadrants sum to {sum}");
    assert!(sig.both_share_of_all_pct <= sig.both_pct);
}

#[test]
fn first_use_gap_split_is_discriminative() {
    // The Figure 1 rationale: short gaps are dominated by first uses,
    // long gaps by cache reuse.
    let (logs, acfg) = ring_study();
    let analysis = Analysis::run(logs, acfg.clone());
    let gaps = analysis.gap_analysis();
    assert!(
        gaps.first_use_within_knee > 0.75,
        "within-knee first-use rate {:.2} (paper: 0.91)",
        gaps.first_use_within_knee
    );
    assert!(
        gaps.first_use_beyond_knee < 0.45,
        "beyond-knee first-use rate {:.2} (paper: 0.21)",
        gaps.first_use_beyond_knee
    );
    assert!(gaps.first_use_within_knee > gaps.first_use_beyond_knee + 0.3);
}

#[test]
fn shared_cache_truth_recovered_by_duration_threshold() {
    let (out, acfg) = truth_study();
    let analysis = Analysis::run(&out.logs, acfg.clone());
    // For blocked conns, compare the SC/R call against the resolver's
    // ground truth (did the platform actually answer from cache?).
    let mut agree = 0usize;
    let mut total = 0usize;
    for (pair, class) in analysis.pairing.pairs.iter().zip(&analysis.classes) {
        let ana_sc = match class {
            ConnClass::SharedCache => true,
            ConnClass::Resolution => false,
            _ => continue,
        };
        let conn = &out.logs.conns[pair.conn];
        let truth = &out.truth.conns[conn.uid as usize];
        let Some(di) = truth.dns_index else { continue };
        total += 1;
        if out.truth.dns[di].shared_cache_hit == ana_sc {
            agree += 1;
        }
    }
    let acc = agree as f64 / total as f64;
    assert!(total > 1_000);
    assert!(acc > 0.85, "SC/R recovery too weak: {acc:.3} over {total}");
}

#[test]
fn cache_simulations_have_consistent_reports() {
    let (logs, acfg) = ring_study();
    let analysis = Analysis::run(logs, acfg.clone());

    let wh = cache_sim::whole_house(logs, &analysis);
    assert!(wh.moved <= wh.sc_conns + wh.r_conns);
    assert!(wh.moved_share_of_all_pct <= 100.0);
    assert!(wh.moved > 0, "a shared house cache must absorb something");

    let r = cache_sim::refresh(logs, &analysis, Duration::from_secs(10));
    assert!((r.standard.hit_pct + r.standard.miss_pct - 100.0).abs() < 1e-9);
    assert!((r.refresh_all.hit_pct + r.refresh_all.miss_pct - 100.0).abs() < 1e-9);
    assert!(r.refresh_all.hit_pct > r.standard.hit_pct, "refreshing must help hits");
    assert!(r.refresh_all.lookups > r.standard.lookups, "refreshing must cost lookups");
    assert!(r.lookup_ratio() > 5.0, "cost blow-up should be large: {:.1}", r.lookup_ratio());

    // Selective refresh sits between the two policies.
    let sel = cache_sim::refresh_selective(
        logs,
        &analysis,
        Duration::from_secs(10),
        3,
        Duration::from_secs(3_600),
    );
    assert!(sel.lookups <= r.refresh_all.lookups);
    assert!(sel.hit_pct >= r.standard.hit_pct - 1e-9);
}

#[test]
fn pairing_ambiguity_mostly_single_candidate() {
    let (logs, acfg) = ring_study();
    let analysis = Analysis::run(logs, acfg.clone());
    let share = analysis.pairing.single_candidate_share();
    assert!(
        share > 0.55 && share < 0.999,
        "single-candidate share {share:.3} (paper: 0.82) — co-hosting should create some ambiguity"
    );
}

#[test]
fn random_pairing_policy_shifts_results_only_slightly() {
    // The paper's robustness check: re-running with random candidate
    // selection must leave the high-level class mix close to the default.
    let (logs, acfg) = ring_study();
    let a1 = Analysis::run(logs, acfg.clone());
    let mut cfg2 = acfg.clone();
    cfg2.policy = dnsctx::dns_context::PairingPolicy::RandomNonExpired;
    let a2 = Analysis::run(logs, cfg2);
    let c1 = a1.class_counts();
    let c2 = a2.class_counts();
    for class in ConnClass::all() {
        let d = (c1.share_pct(class) - c2.share_pct(class)).abs();
        assert!(d < 8.0, "{class:?} share moved {d:.2} points under random pairing");
    }
}
