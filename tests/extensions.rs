//! Integration coverage for the beyond-the-paper extensions: time series,
//! per-house reports, serve-stale, knee estimation, capture merging.

use dnsctx::cache_sim;
use dnsctx::dns_context::ConnClass;
use dnsctx::pipeline;
use dnsctx::zeek_lite::{Duration, Monitor, MonitorConfig, Timestamp};

fn study() -> dnsctx::pipeline::Study {
    pipeline::quick_study(10, 0.2, 42)
}

#[test]
fn timeseries_buckets_cover_every_connection() {
    let study = study();
    let a = study.analysis();
    let buckets = a.timeseries(Duration::from_secs(3_600));
    let total: usize = buckets.iter().map(|b| b.total()).sum();
    assert_eq!(total, a.pairing.app_conn_count());
    // Evenly spaced starts.
    for w in buckets.windows(2) {
        assert_eq!(w[1].start.since(w[0].start), Duration::from_secs(3_600));
    }
    // A day of traffic spans about 24 buckets.
    assert!((20..=28).contains(&buckets.len()), "{} buckets", buckets.len());
}

#[test]
fn diurnal_profile_shows_evening_peak() {
    // Full activity so the time-of-day modulation expresses against the
    // inter-session gaps (at low activity the gaps dwarf the day cycle).
    let study = pipeline::quick_study(6, 1.0, 42);
    let a = study.analysis();
    let profile = a.diurnal_profile();
    let total: usize = profile.iter().map(|(_, c)| c.total()).sum();
    assert_eq!(total, a.pairing.app_conn_count());
    // The workload peaks in the evening hours and troughs in the morning.
    let evening: usize = (18..24).map(|h| profile[h].1.total()).sum();
    let morning: usize = (4..10).map(|h| profile[h].1.total()).sum();
    assert!(
        evening as f64 > morning as f64 * 1.2,
        "evening {evening} should exceed morning {morning}"
    );
}

#[test]
fn house_reports_partition_the_traffic() {
    let study = study();
    let a = study.analysis();
    let reports = a.house_reports();
    assert_eq!(reports.len(), study.logs().houses().len());
    let conns: usize = reports.iter().map(|h| h.classes.total()).sum();
    assert_eq!(conns, a.pairing.app_conn_count());
    let lookups: usize = reports.iter().map(|h| h.lookups).sum();
    assert_eq!(lookups, study.logs().dns.len());
    // Sorted by size.
    for w in reports.windows(2) {
        assert!(w[0].classes.total() >= w[1].classes.total());
    }
}

#[test]
fn serve_stale_answers_the_open_question() {
    let study = study();
    let a = study.analysis();
    let r = cache_sim::refresh(study.logs(), &a, Duration::from_secs(10));
    let ss = cache_sim::serve_stale(study.logs(), &a, Duration::from_secs(86_400));
    // The headline: refresh-all's hit rate at (at most) standard cost.
    assert!(ss.hit_pct + 1e-9 >= r.refresh_all.hit_pct);
    assert!(ss.lookups <= r.standard.lookups);
}

#[test]
fn knee_estimate_is_sane_on_simulated_traffic() {
    let study = study();
    let a = study.analysis();
    let knee = a.gap_analysis().estimate_knee(0.10).expect("bimodal traffic has a knee");
    let ms = knee.as_millis_f64();
    // Between the blocked mode and the cache-reuse mass.
    assert!((5.0..=2_000.0).contains(&ms), "knee at {ms} ms");
}

#[test]
fn captures_merge_and_reanalyse() {
    // Split one simulated capture into two halves by time, merge them
    // back with pcapio::merge, and confirm the monitor sees the same
    // world.
    let cfg = dnsctx::ccz_sim::WorkloadConfig {
        scale: dnsctx::ccz_sim::ScaleKnobs { houses: 3, days: 0.02, activity: 1.0 },
        services: 120,
        shared_services: 20,
        ..dnsctx::ccz_sim::WorkloadConfig::default()
    };
    let sim = dnsctx::ccz_sim::Simulation::new(cfg, 8).unwrap();
    let mut full = Vec::new();
    sim.run_pcap(&mut full, 600).unwrap();
    let full_logs = Monitor::process_pcap(&full[..], MonitorConfig::default()).unwrap();

    // Re-split the capture at its median record time.
    let reader = dnsctx::pcapio::PcapReader::new(&full[..]).unwrap();
    let records: Vec<_> = reader.records().map(|r| r.unwrap()).collect();
    let cut = records[records.len() / 2].ts_nanos;
    let write_subset = |pred: &dyn Fn(u64) -> bool| -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = dnsctx::pcapio::PcapWriter::new(&mut buf, 600, dnsctx::pcapio::TsPrecision::Nano).unwrap();
        for r in &records {
            if pred(r.ts_nanos) {
                w.write_packet(r.ts_nanos, &r.data, Some(r.orig_len)).unwrap();
            }
        }
        drop(w);
        buf
    };
    let first = write_subset(&|ts| ts < cut);
    let second = write_subset(&|ts| ts >= cut);
    let mut merged = Vec::new();
    let n = dnsctx::pcapio::merge(&first[..], &second[..], &mut merged).unwrap();
    assert_eq!(n as usize, records.len());
    let merged_logs = Monitor::process_pcap(&merged[..], MonitorConfig::default()).unwrap();
    assert_eq!(merged_logs.dns.len(), full_logs.dns.len());
    assert_eq!(merged_logs.app_conns().count(), full_logs.app_conns().count());
}

#[test]
fn nxdomain_traffic_round_trips_through_packets() {
    let mut cfg = dnsctx::ccz_sim::scenarios::typo_traffic(1.0);
    cfg.scale = dnsctx::ccz_sim::ScaleKnobs { houses: 4, days: 0.03, activity: 1.0 };
    cfg.p_nxdomain = 0.2; // make sure some occur in the short window
    let sim = dnsctx::ccz_sim::Simulation::new(cfg, 6).unwrap();
    let direct = sim.run();
    let nx_direct = direct
        .logs
        .dns
        .iter()
        .filter(|t| t.rcode == Some(dnsctx::dns_wire::Rcode::NxDomain))
        .count();
    assert!(nx_direct > 0);
    let mut pcap = Vec::new();
    sim.run_pcap(&mut pcap, 600).unwrap();
    let logs = Monitor::process_pcap(&pcap[..], MonitorConfig::default()).unwrap();
    let nx_pcap: Vec<_> = logs
        .dns
        .iter()
        .filter(|t| t.rcode == Some(dnsctx::dns_wire::Rcode::NxDomain))
        .collect();
    assert_eq!(nx_pcap.len(), nx_direct, "every negative response survives the wire");
    for t in nx_pcap {
        assert!(!t.has_addrs(), "negative answers carry no addresses");
        assert!(t.rtt.is_some());
    }
    // Dead names never pair with connections.
    let a = dnsctx::dns_context::Analysis::run(&logs, Default::default());
    for pair in &a.pairing.pairs {
        if let Some(di) = pair.dns {
            assert_ne!(logs.dns[di].rcode, Some(dnsctx::dns_wire::Rcode::NxDomain));
        }
    }
}

#[test]
fn window_analysis_is_consistent_with_full() {
    // Analysing a window of the logs classifies at most the window's
    // connections, and unpaired-in-window can only grow (lookups before
    // the window are invisible).
    let study = study();
    let full = study.analysis();
    let (start, end) = study.logs().time_span().unwrap();
    let mid = Timestamp(start.nanos() + (end.nanos() - start.nanos()) / 2);
    let late = study.logs().window(mid, Timestamp(u64::MAX));
    let a2 = dnsctx::dns_context::Analysis::run(&late, study.analysis_cfg.clone());
    assert!(a2.pairing.app_conn_count() < full.pairing.app_conn_count());
    let full_n_share = full.class_counts().share_pct(ConnClass::NoDns);
    let late_n_share = a2.class_counts().share_pct(ConnClass::NoDns);
    assert!(
        late_n_share + 1e-9 >= full_n_share,
        "truncating history can only lose pairings: {late_n_share} vs {full_n_share}"
    );
}
