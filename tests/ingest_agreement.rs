//! Ingest agreement suite.
//!
//! The monitor now pulls frames through the `pcapio::RecordSource` seam,
//! and the simulator can feed it three ways: a rendered pcap byte stream
//! (file backend), the in-memory SPSC ring (no serialization round
//! trip), or a live `AF_PACKET` socket. The first two must be
//! indistinguishable downstream — this suite pins that the raw record
//! stream, the rendered (sorted) logs, the class counts, and the metrics
//! snapshots are byte-identical for file vs ring, across worker threads
//! {1, 8} × epoch windows {30 s, ∞}, mirroring `zero_copy_agreement`.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{stream, Analysis, AnalysisConfig};
use dnsctx::pcapio::{self, Backpressure, RecordSource, RingSource};
use dnsctx::zeek_lite::{logfmt, Duration, Logs, Monitor, MonitorConfig};

const SEED: u64 = 1303;
const SNAPLEN: u32 = 65_535;

/// Small-but-busy workload: the packet path buffers every frame, so the
/// suite stays at integration-test scale (same shape as the zero-copy
/// agreement suite).
fn workload() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 12, days: 0.25, activity: 0.5 },
        ..WorkloadConfig::default()
    }
}

/// Render the workload to pcap bytes — the file backend's input.
fn capture_bytes() -> Vec<u8> {
    let sim = Simulation::new(workload(), SEED).expect("valid config");
    let mut bytes = Vec::new();
    let (_, frames) = sim.run_pcap(&mut bytes, SNAPLEN).expect("in-memory pcap");
    assert!(frames > 0, "workload must produce traffic");
    bytes
}

/// Feed the same workload into a fresh ring from a producer thread and
/// hand back the consumer end. The join handle resolves to
/// `(offered, produced, dropped)` from the sink side once the producer
/// is done; dropping the sink inside the thread closes the ring, so a
/// full drain on `rx` terminates with EOF.
fn ring_source(capacity: usize) -> (RingSource, std::thread::JoinHandle<(u64, u64, u64)>) {
    let sim = Simulation::new(workload(), SEED).expect("valid config");
    let (mut tx, rx) = pcapio::ring::channel(capacity, SNAPLEN, Backpressure::Block);
    let producer = std::thread::spawn(move || {
        let (_, offered, _) = sim.run_ring(&mut tx);
        (offered, tx.produced(), tx.dropped())
    });
    (rx, producer)
}

/// Canonical byte form of both logs (Zeek-style TSV, sorted by the
/// monitor's own ordering guarantees).
fn render_logs(logs: &Logs) -> Vec<u8> {
    let mut buf = Vec::new();
    logfmt::write_conn_log(&mut buf, &logs.conns).expect("in-memory write");
    logfmt::write_dns_log(&mut buf, &logs.dns).expect("in-memory write");
    buf
}

fn analysis_cfg(threads: usize) -> AnalysisConfig {
    AnalysisConfig { threads, ..AnalysisConfig::default() }
}

/// Drain any source into owned `(ts, orig_len, payload)` triples.
fn drain<S: RecordSource + ?Sized>(source: &mut S) -> Vec<(u64, u32, Vec<u8>)> {
    let mut out = Vec::new();
    while let Some(rec) = source.next().expect("record") {
        out.push((rec.ts_nanos, rec.orig_len, rec.data.to_owned()));
    }
    out
}

#[test]
fn record_streams_are_identical_file_vs_ring() {
    let bytes = capture_bytes();
    let mut file = pcapio::source::file(&bytes[..]).expect("pcap header");
    // A deliberately small ring (4 KiB for ~full-size ethernet frames)
    // forces constant wraparound and frame splits at the buffer edge;
    // Block policy means none of that is observable.
    let (mut ring, producer) = ring_source(4096);

    assert_eq!(file.header(), ring.header(), "both backends advertise the same capture header");

    let from_file = drain(&mut file);
    let from_ring = drain(&mut ring);
    let (offered, produced, dropped) = producer.join().expect("producer thread");

    assert!(!from_file.is_empty());
    assert_eq!(from_file, from_ring, "record streams must be identical, byte for byte");
    assert_eq!(dropped, 0, "Block policy must not drop");
    assert_eq!(offered, produced, "every offered record is accounted as produced");
    assert_eq!(produced, ring.consumed(), "full drain consumes everything produced");

    // The capture metrics are part of the contract: same counter names,
    // same values, rendered identically.
    assert_eq!(
        file.metrics().to_json(),
        ring.metrics().to_json(),
        "capture.* metrics must be byte-identical across backends"
    );
}

#[test]
fn batch_monitor_agrees_file_vs_ring() {
    let bytes = capture_bytes();
    let batch = Monitor::process_pcap(&bytes[..], MonitorConfig::default())
        .expect("clean capture parses");

    let (mut ring, producer) = ring_source(1 << 16);
    let ring_logs =
        Monitor::process_source(&mut ring, MonitorConfig::default()).expect("ring run");
    producer.join().expect("producer thread");

    assert_eq!(
        render_logs(&ring_logs),
        render_logs(&batch),
        "ring-fed monitor logs must equal the file-fed logs"
    );
    assert_eq!(
        ring_logs.metrics().render_table(),
        batch.metrics().render_table(),
        "monitor metrics must be backend-invariant"
    );
    assert_eq!(
        Analysis::run(&ring_logs, analysis_cfg(1)).class_counts(),
        Analysis::run(&batch, analysis_cfg(1)).class_counts(),
        "class counts must be backend-invariant"
    );
}

#[test]
fn stream_agrees_for_all_windows_and_threads() {
    let bytes = capture_bytes();
    let batch_logs = Monitor::process_pcap(&bytes[..], MonitorConfig::default())
        .expect("clean capture parses");
    let batch_rendered = render_logs(&batch_logs);
    let batch_counts = Analysis::run(&batch_logs, analysis_cfg(1)).class_counts();

    for window in [Duration::from_secs(30), Duration::ZERO] {
        for threads in [1usize, 8] {
            // File backend through the seam.
            let mut file_released = Logs::default();
            let file_result = stream::process_pcap(
                &bytes[..],
                window,
                MonitorConfig::default(),
                analysis_cfg(threads),
                |epoch| {
                    file_released.conns.extend(epoch.conns);
                    file_released.dns.extend(epoch.dns);
                },
            )
            .expect("file stream run");
            file_released.conns.extend(file_result.tail.conns);
            file_released.dns.extend(file_result.tail.dns);

            // Ring backend through the same seam.
            let (mut ring, producer) = ring_source(1 << 16);
            let mut ring_released = Logs::default();
            let ring_result = stream::process_source(
                &mut ring,
                window,
                MonitorConfig::default(),
                analysis_cfg(threads),
                |epoch| {
                    ring_released.conns.extend(epoch.conns);
                    ring_released.dns.extend(epoch.dns);
                },
            )
            .expect("ring stream run");
            ring_released.conns.extend(ring_result.tail.conns);
            ring_released.dns.extend(ring_result.tail.dns);
            producer.join().expect("producer thread");

            let file_rendered = render_logs(&file_released);
            assert_eq!(
                file_rendered, batch_rendered,
                "file stream rows (window {window:?}, threads {threads}) must equal batch"
            );
            assert_eq!(
                render_logs(&ring_released),
                file_rendered,
                "ring stream rows (window {window:?}, threads {threads}) must equal file"
            );
            assert_eq!(
                ring_result.class_counts, file_result.class_counts,
                "class counts (window {window:?}, threads {threads}) must be backend-invariant"
            );
            assert_eq!(ring_result.class_counts, batch_counts);
            assert_eq!(
                ring_result.analysis_metrics.render_table(),
                file_result.analysis_metrics.render_table(),
                "analysis metrics (window {window:?}, threads {threads}) must be backend-invariant"
            );
            assert_eq!(
                ring_result.stream_metrics.render_table(),
                file_result.stream_metrics.render_table(),
                "stream metrics (window {window:?}, threads {threads}) must be backend-invariant"
            );
        }
    }
}

#[test]
fn ring_capacity_does_not_leak_into_results() {
    // The ring's capacity controls scheduling (how often the producer
    // blocks), never content. Three very different capacities, one
    // answer.
    let mut rendered = Vec::new();
    for capacity in [512usize, 8192, 1 << 20] {
        let (mut ring, producer) = ring_source(capacity);
        let logs =
            Monitor::process_source(&mut ring, MonitorConfig::default()).expect("ring run");
        let (_, produced, dropped) = producer.join().expect("producer thread");
        assert_eq!(dropped, 0, "capacity {capacity}: Block policy never drops");
        assert_eq!(produced, ring.consumed(), "capacity {capacity}: conservation after drain");
        rendered.push(render_logs(&logs));
    }
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[1], rendered[2]);
}
