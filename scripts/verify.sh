#!/bin/sh
# Tier-1 gate: offline build + tests, then the lintkit invariant
# checker (`repro lint`) over every source-level deny-list the
# workspace enforces, then the per-subsystem suites.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== lint (token-aware invariant checker) =="
# One invocation replaces the old awk/grep deny-lists: dependency
# denylist, parse-path unwrap/expect, hot-path to_vec/clone, the
# Instant::now clock seam, the socket fence, the PcapReader ingestion
# seam, the stream batch-fallback scan — plus the rules the shell could
# never express (map iteration, SAFETY comments, stdout discipline,
# wall-clock seams, and this script's own scan hygiene). Exit code 1 on
# any violation keeps the old contract.
cargo test -q --offline -p lintkit
cargo test -q --offline -p bench --test lint_cli
lint_json=$(mktemp /tmp/verify_lint.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    lint --format json > "$lint_json"
# The JSON diagnostic document must parse back through xkit::obs::json
# and carry ok=true (lint_cli tests the schema in depth; this is the
# live gate on the real tree).
grep -q '"tool":"lintkit"' "$lint_json"
grep -q '"ok":true' "$lint_json"
rm -f "$lint_json"
echo "clean: repro lint exits clean on the workspace"

echo "== fault suite =="
cargo test -q --offline -p dnsctx --test fault_tolerance --test fault_injection
cargo test -q --offline -p netpkt --test fuzz_smoke
cargo test -q --offline -p dns-wire --test fuzz_smoke
cargo test -q --offline -p zeek-lite --test logs_invariants
cargo run -q --release --offline -p bench --bin repro -- fuzz --seed 0

echo "== obs suite =="
cargo test -q --offline -p xkit obs
cargo test -q --offline -p zeek-lite
cargo test -q --offline -p dnsctx --test obs_pipeline
cargo test -q --offline -p bench --test obs_cli
# The obs experiment must emit a JSON snapshot we can parse back.
obs_out=$(mktemp /tmp/verify_obs.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    obs --houses 30 --days 0.02 --scale 0.3 --obs-out "$obs_out" >/dev/null
cargo run -q --release --offline -p bench --bin repro -- obs-check "$obs_out"
rm -f "$obs_out"

echo "== stream suite =="
# Streamed output must be byte-identical to batch at every tested
# window/thread combination, with live state bounded for finite windows.
cargo test -q --release --offline -p dnsctx --test stream_agreement
cargo test -q --offline -p pcapio
cargo run -q --release --offline -p bench --bin repro -- \
    stream --houses 20 --days 0.1 --window-secs 60 >/dev/null
# Batch-fallback scanning now lives in `repro lint` (no-batch-in-stream).

echo "== ingest suite =="
# One RecordSource seam, three backends: the file and ring paths must be
# indistinguishable downstream, and the ring must conserve every record.
cargo test -q --release --offline -p dnsctx --test ingest_agreement
cargo test -q --offline -p pcapio --test ring_props
cargo build -q --offline -p pcapio --features raw-socket
# The ring-fed CLI run must emit the exact stdout document of the
# file-fed run over the same workload (spans are excluded by design).
ing_file=$(mktemp /tmp/verify_ingest_file.XXXXXX.json)
ing_ring=$(mktemp /tmp/verify_ingest_ring.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source file 2>/dev/null > "$ing_file"
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source ring 2>/dev/null > "$ing_ring"
if ! cmp -s "$ing_file" "$ing_ring"; then
    echo "FAIL: ingest stdout differs between the file and ring backends" >&2
    rm -f "$ing_file" "$ing_ring"
    exit 1
fi
rm -f "$ing_file" "$ing_ring"
echo "clean: ingest file and ring backends emit identical documents"
# Raw-socket loopback smoke, only where AF_PACKET is plausibly permitted
# (the test also self-skips if the open is denied at runtime).
if [ "$(id -u)" = "0" ]; then
    cargo test -q --offline -p pcapio --features raw-socket \
        --test raw_loopback -- --ignored
else
    echo "skipping raw-socket loopback smoke (needs CAP_NET_RAW)"
fi
# Ingestion-seam scanning now lives in `repro lint` (ingest-seam), as do
# the clock seam (clock-seam), parse-path panics (no-unwrap-parse), and
# hot-path copies (no-owned-copy-hotpath).

echo "== perf-hygiene suite =="
# The refactored hot path must be unobservable: bytes, logs, counts, and
# metrics identical across threads, windows, and the owned fallback.
cargo test -q --release --offline -p bench --test zero_copy_agreement

# Bench smoke: the reusable-pool sweep must not lose to sequential on a
# multi-core host (the per-seed respawn regression this repo once had).
bench_dir=$(mktemp -d /tmp/verify_bench.XXXXXX)
repo_root=$(pwd)
(cd "$bench_dir" && cargo run -q --release --offline \
    --manifest-path "$repo_root/Cargo.toml" -p bench --bin repro -- \
    bench --houses 20 --days 0.05 --scale 0.3 --seeds 4 >/dev/null 2>&1)
cores=$(grep -o '"cores": [0-9.]*' "$bench_dir/BENCH_repro.json" | cut -d' ' -f2)
speedup=$(grep -o '"sweep_speedup_x": [0-9.]*' "$bench_dir/BENCH_repro.json" | cut -d' ' -f2)
rm -rf "$bench_dir"
# lint: allow(verify-shell-discipline): float gate over BENCH_repro.json
awk -v c="$cores" -v s="$speedup" 'BEGIN {
    if (c > 1 && s < 1.0) {
        printf "FAIL: sweep_speedup_x %.2f < 1.0 on a %d-core host\n", s, c
        exit 1
    }
    printf "sweep_speedup_x %.2f on %d core(s)\n", s, c
}'

echo "== obs-serve suite =="
# The live observability plane: flight ring + hub semantics, the JSON
# parser's fuzz-smoke, mid-run prefix validity, and the CLI serve path.
cargo test -q --offline -p xkit --test json_fuzz
cargo test -q --offline -p dnsctx --test obs_serve
cargo test -q --offline -p bench --test serve_cli
# Serve smoke on an ephemeral port: every endpoint must answer and
# self-validate while the run is live.
cargo run -q --release --offline -p bench --bin repro -- \
    stream --houses 10 --days 0.05 --window-secs 30 \
    --serve 127.0.0.1:0 --serve-check >/dev/null
# Serving must not perturb the ingest document: serve-on and serve-off
# runs emit byte-identical stdout.
srv_on=$(mktemp /tmp/verify_serve_on.XXXXXX.json)
srv_off=$(mktemp /tmp/verify_serve_off.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source file 2>/dev/null > "$srv_off"
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source file \
    --serve 127.0.0.1:0 --serve-check 2>/dev/null > "$srv_on"
if ! cmp -s "$srv_off" "$srv_on"; then
    echo "FAIL: --serve changed the ingest stdout document" >&2
    rm -f "$srv_on" "$srv_off"
    exit 1
fi
rm -f "$srv_on" "$srv_off"
echo "clean: --serve leaves the stdout document byte-identical"
# Socket-fence scanning now lives in `repro lint` (socket-fence).

echo "== serve-daemon suite =="
# The multi-tenant daemon (DESIGN.md §15): lifecycle tests (concurrent
# tenants, prefix-valid mid-run scrapes, pool-width-independent
# aggregate, removal frees state) plus an ephemeral-port CLI smoke
# that self-validates the tenant routes before shutdown.
cargo test -q --offline -p bench --test serve_daemon
cargo run -q --release --offline -p bench --bin repro -- \
    serve --tenants 8 --houses 4 --days 0.05 \
    --serve 127.0.0.1:0 --serve-check >/dev/null
# Thread-spawn scanning lives in `repro lint` (thread-spawn-fence).

echo "== verify OK =="
