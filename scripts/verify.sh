#!/bin/sh
# Tier-1 gate: offline build + tests, then verify the workspace is
# genuinely zero-dependency (no external crates in any manifest).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== dependency deny-list =="
# The workspace must not declare any of the old external crates.
if grep -rn "^rand\|^criterion\|^proptest\|^crossbeam\|^parking_lot" \
    */Cargo.toml crates/*/Cargo.toml Cargo.toml 2>/dev/null; then
    echo "FAIL: external dependency declared above" >&2
    exit 1
fi
echo "clean: no external dependencies declared"

echo "== fault suite =="
cargo test -q --offline -p dnsctx --test fault_tolerance --test fault_injection
cargo test -q --offline -p netpkt --test fuzz_smoke
cargo test -q --offline -p dns-wire --test fuzz_smoke
cargo test -q --offline -p zeek-lite --test logs_invariants
cargo run -q --release --offline -p bench --bin repro -- fuzz --seed 0

echo "== obs suite =="
cargo test -q --offline -p xkit obs
cargo test -q --offline -p zeek-lite
cargo test -q --offline -p dnsctx --test obs_pipeline
cargo test -q --offline -p bench --test obs_cli
# The obs experiment must emit a JSON snapshot we can parse back.
obs_out=$(mktemp /tmp/verify_obs.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    obs --houses 30 --days 0.02 --scale 0.3 --obs-out "$obs_out" >/dev/null
cargo run -q --release --offline -p bench --bin repro -- obs-check "$obs_out"
rm -f "$obs_out"

echo "== stream suite =="
# Streamed output must be byte-identical to batch at every tested
# window/thread combination, with live state bounded for finite windows.
cargo test -q --release --offline -p dnsctx --test stream_agreement
cargo test -q --offline -p pcapio
cargo run -q --release --offline -p bench --bin repro -- \
    stream --houses 20 --days 0.1 --window-secs 60 >/dev/null
# The streaming path must not fall back to a full-trace pass: the batch
# entry points stay out of crates/dns-context/src/stream.rs (test code,
# where the batch pipeline is the oracle, is exempt).
bad=$(awk '
    /#\[cfg\(test\)\]/ { exit }
    /^[[:space:]]*\/\// { next }
    /Pairing::build|Analysis::run|Monitor::process_pcap|\.finish\(\)\.metrics\(\)/ {
        print FILENAME ":" FNR ": " $0
    }
' crates/dns-context/src/stream.rs || true)
if [ -n "$bad" ]; then
    echo "$bad"
    echo "FAIL: batch accumulator entry point on the streaming path" >&2
    exit 1
fi
echo "clean: no batch fallbacks in the streaming engine"

echo "== ingest suite =="
# One RecordSource seam, three backends: the file and ring paths must be
# indistinguishable downstream, and the ring must conserve every record.
cargo test -q --release --offline -p dnsctx --test ingest_agreement
cargo test -q --offline -p pcapio --test ring_props
cargo build -q --offline -p pcapio --features raw-socket
# The ring-fed CLI run must emit the exact stdout document of the
# file-fed run over the same workload (spans are excluded by design).
ing_file=$(mktemp /tmp/verify_ingest_file.XXXXXX.json)
ing_ring=$(mktemp /tmp/verify_ingest_ring.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source file 2>/dev/null > "$ing_file"
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source ring 2>/dev/null > "$ing_ring"
if ! cmp -s "$ing_file" "$ing_ring"; then
    echo "FAIL: ingest stdout differs between the file and ring backends" >&2
    rm -f "$ing_file" "$ing_ring"
    exit 1
fi
rm -f "$ing_file" "$ing_ring"
echo "clean: ingest file and ring backends emit identical documents"
# Raw-socket loopback smoke, only where AF_PACKET is plausibly permitted
# (the test also self-skips if the open is denied at runtime).
if [ "$(id -u)" = "0" ]; then
    cargo test -q --offline -p pcapio --features raw-socket \
        --test raw_loopback -- --ignored
else
    echo "skipping raw-socket loopback smoke (needs CAP_NET_RAW)"
fi
# All ingestion goes through the seam: non-test code outside pcapio must
# not construct a PcapReader by hand (pcapio::source::file is the one
# sanctioned file-backend constructor).
bad=$(find crates -path '*/src/*' -name '*.rs' ! -path 'crates/pcapio/*' \
    -exec awk '
    FNR == 1 { intest = 0 }
    /#\[cfg\(test\)\]/ { intest = 1 }
    intest { next }
    /^[[:space:]]*\/\// { next }
    /PcapReader::new/ { print FILENAME ":" FNR ": " $0 }
' {} + || true)
if [ -n "$bad" ]; then
    echo "$bad"
    echo "FAIL: direct PcapReader construction outside the ingestion seam" >&2
    exit 1
fi
echo "clean: all ingestion constructs sources via pcapio::source"

echo "== clock deny-list (Instant outside xkit) =="
# Wall-clock reads go through xkit::obs::clock so timing stays in one
# seam; no other crate may call Instant::now() directly.
if grep -rn "Instant::now" crates --include='*.rs' | grep -v "^crates/xkit/"; then
    echo "FAIL: Instant::now outside crates/xkit (use xkit::obs::clock::now)" >&2
    exit 1
fi
echo "clean: no Instant::now outside xkit"

echo "== panic deny-list (parse paths) =="
# Non-test code in the parser crates must stay unwrap/expect-free: any
# malformed input is a typed Err, never a panic. awk strips `//` comment
# lines and stops scanning each file at its #[cfg(test)] module.
bad=$(awk '
    FNR == 1 { intest = 0 }
    /#\[cfg\(test\)\]/ { intest = 1 }
    intest { next }
    /^[[:space:]]*\/\// { next }
    /\.unwrap\(\)|\.expect\(/ { print FILENAME ":" FNR ": " $0 }
' crates/netpkt/src/*.rs crates/dns-wire/src/*.rs || true)
if [ -n "$bad" ]; then
    echo "$bad"
    echo "FAIL: unwrap/expect in a non-test parse path" >&2
    exit 1
fi
echo "clean: no unwrap/expect in netpkt or dns-wire parse paths"

echo "== perf-hygiene suite =="
# The per-frame parse path must stay copy-free: no to_vec()/.clone()
# outside tests in the parse crates. Lines carrying the `owned-fallback`
# marker are the sanctioned exits from the zero-copy path (the fault
# rewrite seam, DoT stream reassembly, analysis-time name algebra, and
# simulator-side builders).
bad=$(awk '
    FNR == 1 { intest = 0 }
    /#\[cfg\(test\)\]/ { intest = 1 }
    intest { next }
    /^[[:space:]]*\/\// { next }
    /owned-fallback/ { next }
    /\.to_vec\(\)|\.clone\(\)/ { print FILENAME ":" FNR ": " $0 }
' crates/pcapio/src/*.rs crates/netpkt/src/*.rs crates/dns-wire/src/*.rs || true)
if [ -n "$bad" ]; then
    echo "$bad"
    echo "FAIL: owned copy on a parse hot path (mark sanctioned exits with owned-fallback)" >&2
    exit 1
fi
echo "clean: parse hot paths are copy-free outside owned-fallback seams"

# The refactored hot path must be unobservable: bytes, logs, counts, and
# metrics identical across threads, windows, and the owned fallback.
cargo test -q --release --offline -p bench --test zero_copy_agreement

# Bench smoke: the reusable-pool sweep must not lose to sequential on a
# multi-core host (the per-seed respawn regression this repo once had).
bench_dir=$(mktemp -d /tmp/verify_bench.XXXXXX)
repo_root=$(pwd)
(cd "$bench_dir" && cargo run -q --release --offline \
    --manifest-path "$repo_root/Cargo.toml" -p bench --bin repro -- \
    bench --houses 20 --days 0.05 --scale 0.3 --seeds 4 >/dev/null 2>&1)
cores=$(grep -o '"cores": [0-9.]*' "$bench_dir/BENCH_repro.json" | awk '{print $2}')
speedup=$(grep -o '"sweep_speedup_x": [0-9.]*' "$bench_dir/BENCH_repro.json" | awk '{print $2}')
rm -rf "$bench_dir"
awk -v c="$cores" -v s="$speedup" 'BEGIN {
    if (c > 1 && s < 1.0) {
        printf "FAIL: sweep_speedup_x %.2f < 1.0 on a %d-core host\n", s, c
        exit 1
    }
    printf "sweep_speedup_x %.2f on %d core(s)\n", s, c
}'

echo "== obs-serve suite =="
# The live observability plane: flight ring + hub semantics, the JSON
# parser's fuzz-smoke, mid-run prefix validity, and the CLI serve path.
cargo test -q --offline -p xkit --test json_fuzz
cargo test -q --offline -p dnsctx --test obs_serve
cargo test -q --offline -p bench --test serve_cli
# Serve smoke on an ephemeral port: every endpoint must answer and
# self-validate while the run is live.
cargo run -q --release --offline -p bench --bin repro -- \
    stream --houses 10 --days 0.05 --window-secs 30 \
    --serve 127.0.0.1:0 --serve-check >/dev/null
# Serving must not perturb the ingest document: serve-on and serve-off
# runs emit byte-identical stdout.
srv_on=$(mktemp /tmp/verify_serve_on.XXXXXX.json)
srv_off=$(mktemp /tmp/verify_serve_off.XXXXXX.json)
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source file 2>/dev/null > "$srv_off"
cargo run -q --release --offline -p bench --bin repro -- \
    ingest --houses 10 --days 0.05 --source file \
    --serve 127.0.0.1:0 --serve-check 2>/dev/null > "$srv_on"
if ! cmp -s "$srv_off" "$srv_on"; then
    echo "FAIL: --serve changed the ingest stdout document" >&2
    rm -f "$srv_on" "$srv_off"
    exit 1
fi
rm -f "$srv_on" "$srv_off"
echo "clean: --serve leaves the stdout document byte-identical"
# Socket use stays behind the two sanctioned seams: the observability
# HTTP server and the AF_PACKET capture backend. No other non-test code
# may touch TcpListener/TcpStream/UdpSocket.
bad=$(find crates -path '*/src/*' -name '*.rs' \
    ! -path 'crates/xkit/src/obs/http.rs' \
    ! -path 'crates/pcapio/src/raw.rs' \
    -exec awk '
    FNR == 1 { intest = 0 }
    /#\[cfg\(test\)\]/ { intest = 1 }
    intest { next }
    /^[[:space:]]*\/\// { next }
    /TcpListener|TcpStream|UdpSocket/ { print FILENAME ":" FNR ": " $0 }
' {} + || true)
if [ -n "$bad" ]; then
    echo "$bad"
    echo "FAIL: socket use outside xkit::obs::http and pcapio::raw" >&2
    exit 1
fi
echo "clean: sockets confined to the HTTP exporter and the raw capture backend"

echo "== verify OK =="
