#!/bin/sh
# Tier-1 gate: offline build + tests, then verify the workspace is
# genuinely zero-dependency (no external crates in any manifest).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== dependency deny-list =="
# The workspace must not declare any of the old external crates.
if grep -rn "^rand\|^criterion\|^proptest\|^crossbeam\|^parking_lot" \
    */Cargo.toml crates/*/Cargo.toml Cargo.toml 2>/dev/null; then
    echo "FAIL: external dependency declared above" >&2
    exit 1
fi
echo "clean: no external dependencies declared"

echo "== verify OK =="
