//! What-if explorer: re-run the paper's headline analysis under
//! alternative populations (streaming-heavy, P2P-heavy, low-TTL CDNs,
//! TTL-honest devices) and see which conclusions move.
//!
//! ```sh
//! cargo run --release -p dnsctx --example scenario_explorer
//! ```

use dnsctx::ccz_sim::{scenarios, ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::report::{f1, Table};
use dnsctx::dns_context::{Analysis, AnalysisConfig, ConnClass};

fn shrink(mut cfg: WorkloadConfig) -> WorkloadConfig {
    // Keep each scenario to a couple of seconds.
    cfg.scale = ScaleKnobs { houses: 40, days: 1.0, activity: 0.15 };
    cfg
}

fn main() {
    let scenarios: [(&str, WorkloadConfig); 5] = [
        ("paper-like", scenarios::paper_week(0.15)),
        ("streaming-heavy", scenarios::streaming_heavy(0.15)),
        ("p2p-heavy", scenarios::p2p_heavy(0.15)),
        ("short-ttl CDNs", scenarios::short_ttl_world(0.15)),
        ("ttl-honest devices", scenarios::ttl_honest(0.15)),
    ];

    let mut table = Table::new(
        "class mix and DNS significance under alternative populations",
        &["scenario", "N %", "LC %", "P %", "SC %", "R %", "blocked %", "signif %", "LC stale %"],
    );
    for (name, cfg) in scenarios {
        let out = Simulation::new(shrink(cfg), 42).expect("valid scenario").run();
        let analysis = Analysis::run(&out.logs, AnalysisConfig::default());
        let c = analysis.class_counts();
        let sig = analysis.significance();
        let ttl = analysis.ttl_stats();
        table.row(&[
            name.to_string(),
            f1(c.share_pct(ConnClass::NoDns)),
            f1(c.share_pct(ConnClass::LocalCache)),
            f1(c.share_pct(ConnClass::Prefetched)),
            f1(c.share_pct(ConnClass::SharedCache)),
            f1(c.share_pct(ConnClass::Resolution)),
            f1(c.blocked_share_pct()),
            f1(sig.both_share_of_all_pct),
            f1(ttl.lc_violation_share_pct),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading guide: P2P inflates N and dilutes DNS' role; short TTLs and\n\
         TTL-honest stubs both push connections from LC into SC/R — the same\n\
         direction the paper's par.8 whole-house cache works against."
    );
}
