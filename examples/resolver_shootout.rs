//! Resolver platform comparison — the paper's Table 1, §7, and Figure 3.
//!
//! Prints per-platform usage, shared-cache hit rates, R-lookup delay
//! quantiles, and application throughput quantiles (with Google's
//! connectivitycheck artifact separated, as the paper does).
//!
//! ```sh
//! cargo run --release -p dnsctx --example resolver_shootout
//! ```

use dnsctx::dns_context::report::{cdf_strip, f1, Table};
use dnsctx::pipeline;

fn main() {
    let study = pipeline::quick_study(40, 0.1, 42);
    let analysis = study.analysis();
    let reports = analysis.platform_reports();

    let mut t1 = Table::new(
        "Use of resolver platforms (paper Table 1)",
        &["Resolver", "% Houses", "% Lookups", "% Conns", "% Bytes"],
    );
    for r in &reports {
        t1.row(&[
            r.name.clone(),
            f1(r.houses_pct),
            f1(r.lookups_pct),
            f1(r.conns_pct),
            f1(r.bytes_pct),
        ]);
    }
    println!("{}", t1.render());

    let mut t7 = Table::new(
        "Shared-cache hit rate by platform (paper par.7: CF 83.6, Local 71.2, OpenDNS 58.8, Google 23.0)",
        &["Resolver", "Hit rate %"],
    );
    let mut by_hit: Vec<_> = reports.iter().collect();
    by_hit.sort_by(|a, b| b.hit_rate_pct.total_cmp(&a.hit_rate_pct));
    for r in by_hit {
        t7.row(&[r.name.clone(), f1(r.hit_rate_pct)]);
    }
    println!("{}", t7.render());

    println!("== R-lookup delay distributions (paper Figure 3, top) ==");
    for r in &reports {
        print!("{}", cdf_strip(&r.name, &r.r_delay_ms, "ms"));
    }
    println!();

    println!("== Blocked-connection throughput (paper Figure 3, bottom) ==");
    for r in &reports {
        let mbps = dnsctx::dns_context::Ecdf::new(
            r.throughput_bps.samples().iter().map(|b| b / 1e6).collect(),
        );
        print!("{}", cdf_strip(&r.name, &mbps, "Mb"));
        if r.name == "Google" && !r.throughput_no_artifact_bps.is_empty() {
            let clean = dnsctx::dns_context::Ecdf::new(
                r.throughput_no_artifact_bps.samples().iter().map(|b| b / 1e6).collect(),
            );
            print!("{}", cdf_strip("Google (no connectivitychk)", &clean, "Mb"));
            println!(
                "   connectivitycheck share of Google blocked conns: {:.1}% (paper: 23.5%)",
                r.artifact_conn_share_pct
            );
        }
    }
}
