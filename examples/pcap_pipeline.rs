//! The faithful path: serialise the simulated week as a real libpcap
//! capture (Ethernet/IPv4 frames, RFC 1035 DNS payloads, snaplen
//! truncation), re-parse it with the zeek-lite monitor, and check the
//! result against the direct-log backend.
//!
//! ```sh
//! cargo run --release -p dnsctx --example pcap_pipeline [capture.pcap]
//! ```
//!
//! Pass a path to also keep the capture on disk (it is Wireshark-
//! compatible).

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::zeek_lite::{Monitor, MonitorConfig};

fn main() {
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses: 5, days: 0.05, activity: 1.0 },
        services: 400,
        shared_services: 60,
        ..WorkloadConfig::default()
    };
    let sim = Simulation::new(cfg, 42).expect("valid config");

    // Direct backend: ground-truth logs.
    let direct = sim.run();

    // Packet backend: a real capture with a 600-byte snaplen — headers
    // plus any DNS payload; bulk data is declared in headers, as in
    // production captures.
    let mut pcap_bytes = Vec::new();
    let (_truth, frames) = sim.run_pcap(&mut pcap_bytes, 600).expect("pcap generation");
    println!(
        "wrote {} frames, {:.1} MiB of capture",
        frames,
        pcap_bytes.len() as f64 / (1024.0 * 1024.0)
    );

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &pcap_bytes).expect("write capture file");
        println!("capture saved to {path}");
    }

    // Re-parse the capture the way the paper's monitor did.
    let logs = Monitor::process_pcap(&pcap_bytes[..], MonitorConfig::default()).expect("parse capture");
    println!("\nmonitor stats: {:?}\n", logs.stats);

    let app_conns = logs.app_conns().count();
    let direct_conns = direct.logs.conns.len();
    let pcap_bytes_total: u64 = logs.app_conns().map(|c| c.total_bytes()).sum();
    let direct_bytes_total: u64 = direct.logs.conns.iter().map(|c| c.total_bytes()).sum();
    println!("connections:  monitor {app_conns}  direct {direct_conns}");
    println!("dns txns:     monitor {}  direct {}", logs.dns.len(), direct.logs.dns.len());
    println!("conn bytes:   monitor {pcap_bytes_total}  direct {direct_bytes_total}");
    assert_eq!(app_conns, direct_conns, "pipeline disagreement (conns)");
    assert_eq!(logs.dns.len(), direct.logs.dns.len(), "pipeline disagreement (dns)");
    assert_eq!(pcap_bytes_total, direct_bytes_total, "pipeline disagreement (bytes)");
    println!("\npcap pipeline agrees with the direct backend ✔");

    // The analysis produces the same classification either way.
    let a_direct = dnsctx::dns_context::Analysis::run(&direct.logs, Default::default());
    let a_pcap = dnsctx::dns_context::Analysis::run(&logs, Default::default());
    let c1 = a_direct.class_counts();
    let c2 = a_pcap.class_counts();
    println!(
        "class mix (direct):  N={} LC={} P={} SC={} R={}",
        c1.no_dns, c1.local_cache, c1.prefetched, c1.shared_cache, c1.resolution
    );
    println!(
        "class mix (pcap):    N={} LC={} P={} SC={} R={}",
        c2.no_dns, c2.local_cache, c2.prefetched, c2.shared_cache, c2.resolution
    );
}
