//! Quickstart: simulate a small residential network, run the paper's
//! analysis, and print the Table 2 classification plus the headline
//! performance numbers.
//!
//! ```sh
//! cargo run --release -p dnsctx --example quickstart
//! ```

use dnsctx::dns_context::report::{f1, Table};
use dnsctx::dns_context::ConnClass;
use dnsctx::pipeline;

fn main() {
    // 20 houses, one day, tenth-scale activity: a few seconds of work.
    let study = pipeline::quick_study(20, 0.1, 42);
    let logs = study.logs();
    println!(
        "simulated {} connections and {} DNS transactions\n",
        logs.conns.len(),
        logs.dns.len()
    );

    let analysis = study.analysis();
    let counts = analysis.class_counts();

    let mut table = Table::new(
        "DNS information origin by connection (paper Table 2)",
        &["Class", "Desc.", "Conns", "% Conns"],
    );
    for class in ConnClass::all() {
        table.row(&[
            class.symbol().to_string(),
            class.description().to_string(),
            counts.get(class).to_string(),
            f1(counts.share_pct(class)),
        ]);
    }
    println!("{}", table.render());

    println!(
        "connections that block on DNS: {:.1}% (paper: 42.1%)",
        counts.blocked_share_pct()
    );
    println!(
        "shared-resolver cache hit rate: {:.1}% (paper: 62.6%)",
        100.0 * counts.shared_hit_rate()
    );

    let sig = analysis.significance();
    println!(
        "connections paying a significant DNS cost (>20 ms and >1%): \
         {:.1}% of blocked, {:.1}% of all (paper: 8.6% / 3.6%)",
        sig.both_pct, sig.both_share_of_all_pct
    );

    let perf = analysis.perf();
    if let Some(median) = perf.delay_ms.median() {
        println!(
            "blocked-lookup delay: median {:.1} ms, p75 {:.1} ms, >100 ms for {:.1}% \
             (paper: 8.5 ms / 20 ms / 3.3%)",
            median,
            perf.delay_ms.quantile(0.75).unwrap(),
            100.0 * perf.delay_ms.fraction_above(100.0)
        );
    }
}
