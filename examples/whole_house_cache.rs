//! Local DNS improvements — the paper's §8 and Table 3, plus the paper's
//! closing open question explored with a selective-refresh policy sweep.
//!
//! ```sh
//! cargo run --release -p dnsctx --example whole_house_cache
//! ```

use dnsctx::cache_sim;
use dnsctx::dns_context::report::{count, f1, f2, Table};
use dnsctx::pipeline;
use dnsctx::zeek_lite::Duration;

fn main() {
    let study = pipeline::quick_study(30, 0.15, 42);
    let analysis = study.analysis();

    // ---- Whole-house cache (paper: 9.8% of conns move; 22% of SC and
    // 25% of R benefit) ----
    let wh = cache_sim::whole_house(study.logs(), &analysis);
    println!("== Whole-house cache (paper par.8) ==");
    println!(
        "connections moving SC/R -> LC: {} of {} ({:.1}%; paper 9.8%)",
        count(wh.moved),
        count(wh.total_conns),
        wh.moved_share_of_all_pct
    );
    println!(
        "SC connections that benefit: {:.1}% (paper ~22%); R: {:.1}% (paper ~25%)\n",
        wh.sc_benefit_pct, wh.r_benefit_pct
    );

    // ---- Table 3: standard vs refresh-all ----
    let r = cache_sim::refresh(study.logs(), &analysis, Duration::from_secs(10));
    let mut t3 = Table::new(
        "Efficacy of refreshing expiring names (paper Table 3)",
        &["", "Standard", "Refresh All"],
    );
    t3.row(&["Conns.".into(), count(r.standard.conns), count(r.refresh_all.conns)]);
    t3.row(&[
        "DNS Lookups".into(),
        count(r.standard.lookups as usize),
        count(r.refresh_all.lookups as usize),
    ]);
    t3.row(&[
        "Lookups/sec/house".into(),
        f2(r.standard.lookups_per_sec_per_house),
        f2(r.refresh_all.lookups_per_sec_per_house),
    ]);
    t3.row(&["Cache Hits".into(), f1(r.standard.hit_pct) + "%", f1(r.refresh_all.hit_pct) + "%"]);
    t3.row(&["Cache Misses".into(), f1(r.standard.miss_pct) + "%", f1(r.refresh_all.miss_pct) + "%"]);
    println!("{}", t3.render());
    println!(
        "lookup cost blow-up: {:.0}x (paper: ~144x)\n",
        r.lookup_ratio()
    );

    // ---- The open question: selective refresh ----
    println!("== Selective refresh (the paper's future-work question) ==");
    let mut sweep = Table::new(
        "refresh only names used >= K times, stop after idle cutoff",
        &["K", "idle cutoff", "lookups", "x standard", "hit %"],
    );
    for (k, idle_secs) in [(2usize, 3_600u64), (2, 14_400), (3, 3_600), (5, 3_600), (10, 1_800)] {
        let sel = cache_sim::refresh_selective(
            study.logs(),
            &analysis,
            Duration::from_secs(10),
            k,
            Duration::from_secs(idle_secs),
        );
        sweep.row(&[
            k.to_string(),
            format!("{}s", idle_secs),
            count(sel.lookups as usize),
            f2(sel.lookups as f64 / r.standard.lookups.max(1) as f64),
            f1(sel.hit_pct),
        ]);
    }
    println!("{}", sweep.render());
    println!(
        "(refresh-all reference: {} lookups = {:.0}x standard, {:.1}% hits)\n",
        count(r.refresh_all.lookups as usize),
        r.lookup_ratio(),
        r.refresh_all.hit_pct
    );

    // Serve-stale (RFC 8767): answer from the expired record immediately,
    // refresh in the background — refresh-all's hit rate at (almost) the
    // standard cache's lookup cost.
    let ss = cache_sim::serve_stale(study.logs(), &analysis, Duration::from_secs(86_400));
    println!("== Serve-stale (RFC 8767) whole-house cache ==");
    println!(
        "hits {:.1}%  lookups {} ({:.2}x standard)  — vs refresh-all {:.1}% at {:.0}x",
        ss.hit_pct,
        count(ss.lookups as usize),
        ss.lookups as f64 / r.standard.lookups.max(1) as f64,
        r.refresh_all.hit_pct,
        r.lookup_ratio()
    );
}
