//! The operator workflow: write Zeek-style conn.log / dns.log files,
//! read them back (as you would with logs from a real Zeek deployment),
//! run the paper's analysis, and print a per-house report.
//!
//! ```sh
//! cargo run --release -p dnsctx --example zeek_workflow [logdir]
//! ```

use dnsctx::dns_context::report::{count, f1, Table};
use dnsctx::dns_context::{Analysis, AnalysisConfig};
use dnsctx::pipeline;
use dnsctx::zeek_lite::{logfmt, Logs};
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(std::env::temp_dir);
    let conn_path = dir.join("conn.log");
    let dns_path = dir.join("dns.log");

    // 1. Produce logs (stand-in for a day of Zeek output).
    let study = pipeline::quick_study(15, 0.15, 42);
    logfmt::write_conn_log(
        BufWriter::new(File::create(&conn_path).expect("create conn.log")),
        &study.logs().conns,
    )
    .expect("write conn.log");
    logfmt::write_dns_log(
        BufWriter::new(File::create(&dns_path).expect("create dns.log")),
        &study.logs().dns,
    )
    .expect("write dns.log");
    println!(
        "wrote {} conns -> {}\nwrote {} dns txns -> {}\n",
        count(study.logs().conns.len()),
        conn_path.display(),
        count(study.logs().dns.len()),
        dns_path.display()
    );

    // 2. Read them back, exactly as an operator with real Zeek logs would.
    let conns = logfmt::read_conn_log(File::open(&conn_path).expect("open conn.log")).expect("parse conn.log");
    let dns = logfmt::read_dns_log(File::open(&dns_path).expect("open dns.log")).expect("parse dns.log");
    let mut logs = Logs { conns, dns, ..Default::default() };
    logs.sort();

    // 3. Analyse.
    let analysis = Analysis::run(&logs, AnalysisConfig::default());
    let total = analysis.class_counts();
    println!(
        "network-wide: {:.1}% of connections block on DNS, {:.1}% pay a significant cost\n",
        total.blocked_share_pct(),
        analysis.significance().both_share_of_all_pct
    );

    // 4. Per-house operator report.
    let mut table = Table::new(
        "per-house DNS exposure (top 10 by connection count)",
        &["house", "conns", "lookups", "blocked %", "p95 blocked delay ms", "MB"],
    );
    for h in analysis.house_reports().into_iter().take(10) {
        table.row(&[
            h.addr.to_string(),
            count(h.classes.total()),
            count(h.lookups),
            f1(h.blocked_share_pct()),
            h.blocked_delay_ms
                .quantile(0.95)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", h.bytes as f64 / 1e6),
        ]);
    }
    println!("{}", table.render());

    let mut svc = Table::new("traffic by service", &["service", "conns", "MB"]);
    for (name, conns, bytes) in logs.service_breakdown().into_iter().take(8) {
        svc.row(&[name, count(conns), format!("{:.1}", bytes as f64 / 1e6)]);
    }
    println!("{}", svc.render());
}
