//! Ethernet II / IPv4 / UDP / TCP packet encoding and parsing.
//!
//! This crate provides exactly what a passive residential-ISP monitor and
//! its traffic simulator need: building well-formed frames (with correct
//! internet checksums) and parsing captured frames back into typed headers.
//!
//! Design notes, following the smoltcp school of thought:
//!
//! * simplicity over generality — IPv4 only (the reproduced study is a 2019
//!   residential IPv4 dataset), no options interpretation beyond carrying
//!   the raw bytes, no reassembly (the simulator never fragments);
//! * strict parsing — malformed input yields [`PktError`], never a panic;
//! * honest truncation — captures are often snaplen-limited, so parsers
//!   distinguish *declared* lengths (from headers) from *captured* bytes,
//!   exactly like a real pcap consumer must.
//!
//! # Example
//!
//! ```
//! use netpkt::{Frame, MacAddr, TcpHeader};
//! use std::net::Ipv4Addr;
//!
//! let syn = Frame::tcp(
//!     MacAddr::LOCAL, MacAddr::UPSTREAM,
//!     Ipv4Addr::new(10, 1, 1, 2), Ipv4Addr::new(93, 184, 216, 34),
//!     TcpHeader::syn(49152, 443, 1_000),
//!     &[],
//! );
//! let bytes = syn.encode();
//! let parsed = netpkt::Packet::parse(&bytes, bytes.len()).unwrap();
//! assert_eq!(parsed.transport.dst_port(), Some(443));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod error;
mod ethernet;
mod frame;
mod ipv4;
mod tcp;
mod udp;

pub use checksum::internet_checksum;
pub use error::PktError;
pub use ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
pub use frame::{Frame, Packet, Transport};
pub use ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};
