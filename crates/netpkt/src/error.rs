use std::fmt;

/// Errors produced while parsing captured frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PktError {
    /// Fewer captured bytes than the structure requires.
    Truncated {
        /// What was being parsed.
        layer: &'static str,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// EtherType we do not parse (e.g. ARP, IPv6); carries the numeric value.
    UnsupportedEtherType(u16),
    /// IP version field was not 4.
    NotIpv4(u8),
    /// IPv4 header length field below the 20-byte minimum.
    BadIhl(u8),
    /// IPv4 total-length field smaller than the header itself.
    BadTotalLength(u16),
    /// Transport protocol we do not parse; carries the protocol number.
    UnsupportedProtocol(u8),
    /// TCP data-offset field below the 5-word minimum.
    BadDataOffset(u8),
    /// A verified checksum did not match.
    BadChecksum {
        /// Which layer's checksum failed.
        layer: &'static str,
    },
}

impl fmt::Display for PktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PktError::Truncated { layer, need, have } => {
                write!(f, "truncated {layer}: need {need} bytes, have {have}")
            }
            PktError::UnsupportedEtherType(v) => write!(f, "unsupported ethertype {v:#06x}"),
            PktError::NotIpv4(v) => write!(f, "IP version {v} is not 4"),
            PktError::BadIhl(v) => write!(f, "IPv4 IHL {v} below minimum"),
            PktError::BadTotalLength(v) => write!(f, "IPv4 total length {v} below header length"),
            PktError::UnsupportedProtocol(v) => write!(f, "unsupported IP protocol {v}"),
            PktError::BadDataOffset(v) => write!(f, "TCP data offset {v} below minimum"),
            PktError::BadChecksum { layer } => write!(f, "{layer} checksum mismatch"),
        }
    }
}

impl std::error::Error for PktError {}
