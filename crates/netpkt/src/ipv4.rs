use crate::checksum::internet_checksum;
use crate::PktError;
use std::net::Ipv4Addr;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers the monitor distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1) — counted, not parsed.
    Icmp,
    /// Anything else, preserved numerically.
    Other(u8),
}

impl IpProtocol {
    /// Numeric protocol value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Icmp => 1,
            IpProtocol::Other(v) => v,
        }
    }

    /// Decode from the numeric protocol value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            1 => IpProtocol::Icmp,
            other => IpProtocol::Other(other),
        }
    }
}

/// An IPv4 header (options carried raw, never interpreted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total datagram length (header + payload) as declared on the wire.
    /// This is the *declared* length; snaplen truncation may mean fewer
    /// bytes were actually captured.
    pub total_len: u16,
    /// Datagram identification (used only by fragmentation).
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// A conventional header for a simulator-built datagram.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (IPV4_HEADER_LEN + payload_len) as u16,
            identification: 0,
            dont_frag: true,
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Encode (computing the header checksum) and append to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(self.dscp_ecn);
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let frag = if self.dont_frag { 0x4000u16 } else { 0 };
        out.extend_from_slice(&frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol.to_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let cks = internet_checksum(&[&out[start..]]);
        out[start + 10..start + 12].copy_from_slice(&cks.to_be_bytes());
    }

    /// Decode from the front of `buf`; returns the header and the offset of
    /// the transport payload within `buf`.
    ///
    /// The header checksum is verified only when the full header was
    /// captured — a snaplen shorter than the header surfaces as
    /// [`PktError::Truncated`] instead.
    pub fn decode(buf: &[u8]) -> Result<(Ipv4Header, usize), PktError> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(PktError::Truncated {
                layer: "ipv4",
                need: IPV4_HEADER_LEN,
                have: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(PktError::NotIpv4(version));
        }
        let ihl = buf[0] & 0x0F;
        if ihl < 5 {
            return Err(PktError::BadIhl(ihl));
        }
        let header_len = ihl as usize * 4;
        if buf.len() < header_len {
            return Err(PktError::Truncated {
                layer: "ipv4 options",
                need: header_len,
                have: buf.len(),
            });
        }
        if internet_checksum(&[&buf[..header_len]]) != 0 {
            return Err(PktError::BadChecksum { layer: "ipv4" });
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < header_len {
            return Err(PktError::BadTotalLength(total_len));
        }
        Ok((
            Ipv4Header {
                dscp_ecn: buf[1],
                total_len,
                identification: u16::from_be_bytes([buf[4], buf[5]]),
                dont_frag: buf[6] & 0x40 != 0,
                ttl: buf[8],
                protocol: IpProtocol::from_u8(buf[9]),
                src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
                dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            },
            header_len,
        ))
    }

    /// The pseudo-header used in UDP/TCP checksums (RFC 793 §3.1).
    pub fn pseudo_header(&self, transport_len: u16) -> [u8; 12] {
        let mut ph = [0u8; 12];
        ph[0..4].copy_from_slice(&self.src.octets());
        ph[4..8].copy_from_slice(&self.dst.octets());
        ph[9] = self.protocol.to_u8();
        ph[10..12].copy_from_slice(&transport_len.to_be_bytes());
        ph
    }

    /// Declared transport payload length (total length minus a 20-byte
    /// header; options are not produced by the encoder).
    pub fn payload_len(&self) -> u16 {
        self.total_len.saturating_sub(IPV4_HEADER_LEN as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 1, 1, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            IpProtocol::Udp,
            100,
        )
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let (back, off) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, IPV4_HEADER_LEN);
    }

    #[test]
    fn checksum_is_valid_on_encode() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        assert_eq!(internet_checksum(&[&buf]), 0);
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[8] ^= 0xFF; // ttl
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(PktError::BadChecksum { layer: "ipv4" })
        ));
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[0] = 0x65; // version 6
        assert!(matches!(Ipv4Header::decode(&buf), Err(PktError::NotIpv4(6))));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Ipv4Header::decode(&[0x45; 10]).is_err());
    }

    #[test]
    fn bad_total_length_rejected() {
        let mut buf = Vec::new();
        let mut h = sample();
        h.total_len = 5;
        h.encode(&mut buf);
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(PktError::BadTotalLength(5))
        ));
    }

    #[test]
    fn protocol_round_trip() {
        for v in 0u8..=255 {
            assert_eq!(IpProtocol::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn pseudo_header_layout() {
        let h = sample();
        let ph = h.pseudo_header(8);
        assert_eq!(&ph[0..4], &[10, 1, 1, 2]);
        assert_eq!(&ph[4..8], &[8, 8, 8, 8]);
        assert_eq!(ph[8], 0);
        assert_eq!(ph[9], 17);
        assert_eq!(&ph[10..12], &[0, 8]);
    }
}
