use crate::checksum::internet_checksum;
use crate::ipv4::Ipv4Header;
use crate::PktError;
use std::fmt;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// The TCP flag bits a connection tracker cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN — sender is done sending.
    pub fin: bool,
    /// SYN — synchronise sequence numbers.
    pub syn: bool,
    /// RST — abort the connection.
    pub rst: bool,
    /// PSH — push buffered data to the application.
    pub psh: bool,
    /// ACK — acknowledgement field is valid.
    pub ack: bool,
    /// URG — urgent pointer is valid (ignored by the monitor).
    pub urg: bool,
}

impl TcpFlags {
    /// Just SYN.
    pub const SYN: TcpFlags = TcpFlags { syn: true, fin: false, rst: false, psh: false, ack: false, urg: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false, psh: false, urg: false };
    /// Just ACK.
    pub const ACK: TcpFlags = TcpFlags { ack: true, syn: false, fin: false, rst: false, psh: false, urg: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { fin: true, ack: true, syn: false, rst: false, psh: false, urg: false };
    /// RST.
    pub const RST: TcpFlags = TcpFlags { rst: true, syn: false, fin: false, psh: false, ack: false, urg: false };
    /// PSH+ACK, the usual data-segment flags.
    pub const PSH_ACK: TcpFlags = TcpFlags { psh: true, ack: true, syn: false, fin: false, rst: false, urg: false };

    /// Pack into the low byte of the flags field.
    pub fn to_u8(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
            | (self.urg as u8) << 5
    }

    /// Unpack from the low byte of the flags field.
    pub fn from_u8(v: u8) -> Self {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            psh: v & 0x08 != 0,
            ack: v & 0x10 != 0,
            urg: v & 0x20 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (set, c) in [
            (self.syn, 'S'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
            (self.ack, 'A'),
            (self.urg, 'U'),
        ] {
            if set {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// A TCP header. Options are carried as a raw borrowed slice (padded to
/// 32-bit words on encode) and never interpreted — the monitor does not
/// need them, and borrowing keeps [`TcpHeader::decode`] allocation-free
/// on the per-frame hot path. Builders use `&'static []`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader<'a> {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Raw option bytes (without padding).
    pub options: &'a [u8],
}

impl<'a> TcpHeader<'a> {
    /// An initial SYN segment.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> TcpHeader<'static> {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            options: &[],
        }
    }

    /// A segment with the given flags, continuing an established flow.
    pub fn segment(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
    ) -> TcpHeader<'static> {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            options: &[],
        }
    }

    /// Header length including padded options.
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + self.options.len().div_ceil(4) * 4
    }

    /// Encode (computing the checksum over the pseudo-header and payload)
    /// and append to `out`.
    pub fn encode(&self, out: &mut Vec<u8>, ip: &Ipv4Header, payload: &[u8]) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let data_offset_words = self.header_len() / 4;
        out.push((data_offset_words as u8) << 4);
        out.push(self.flags.to_u8());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        out.extend_from_slice(self.options);
        // Pad options to a word boundary with end-of-options octets.
        while (out.len() - start) % 4 != 0 {
            out.push(0);
        }
        let seg_len = (out.len() - start + payload.len()) as u16;
        let ph = ip.pseudo_header(seg_len);
        let cks = internet_checksum(&[&ph, &out[start..], payload]);
        out[start + 16..start + 18].copy_from_slice(&cks.to_be_bytes());
    }

    /// Decode from the front of `buf`; returns the header and payload offset.
    ///
    /// Checksum verification requires the full segment; snaplen-truncated
    /// captures skip it (see [`TcpHeader::verify`]).
    pub fn decode(buf: &'a [u8]) -> Result<(TcpHeader<'a>, usize), PktError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(PktError::Truncated {
                layer: "tcp",
                need: TCP_HEADER_LEN,
                have: buf.len(),
            });
        }
        let data_offset = buf[12] >> 4;
        if data_offset < 5 {
            return Err(PktError::BadDataOffset(data_offset));
        }
        let header_len = data_offset as usize * 4;
        if buf.len() < header_len {
            return Err(PktError::Truncated {
                layer: "tcp options",
                need: header_len,
                have: buf.len(),
            });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags::from_u8(buf[13]),
                window: u16::from_be_bytes([buf[14], buf[15]]),
                options: &buf[TCP_HEADER_LEN..header_len],
            },
            header_len,
        ))
    }

    /// Verify the checksum of a fully-captured segment.
    pub fn verify(ip: &Ipv4Header, tcp_bytes: &[u8]) -> Result<(), PktError> {
        if tcp_bytes.len() < TCP_HEADER_LEN {
            return Err(PktError::Truncated {
                layer: "tcp",
                need: TCP_HEADER_LEN,
                have: tcp_bytes.len(),
            });
        }
        let ph = ip.pseudo_header(tcp_bytes.len() as u16);
        if internet_checksum(&[&ph, tcp_bytes]) != 0 {
            return Err(PktError::BadChecksum { layer: "tcp" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProtocol;
    use std::net::Ipv4Addr;

    fn ip_for(seg_len: usize) -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 1, 1, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Tcp,
            seg_len,
        )
    }

    #[test]
    fn flags_round_trip() {
        for v in 0u8..64 {
            assert_eq!(TcpFlags::from_u8(v).to_u8(), v);
        }
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SA");
    }

    #[test]
    fn round_trip_no_options() {
        let h = TcpHeader::syn(49152, 443, 12345);
        let payload = b"";
        let ip = ip_for(h.header_len() + payload.len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, payload);
        assert_eq!(buf.len(), TCP_HEADER_LEN);
        let (back, off) = TcpHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, TCP_HEADER_LEN);
        TcpHeader::verify(&ip, &buf).unwrap();
    }

    #[test]
    fn round_trip_with_options_and_payload() {
        let mut h = TcpHeader::segment(80, 50000, 7, 9, TcpFlags::PSH_ACK);
        h.options = &[2, 4, 5, 0xB4, 1]; // MSS option + NOP, needs padding
        let payload = b"HTTP/1.1 200 OK\r\n";
        let ip = ip_for(h.header_len() + payload.len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, payload);
        assert_eq!(buf.len() % 4, 0);
        buf.extend_from_slice(payload);
        let (back, off) = TcpHeader::decode(&buf).unwrap();
        assert_eq!(off, h.header_len());
        assert_eq!(back.src_port, 80);
        assert_eq!(&back.options[..5], h.options);
        TcpHeader::verify(&ip, &buf).unwrap();
    }

    #[test]
    fn corrupted_segment_fails_verify() {
        let h = TcpHeader::syn(1, 2, 3);
        let ip = ip_for(h.header_len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, b"");
        buf[4] ^= 0xFF;
        assert!(TcpHeader::verify(&ip, &buf).is_err());
    }

    #[test]
    fn bad_data_offset_rejected() {
        let h = TcpHeader::syn(1, 2, 3);
        let ip = ip_for(h.header_len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, b"");
        buf[12] = 0x40; // data offset 4
        assert!(matches!(TcpHeader::decode(&buf), Err(PktError::BadDataOffset(4))));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(TcpHeader::decode(&[0u8; 19]).is_err());
    }
}
