use crate::checksum::internet_checksum;
use crate::ipv4::Ipv4Header;
use crate::PktError;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Declared length of header plus payload.
    pub length: u16,
}

impl UdpHeader {
    /// Header for a datagram with `payload_len` bytes of payload.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> UdpHeader {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Encode (computing the checksum over the pseudo-header and payload)
    /// and append to `out`.
    pub fn encode(&self, out: &mut Vec<u8>, ip: &Ipv4Header, payload: &[u8]) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        let ph = ip.pseudo_header(self.length);
        let mut cks = internet_checksum(&[&ph, &out[start..], payload]);
        // An all-zero transmitted checksum means "no checksum" in UDP;
        // a computed zero is sent as 0xFFFF (RFC 768).
        if cks == 0 {
            cks = 0xFFFF;
        }
        out[start + 6..start + 8].copy_from_slice(&cks.to_be_bytes());
    }

    /// Decode from the front of `buf`; returns the header and payload offset.
    ///
    /// The checksum is *not* verified here: a snaplen-truncated capture
    /// cannot reproduce it. Callers with full payloads can use
    /// [`UdpHeader::verify`].
    pub fn decode(buf: &[u8]) -> Result<(UdpHeader, usize), PktError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(PktError::Truncated {
                layer: "udp",
                need: UDP_HEADER_LEN,
                have: buf.len(),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length: u16::from_be_bytes([buf[4], buf[5]]),
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Verify the checksum of a fully-captured datagram.
    pub fn verify(ip: &Ipv4Header, udp_bytes: &[u8]) -> Result<(), PktError> {
        if udp_bytes.len() < UDP_HEADER_LEN {
            return Err(PktError::Truncated {
                layer: "udp",
                need: UDP_HEADER_LEN,
                have: udp_bytes.len(),
            });
        }
        let transmitted = u16::from_be_bytes([udp_bytes[6], udp_bytes[7]]);
        if transmitted == 0 {
            return Ok(()); // checksum disabled by sender
        }
        let ph = ip.pseudo_header(udp_bytes.len() as u16);
        if internet_checksum(&[&ph, udp_bytes]) != 0 {
            return Err(PktError::BadChecksum { layer: "udp" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProtocol;
    use std::net::Ipv4Addr;

    fn ip_for(payload_len: usize) -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 1, 1, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            IpProtocol::Udp,
            UDP_HEADER_LEN + payload_len,
        )
    }

    #[test]
    fn round_trip_and_verify() {
        let payload = b"dns query bytes";
        let ip = ip_for(payload.len());
        let h = UdpHeader::new(49152, 53, payload.len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, payload);
        buf.extend_from_slice(payload);
        let (back, off) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, UDP_HEADER_LEN);
        UdpHeader::verify(&ip, &buf).unwrap();
    }

    #[test]
    fn corrupted_payload_fails_verify() {
        let payload = b"dns query bytes";
        let ip = ip_for(payload.len());
        let h = UdpHeader::new(49152, 53, payload.len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, payload);
        buf.extend_from_slice(payload);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            UdpHeader::verify(&ip, &buf),
            Err(PktError::BadChecksum { layer: "udp" })
        ));
    }

    #[test]
    fn zero_checksum_means_disabled() {
        let payload = b"x";
        let ip = ip_for(payload.len());
        let h = UdpHeader::new(1, 2, payload.len());
        let mut buf = Vec::new();
        h.encode(&mut buf, &ip, payload);
        buf.extend_from_slice(payload);
        buf[6] = 0;
        buf[7] = 0;
        UdpHeader::verify(&ip, &buf).unwrap();
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(UdpHeader::decode(&[0u8; 7]).is_err());
    }
}
