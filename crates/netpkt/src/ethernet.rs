use crate::PktError;
use std::fmt;

/// Length of an Ethernet II header (no 802.1Q tag).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// Conventional address used by the simulator for customer-side frames.
    pub const LOCAL: MacAddr = MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
    /// Conventional address used by the simulator for the ISP aggregation router.
    pub const UPSTREAM: MacAddr = MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, 0x02]);

    /// True for locally-administered addresses (bit 1 of the first octet).
    pub fn is_local_admin(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// EtherType values the monitor distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800) — the only type the parser descends into.
    Ipv4,
    /// IPv6 (0x86DD) — recognised so it can be counted, not parsed.
    Ipv6,
    /// ARP (0x0806) — recognised so it can be counted, not parsed.
    Arp,
    /// Anything else, preserved numerically.
    Other(u16),
}

impl EtherType {
    /// Numeric wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decode from the numeric wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86DD => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination hardware address.
    pub dst: MacAddr,
    /// Source hardware address.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Encode to 14 octets appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }

    /// Decode from the front of `buf`; returns the header and payload offset.
    pub fn decode(buf: &[u8]) -> Result<(EthernetHeader, usize), PktError> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(PktError::Truncated {
                layer: "ethernet",
                need: ETHERNET_HEADER_LEN,
                have: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
            },
            ETHERNET_HEADER_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = EthernetHeader {
            dst: MacAddr::UPSTREAM,
            src: MacAddr::LOCAL,
            ethertype: EtherType::Ipv4,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
        let (back, off) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, ETHERNET_HEADER_LEN);
    }

    #[test]
    fn short_frame_rejected() {
        assert!(matches!(
            EthernetHeader::decode(&[0u8; 13]),
            Err(PktError::Truncated { layer: "ethernet", .. })
        ));
    }

    #[test]
    fn ethertype_round_trip() {
        for v in [0x0800u16, 0x86DD, 0x0806, 0x88CC] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn mac_display_and_flags() {
        assert_eq!(MacAddr::LOCAL.to_string(), "02:00:00:00:00:01");
        assert!(MacAddr::LOCAL.is_local_admin());
        assert!(!MacAddr([0x00, 0, 0, 0, 0, 0]).is_local_admin());
    }
}
