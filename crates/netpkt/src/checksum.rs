/// The Internet checksum (RFC 1071): one's-complement sum of 16-bit words.
///
/// `data` may have odd length; the final byte is padded with zero as the
/// high octet of the last word. The return value is the final complemented
/// checksum ready to be written into a header field.
pub fn internet_checksum(chunks: &[&[u8]]) -> u16 {
    let mut sum = 0u32;
    // A carry byte between chunks keeps word alignment across chunk
    // boundaries, so callers can pass pseudo-header and payload separately
    // only when each chunk except the last is even-length (asserted).
    for (i, chunk) in chunks.iter().enumerate() {
        if i + 1 < chunks.len() {
            debug_assert!(chunk.len() % 2 == 0, "only the final chunk may be odd-length");
        }
        let mut iter = chunk.chunks_exact(2);
        for w in &mut iter {
            sum += u16::from_be_bytes([w[0], w[1]]) as u32;
        }
        if let [last] = iter.remainder() {
            sum += u16::from_be_bytes([*last, 0]) as u32;
        }
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let cks = internet_checksum(&[&data]);
        assert_eq!(cks, !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[&[0xAB]]), internet_checksum(&[&[0xAB, 0x00]]));
    }

    #[test]
    fn verifying_a_checksummed_block_yields_zero() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 0, 0];
        let cks = internet_checksum(&[&data]);
        data[6..8].copy_from_slice(&cks.to_be_bytes());
        assert_eq!(internet_checksum(&[&data]), 0);
    }

    #[test]
    fn split_across_chunks_matches_contiguous() {
        let data = [10u8, 20, 30, 40, 50, 60];
        let whole = internet_checksum(&[&data]);
        let split = internet_checksum(&[&data[..2], &data[2..]]);
        assert_eq!(whole, split);
    }

    #[test]
    fn empty_input() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }
}
