use crate::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::TcpHeader;
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::PktError;
use std::net::Ipv4Addr;

/// A frame being built for capture.
///
/// A frame either carries its payload in full, or declares payload it does
/// not carry (`virtual_payload`), mimicking a snaplen-truncated capture.
/// Virtual payload is how the simulator represents bulk transfer bytes
/// without materialising them: the IP/UDP length fields (and, for TCP, the
/// sequence numbers chosen by the caller) declare the true sizes, while the
/// capture file stores only the headers — exactly what a production
/// monitoring deployment records.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Link-layer header.
    pub eth: EthernetHeader,
    /// Network-layer header (its `total_len` includes virtual payload).
    pub ip: Ipv4Header,
    /// Encoded transport header plus any *carried* payload.
    transport_bytes: Vec<u8>,
    /// Declared-but-not-carried payload bytes.
    virtual_payload: usize,
}

impl Frame {
    /// Build a UDP datagram carrying `payload` in full (used for DNS, whose
    /// payload the monitor must parse).
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Frame {
        let ip = Ipv4Header::new(src, dst, IpProtocol::Udp, UDP_HEADER_LEN + payload.len());
        let udp = UdpHeader::new(src_port, dst_port, payload.len());
        let mut transport_bytes = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        udp.encode(&mut transport_bytes, &ip, payload);
        transport_bytes.extend_from_slice(payload);
        Frame {
            eth: EthernetHeader { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            ip,
            transport_bytes,
            virtual_payload: 0,
        }
    }

    /// Build a UDP datagram that *declares* `declared_payload` bytes but
    /// carries none (checksum transmitted as zero = disabled, which is
    /// legal for UDP and unavoidable when the payload is not materialised).
    pub fn udp_virtual(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        declared_payload: usize,
    ) -> Frame {
        debug_assert!(UDP_HEADER_LEN + declared_payload <= u16::MAX as usize);
        let ip = Ipv4Header::new(src, dst, IpProtocol::Udp, UDP_HEADER_LEN + declared_payload);
        let udp = UdpHeader::new(src_port, dst_port, declared_payload);
        let mut transport_bytes = Vec::with_capacity(UDP_HEADER_LEN);
        transport_bytes.extend_from_slice(&udp.src_port.to_be_bytes());
        transport_bytes.extend_from_slice(&udp.dst_port.to_be_bytes());
        transport_bytes.extend_from_slice(&udp.length.to_be_bytes());
        transport_bytes.extend_from_slice(&[0, 0]); // checksum disabled
        Frame {
            eth: EthernetHeader { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            ip,
            transport_bytes,
            virtual_payload: declared_payload,
        }
    }

    /// Build a TCP segment carrying `payload` in full. Bulk data is
    /// represented by advancing `header.seq` between segments rather than
    /// attaching payload; the monitor recovers byte counts from sequence
    /// space, as Zeek does.
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        header: TcpHeader<'_>,
        payload: &[u8],
    ) -> Frame {
        let ip = Ipv4Header::new(src, dst, IpProtocol::Tcp, header.header_len() + payload.len());
        let mut transport_bytes = Vec::with_capacity(header.header_len() + payload.len());
        header.encode(&mut transport_bytes, &ip, payload);
        transport_bytes.extend_from_slice(payload);
        Frame {
            eth: EthernetHeader { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            ip,
            transport_bytes,
            virtual_payload: 0,
        }
    }

    /// Bytes actually stored in the capture.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + self.transport_bytes.len());
        self.eth.encode(&mut out);
        self.ip.encode(&mut out);
        out.extend_from_slice(&self.transport_bytes);
        out
    }

    /// Length the frame had on the wire (captured + virtual payload).
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + self.transport_bytes.len() + self.virtual_payload
    }
}

/// Parsed transport layer of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport<'a> {
    /// UDP header.
    Udp(UdpHeader),
    /// TCP header.
    Tcp(TcpHeader<'a>),
    /// A protocol the monitor counts but does not parse.
    Other(IpProtocol),
}

impl Transport<'_> {
    /// Source port if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            Transport::Udp(u) => Some(u.src_port),
            Transport::Tcp(t) => Some(t.src_port),
            Transport::Other(_) => None,
        }
    }

    /// Destination port if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            Transport::Udp(u) => Some(u.dst_port),
            Transport::Tcp(t) => Some(t.dst_port),
            Transport::Other(_) => None,
        }
    }
}

/// A fully-parsed captured packet.
#[derive(Debug, Clone)]
pub struct Packet<'a> {
    /// Link-layer header.
    pub eth: EthernetHeader,
    /// Network-layer header.
    pub ip: Ipv4Header,
    /// Transport header.
    pub transport: Transport<'a>,
    /// Payload bytes actually present in the capture.
    pub payload: &'a [u8],
    /// Payload length declared by the headers (may exceed `payload.len()`
    /// when the capture was snaplen-truncated).
    pub declared_payload: usize,
}

impl<'a> Packet<'a> {
    /// Parse a captured frame. `captured` holds the stored bytes;
    /// `orig_len` is the original wire length recorded by the capture.
    ///
    /// IPv6/ARP frames surface as [`PktError::UnsupportedEtherType`] so the
    /// caller can count them; a capture too short for the transport header
    /// is an error (the simulator's snaplen always covers headers).
    pub fn parse(captured: &'a [u8], orig_len: usize) -> Result<Packet<'a>, PktError> {
        debug_assert!(orig_len >= captured.len());
        let (eth, ip_off) = EthernetHeader::decode(captured)?;
        match eth.ethertype {
            EtherType::Ipv4 => {}
            other => return Err(PktError::UnsupportedEtherType(other.to_u16())),
        }
        let (ip, tp_rel) = Ipv4Header::decode(&captured[ip_off..])?;
        let tp_off = ip_off + tp_rel;
        let rest = &captured[tp_off..];
        let (transport, payload_rel, header_len) = match ip.protocol {
            IpProtocol::Udp => {
                let (u, off) = UdpHeader::decode(rest)?;
                (Transport::Udp(u), off, UDP_HEADER_LEN)
            }
            IpProtocol::Tcp => {
                let (t, off) = TcpHeader::decode(rest)?;
                let hl = t.header_len();
                (Transport::Tcp(t), off, hl)
            }
            other => (Transport::Other(other), 0, 0),
        };
        let payload = &rest[payload_rel..];
        let declared_payload = (ip.total_len as usize)
            .saturating_sub(tp_rel)
            .saturating_sub(header_len);
        Ok(Packet { eth, ip, transport, payload, declared_payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    const A: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 2);
    const B: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    #[test]
    fn udp_frame_parses_back() {
        let f = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, 49152, 53, b"payload");
        let bytes = f.encode();
        assert_eq!(f.wire_len(), bytes.len());
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        assert_eq!(p.ip.src, A);
        assert_eq!(p.transport.dst_port(), Some(53));
        assert_eq!(p.payload, b"payload");
        assert_eq!(p.declared_payload, 7);
    }

    #[test]
    fn udp_virtual_declares_more_than_carried() {
        let f = Frame::udp_virtual(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, 50000, 4433, 1200);
        let bytes = f.encode();
        assert_eq!(f.wire_len(), bytes.len() + 1200);
        let p = Packet::parse(&bytes, f.wire_len()).unwrap();
        assert_eq!(p.payload.len(), 0);
        assert_eq!(p.declared_payload, 1200);
        match p.transport {
            Transport::Udp(u) => assert_eq!(u.length as usize, UDP_HEADER_LEN + 1200),
            _ => panic!("expected udp"),
        }
    }

    #[test]
    fn tcp_frame_parses_back() {
        let h = TcpHeader::segment(49152, 443, 100, 200, TcpFlags::PSH_ACK);
        let f = Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, h, b"hello");
        let bytes = f.encode();
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        match &p.transport {
            Transport::Tcp(t) => {
                assert_eq!(t.seq, 100);
                assert!(t.flags.psh && t.flags.ack);
            }
            _ => panic!("expected tcp"),
        }
        assert_eq!(p.payload, b"hello");
        assert_eq!(p.declared_payload, 5);
    }

    #[test]
    fn ipv6_reported_as_unsupported() {
        let mut bytes = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, 1, 2, b"").encode();
        bytes[12] = 0x86;
        bytes[13] = 0xDD;
        assert!(matches!(
            Packet::parse(&bytes, bytes.len()),
            Err(PktError::UnsupportedEtherType(0x86DD))
        ));
    }

    #[test]
    fn icmp_surfaces_as_other() {
        let f = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, 1, 2, b"xy");
        let mut bytes = f.encode();
        // Rewrite the protocol field and fix the header checksum.
        bytes[14 + 9] = 1; // ICMP
        bytes[14 + 10] = 0;
        bytes[14 + 11] = 0;
        let cks = crate::internet_checksum(&[&bytes[14..34]]);
        bytes[14 + 10..14 + 12].copy_from_slice(&cks.to_be_bytes());
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        assert_eq!(p.transport, Transport::Other(IpProtocol::Icmp));
        assert_eq!(p.transport.src_port(), None);
    }
}
