//! Property tests: frame build/parse round trips and parser robustness.

use netpkt::{Frame, MacAddr, Packet, PktError, TcpFlags, TcpHeader, Transport};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr::from)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..64).prop_map(TcpFlags::from_u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// UDP frames round-trip: ports, addresses, payload, declared length.
    #[test]
    fn udp_round_trips(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let f = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, src, dst, sport, dport, &payload);
        let bytes = f.encode();
        prop_assert_eq!(f.wire_len(), bytes.len());
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        prop_assert_eq!(p.ip.src, src);
        prop_assert_eq!(p.ip.dst, dst);
        prop_assert_eq!(p.transport.src_port(), Some(sport));
        prop_assert_eq!(p.transport.dst_port(), Some(dport));
        prop_assert_eq!(p.payload, &payload[..]);
        prop_assert_eq!(p.declared_payload, payload.len());
    }

    /// Virtual UDP frames declare exactly what they claim.
    #[test]
    fn udp_virtual_declares(
        src in arb_addr(),
        dst in arb_addr(),
        declared in 0usize..60_000,
    ) {
        let f = Frame::udp_virtual(MacAddr::LOCAL, MacAddr::UPSTREAM, src, dst, 1, 2, declared);
        let bytes = f.encode();
        prop_assert_eq!(f.wire_len(), bytes.len() + declared);
        let p = Packet::parse(&bytes, f.wire_len()).unwrap();
        prop_assert_eq!(p.declared_payload, declared);
        prop_assert_eq!(p.payload.len(), 0);
    }

    /// TCP frames round-trip header fields exactly.
    #[test]
    fn tcp_round_trips(
        src in arb_addr(),
        dst in arb_addr(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let h = TcpHeader::segment(sport, dport, seq, ack, flags);
        let f = Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, src, dst, h.clone(), &payload);
        let bytes = f.encode();
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        match p.transport {
            Transport::Tcp(t) => {
                prop_assert_eq!(t.seq, seq);
                prop_assert_eq!(t.ack, ack);
                prop_assert_eq!(t.flags, flags);
                prop_assert_eq!(t.src_port, sport);
            }
            other => prop_assert!(false, "expected tcp, got {other:?}"),
        }
        prop_assert_eq!(p.payload, &payload[..]);
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::parse(&bytes, bytes.len().max(1));
    }

    /// Corrupting one byte of a valid frame either still parses or errors
    /// cleanly (commonly a checksum failure) — never panics.
    #[test]
    fn corruption_is_detected_or_tolerated(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let f = Frame::udp(
            MacAddr::LOCAL, MacAddr::UPSTREAM,
            Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2),
            1000, 2000, &payload,
        );
        let mut bytes = f.encode();
        let i = pos as usize % bytes.len();
        bytes[i] ^= xor;
        match Packet::parse(&bytes, bytes.len()) {
            Ok(_) => {}
            Err(PktError::BadChecksum { .. })
            | Err(PktError::Truncated { .. })
            | Err(PktError::NotIpv4(_))
            | Err(PktError::BadIhl(_))
            | Err(PktError::BadTotalLength(_))
            | Err(PktError::UnsupportedEtherType(_))
            | Err(PktError::UnsupportedProtocol(_))
            | Err(PktError::BadDataOffset(_)) => {}
        }
    }

    /// Truncated captures fail cleanly at every cut point.
    #[test]
    fn truncation_never_panics(cut in 0usize..100) {
        let f = Frame::tcp(
            MacAddr::LOCAL, MacAddr::UPSTREAM,
            Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::syn(1, 2, 3), b"data",
        );
        let bytes = f.encode();
        let cut = cut.min(bytes.len());
        let _ = Packet::parse(&bytes[..cut], bytes.len());
    }
}
