//! Randomized tests: frame build/parse round trips and parser
//! robustness, driven by a fixed `xkit::rng` stream.

use netpkt::{Frame, MacAddr, Packet, PktError, TcpFlags, TcpHeader, Transport};
use std::net::Ipv4Addr;
use xkit::rng::{RngExt, SeedableRng, StdRng};

const CASES: usize = 256;

fn rng(label: u64) -> StdRng {
    StdRng::seed_from_u64(0x9E7_0941 ^ label)
}

fn gen_addr(r: &mut StdRng) -> Ipv4Addr {
    Ipv4Addr::from(r.random::<u32>())
}

fn gen_bytes(r: &mut StdRng, max_len: usize) -> Vec<u8> {
    (0..r.random_range(0..max_len)).map(|_| r.random::<u8>()).collect()
}

/// UDP frames round-trip: ports, addresses, payload, declared length.
#[test]
fn udp_round_trips() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let (src, dst) = (gen_addr(&mut r), gen_addr(&mut r));
        let (sport, dport) = (r.random::<u16>(), r.random::<u16>());
        let payload = gen_bytes(&mut r, 256);
        let f = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, src, dst, sport, dport, &payload);
        let bytes = f.encode();
        assert_eq!(f.wire_len(), bytes.len());
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        assert_eq!(p.ip.src, src);
        assert_eq!(p.ip.dst, dst);
        assert_eq!(p.transport.src_port(), Some(sport));
        assert_eq!(p.transport.dst_port(), Some(dport));
        assert_eq!(p.payload, &payload[..]);
        assert_eq!(p.declared_payload, payload.len());
    }
}

/// Virtual UDP frames declare exactly what they claim.
#[test]
fn udp_virtual_declares() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let (src, dst) = (gen_addr(&mut r), gen_addr(&mut r));
        let declared = r.random_range(0usize..60_000);
        let f = Frame::udp_virtual(MacAddr::LOCAL, MacAddr::UPSTREAM, src, dst, 1, 2, declared);
        let bytes = f.encode();
        assert_eq!(f.wire_len(), bytes.len() + declared);
        let p = Packet::parse(&bytes, f.wire_len()).unwrap();
        assert_eq!(p.declared_payload, declared);
        assert_eq!(p.payload.len(), 0);
    }
}

/// TCP frames round-trip header fields exactly.
#[test]
fn tcp_round_trips() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let (src, dst) = (gen_addr(&mut r), gen_addr(&mut r));
        let (sport, dport) = (r.random::<u16>(), r.random::<u16>());
        let (seq, ack) = (r.random::<u32>(), r.random::<u32>());
        let flags = TcpFlags::from_u8(r.random_range(0u8..64));
        let payload = gen_bytes(&mut r, 128);
        let h = TcpHeader::segment(sport, dport, seq, ack, flags);
        let f = Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, src, dst, h.clone(), &payload);
        let bytes = f.encode();
        let p = Packet::parse(&bytes, bytes.len()).unwrap();
        match p.transport {
            Transport::Tcp(t) => {
                assert_eq!(t.seq, seq);
                assert_eq!(t.ack, ack);
                assert_eq!(t.flags, flags);
                assert_eq!(t.src_port, sport);
            }
            other => panic!("expected tcp, got {other:?}"),
        }
        assert_eq!(p.payload, &payload[..]);
    }
}

/// The parser never panics on arbitrary bytes.
#[test]
fn parse_never_panics() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let bytes = gen_bytes(&mut r, 200);
        let _ = Packet::parse(&bytes, bytes.len().max(1));
    }
}

/// Corrupting one byte of a valid frame either still parses or errors
/// cleanly (commonly a checksum failure) — never panics.
#[test]
fn corruption_is_detected_or_tolerated() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let payload = gen_bytes(&mut r, 64);
        let f = Frame::udp(
            MacAddr::LOCAL,
            MacAddr::UPSTREAM,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            &payload,
        );
        let mut bytes = f.encode();
        let i = r.random::<u16>() as usize % bytes.len();
        bytes[i] ^= r.random_range(1u8..=255);
        match Packet::parse(&bytes, bytes.len()) {
            Ok(_) => {}
            Err(PktError::BadChecksum { .. })
            | Err(PktError::Truncated { .. })
            | Err(PktError::NotIpv4(_))
            | Err(PktError::BadIhl(_))
            | Err(PktError::BadTotalLength(_))
            | Err(PktError::UnsupportedEtherType(_))
            | Err(PktError::UnsupportedProtocol(_))
            | Err(PktError::BadDataOffset(_)) => {}
        }
    }
}

/// Truncated captures fail cleanly at every cut point.
#[test]
fn truncation_never_panics() {
    let f = Frame::tcp(
        MacAddr::LOCAL,
        MacAddr::UPSTREAM,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        TcpHeader::syn(1, 2, 3),
        b"data",
    );
    let bytes = f.encode();
    for cut in 0..=bytes.len() {
        let _ = Packet::parse(&bytes[..cut], bytes.len());
    }
}
