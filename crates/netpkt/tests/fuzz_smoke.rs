//! Seeded fuzz smoke test: arbitrary bytes through the frame parser.
//!
//! The parser's contract is total: any input yields `Ok` or a typed
//! `Err`, never a panic. Pure random buffers mostly die at the ethertype
//! gate, so a second pass mutates valid frames to reach the deeper IPv4
//! and transport paths.

use netpkt::{Frame, MacAddr, Packet, TcpHeader};
use std::net::Ipv4Addr;
use xkit::rng::{RngExt, SeedableRng, StdRng};

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 7);

#[test]
fn random_buffers_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for _ in 0..10_000 {
        let len = rng.random_range(0..120usize);
        let buf: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        let orig_len = len + rng.random_range(0..64usize);
        if let Ok(pkt) = Packet::parse(&buf, orig_len) {
            // Whatever parsed must be internally consistent.
            assert!(pkt.payload.len() <= buf.len());
            assert!(pkt.declared_payload >= pkt.payload.len());
        }
    }
}

#[test]
fn mutated_valid_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let udp = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, 49152, 53, b"payload bytes")
        .encode();
    let tcp = Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, TcpHeader::syn(50000, 443, 9), b"hi")
        .encode();
    for base in [&udp, &tcp] {
        for _ in 0..5_000 {
            let mut buf = base.to_vec();
            for _ in 0..rng.random_range(1..6usize) {
                let i = rng.random_range(0..buf.len());
                buf[i] = rng.random::<u8>();
            }
            // A random cut on top of the mutations, half the time.
            if rng.random_bool(0.5) {
                buf.truncate(rng.random_range(0..buf.len() + 1));
            }
            let _ = Packet::parse(&buf, base.len());
        }
    }
}

#[test]
fn ok_parses_are_deterministic() {
    // Parsing is a pure function of the bytes: two calls agree exactly.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let base = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, A, B, 49152, 53, b"abcd").encode();
    for _ in 0..2_000 {
        let mut buf = base.clone();
        let i = rng.random_range(0..buf.len());
        buf[i] = rng.random::<u8>();
        let first = Packet::parse(&buf, base.len());
        let second = Packet::parse(&buf, base.len());
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
