//! Zero-dependency runtime kit for the DNS-in-context workspace.
//!
//! Three small subsystems replace every external crate the workspace used
//! to pull from the registry:
//!
//! * [`rng`] — a seeded SplitMix64/Xoshiro256++ PRNG with the
//!   `Rng`/`RngExt`/`StdRng`/`SeedableRng` surface the simulator and the
//!   pairing layer previously took from `rand`, plus deterministic
//!   per-shard stream splitting ([`rng::StdRng::split`]) so parallel runs
//!   stay bit-reproducible at a fixed seed.
//! * [`par`] — scoped worker-pool helpers over `std::thread::scope` and
//!   `std::sync::Mutex`, replacing `crossbeam` + `parking_lot`.
//! * [`bench`] — a lightweight Criterion replacement (warmup, sampled
//!   iterations, median/p95, JSON baseline emit) so the bench targets run
//!   offline.
//!
//! On top of those, [`fault`] provides a seeded deterministic fault
//! injector (drop/truncate/bit-flip/duplicate/reorder) used to prove the
//! capture pipeline degrades gracefully under hostile input, [`obs`]
//! provides the observability substrate — deterministic-merge metrics,
//! stage spans, and the workspace's single monotonic-clock seam — and
//! [`collections`] provides an FxHash-backed [`collections::FastMap`]
//! for hot, never-iterated key-addressed maps.

// `deny` rather than `forbid`: the one sanctioned exception is
// `bench::alloc`, whose `GlobalAlloc` impl is unsafe by definition of the
// trait. Every other module refuses unsafe code outright.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod collections;
pub mod fault;
pub mod obs;
pub mod par;
pub mod rng;
