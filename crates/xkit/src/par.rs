//! Scoped worker pools over `std::thread::scope` + `std::sync::Mutex`.
//!
//! The helpers here preserve *input order* in their outputs no matter how
//! the work is scheduled across threads, so a parallel run is observably
//! identical to a sequential one — the property every determinism test in
//! the workspace leans on.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads the machine can usefully run.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve a `--threads` style request: `0` means "use all cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `threads` scoped workers, returning the
/// results in input order.
///
/// `f` receives `(index, item)`. Work is dealt from a shared queue, so
/// uneven item costs balance automatically; results land by index, so the
/// output never depends on scheduling. `threads <= 1` degrades to a plain
/// sequential map with no thread spawns.
pub fn par_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    par_map_with(threads, items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state.
///
/// `init` runs once per worker (once total on the sequential path) and the
/// resulting scratch value is threaded through every item that worker
/// processes. This is the seam for reusing expensive buffers — pairing
/// arenas, simulation shards — across a multi-item sweep instead of
/// rebuilding them for every item. Output order and content must not depend
/// on which worker handled which item, which holds automatically when the
/// scratch is pure reusable capacity.
pub fn par_map_with<T, U, S, I, F>(threads: usize, items: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        let mut scratch = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let job = queue.lock().unwrap().pop_front();
                    let Some((i, item)) = job else { break };
                    let out = f(&mut scratch, i, item);
                    *slots[i].lock().unwrap() = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// [`par_map`] over the index range `0..count`.
pub fn par_indexed<U, F>(threads: usize, count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map(threads, (0..count).collect(), |_, i| f(i))
}

/// Sharded map-reduce: map every item on the pool, then fold the results
/// sequentially *in input order* (so non-commutative folds are safe).
pub fn par_reduce<T, U, A, F, G>(threads: usize, items: Vec<T>, map: F, init: A, fold: G) -> A
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
    G: FnMut(A, U) -> A,
{
    par_map(threads, items, map).into_iter().fold(init, fold)
}

/// Run two independent closures on separate threads and return both
/// results. Degrades to sequential calls when `threads <= 1`.
pub fn join<A, B, FA, FB>(threads: usize, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if resolve_threads(threads) <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = fa();
        (a, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(threads, items.clone(), |_, x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_passes_indices() {
        let got = par_map(4, vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(8, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(par_map(8, vec![5], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_with_reuses_scratch_and_preserves_order() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..50).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 4] {
            inits.store(0, Ordering::Relaxed);
            let got = par_map_with(
                threads,
                items.clone(),
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::with_capacity(8)
                },
                |scratch, _, x| {
                    scratch.clear();
                    scratch.extend([x, x, x]);
                    scratch.iter().sum::<u64>()
                },
            );
            assert_eq!(got, expect, "threads={threads}");
            // One scratch per worker, never one per item.
            assert!(inits.load(Ordering::Relaxed) <= threads.max(1));
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        let seen = AtomicUsize::new(0);
        let _ = par_indexed(4, 100, |i| {
            seen.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn par_reduce_folds_in_input_order() {
        let s = par_reduce(
            4,
            (0..10).collect::<Vec<u32>>(),
            |_, x| x.to_string(),
            String::new(),
            |acc, x| acc + &x,
        );
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn join_runs_both() {
        for threads in [1, 2] {
            let (a, b) = join(threads, || 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn zero_means_all_cores() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
    }
}
