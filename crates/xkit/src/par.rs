//! Scoped worker pools over `std::thread::scope` + `std::sync::Mutex`,
//! plus the long-lived [`Pool`] the serve daemon shards tenants across.
//!
//! The helpers here preserve *input order* in their outputs no matter how
//! the work is scheduled across threads, so a parallel run is observably
//! identical to a sequential one — the property every determinism test in
//! the workspace leans on.
//!
//! This module and `xkit::obs::http` are the only places allowed to call
//! `std::thread::spawn` (`repro lint` enforces `thread-spawn-fence`);
//! everything else either borrows a scoped helper or submits to a
//! [`Pool`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Number of worker threads the machine can usefully run.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve a `--threads` style request: `0` means "use all cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Map `f` over `items` on up to `threads` scoped workers, returning the
/// results in input order.
///
/// `f` receives `(index, item)`. Work is dealt from a shared queue, so
/// uneven item costs balance automatically; results land by index, so the
/// output never depends on scheduling. `threads <= 1` degrades to a plain
/// sequential map with no thread spawns.
pub fn par_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    par_map_with(threads, items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state.
///
/// `init` runs once per worker (once total on the sequential path) and the
/// resulting scratch value is threaded through every item that worker
/// processes. This is the seam for reusing expensive buffers — pairing
/// arenas, simulation shards — across a multi-item sweep instead of
/// rebuilding them for every item. Output order and content must not depend
/// on which worker handled which item, which holds automatically when the
/// scratch is pure reusable capacity.
pub fn par_map_with<T, U, S, I, F>(threads: usize, items: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n.max(1));
    if workers <= 1 {
        let mut scratch = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let job = queue.lock().unwrap().pop_front();
                    let Some((i, item)) = job else { break };
                    let out = f(&mut scratch, i, item);
                    *slots[i].lock().unwrap() = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

/// [`par_map`] over the index range `0..count`.
pub fn par_indexed<U, F>(threads: usize, count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map(threads, (0..count).collect(), |_, i| f(i))
}

/// Sharded map-reduce: map every item on the pool, then fold the results
/// sequentially *in input order* (so non-commutative folds are safe).
pub fn par_reduce<T, U, A, F, G>(threads: usize, items: Vec<T>, map: F, init: A, fold: G) -> A
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
    G: FnMut(A, U) -> A,
{
    par_map(threads, items, map).into_iter().fold(init, fold)
}

/// Run two independent closures on separate threads and return both
/// results. Degrades to sequential calls when `threads <= 1`.
pub fn join<A, B, FA, FB>(threads: usize, fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if resolve_threads(threads) <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = fa();
        (a, hb.join().expect("join worker panicked"))
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    active: usize,
    stop: bool,
    panicked: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for jobs (or stop).
    work: Condvar,
    /// [`Pool::wait_idle`] parks here waiting for quiescence.
    idle: Condvar,
}

/// A long-lived worker pool with a shared FIFO job queue — the execution
/// substrate for the multi-tenant serve daemon, where tenant streams
/// outlive any one scoped region.
///
/// Unlike the scoped helpers above, jobs are detached `FnOnce`s with no
/// return channel: results travel through whatever the job closes over
/// (the daemon publishes into per-tenant `ObsHub`s). [`wait_idle`]
/// blocks until the queue is empty *and* every worker is parked, which
/// is the daemon's drain barrier. A job that panics is contained: the
/// worker survives, the panic is counted, and [`panicked`] reports it.
///
/// [`wait_idle`]: Pool::wait_idle
/// [`panicked`]: Pool::panicked
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool of `resolve_threads(threads)` workers (min 1).
    pub fn new(threads: usize) -> Pool {
        let workers = resolve_threads(threads).max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                stop: false,
                panicked: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("par-pool-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job. Panics if the pool is already shut down (a
    /// programming error, not a runtime condition).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut st = self.lock();
        assert!(!st.stop, "submit on a shut-down pool");
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.work.notify_one();
    }

    /// Block until the queue is empty and no job is running. This is
    /// the drain barrier: jobs submitted *during* the wait extend it.
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while !(st.queue.is_empty() && st.active == 0) {
            st = self
                .shared
                .idle
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Jobs that panicked since the pool started (contained, workers
    /// survive).
    pub fn panicked(&self) -> u64 {
        self.lock().panicked
    }

    /// Stop the workers and join them. Queued-but-unstarted jobs are
    /// abandoned — call [`wait_idle`](Pool::wait_idle) first to drain.
    /// Also runs on drop; idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.lock();
            st.stop = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut st = shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    loop {
        if let Some(job) = st.queue.pop_front() {
            st.active += 1;
            drop(st);
            // Contain panics so one bad tenant can't wedge the pool:
            // the worker survives and wait_idle still terminates.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            st = shared
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st.active -= 1;
            if outcome.is_err() {
                st.panicked += 1;
            }
            if st.queue.is_empty() && st.active == 0 {
                shared.idle.notify_all();
            }
        } else if st.stop {
            return;
        } else {
            st = shared
                .work
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(threads, items.clone(), |_, x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_passes_indices() {
        let got = par_map(4, vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(8, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(par_map(8, vec![5], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_with_reuses_scratch_and_preserves_order() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..50).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 4] {
            inits.store(0, Ordering::Relaxed);
            let got = par_map_with(
                threads,
                items.clone(),
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::with_capacity(8)
                },
                |scratch, _, x| {
                    scratch.clear();
                    scratch.extend([x, x, x]);
                    scratch.iter().sum::<u64>()
                },
            );
            assert_eq!(got, expect, "threads={threads}");
            // One scratch per worker, never one per item.
            assert!(inits.load(Ordering::Relaxed) <= threads.max(1));
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        let seen = AtomicUsize::new(0);
        let _ = par_indexed(4, 100, |i| {
            seen.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn par_reduce_folds_in_input_order() {
        let s = par_reduce(
            4,
            (0..10).collect::<Vec<u32>>(),
            |_, x| x.to_string(),
            String::new(),
            |acc, x| acc + &x,
        );
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn join_runs_both() {
        for threads in [1, 2] {
            let (a, b) = join(threads, || 2 + 2, || "ok".to_string());
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn zero_means_all_cores() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn pool_runs_every_job_and_drains() {
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let done = Arc::new(AtomicUsize::new(0));
            for _ in 0..100 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
            assert_eq!(done.load(Ordering::Relaxed), 100, "threads={threads}");
            assert_eq!(pool.panicked(), 0);
        }
    }

    #[test]
    fn pool_wait_idle_covers_in_flight_jobs() {
        // A job that submits another job: wait_idle must cover both.
        let pool = Arc::new(Pool::new(2));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            let inner_done = Arc::clone(&done);
            let pool2 = Arc::clone(&pool);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
                pool2.submit(move || {
                    inner_done.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_contains_panicking_jobs() {
        let pool = Pool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("bad tenant"));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 10, "workers survive a panic");
        assert_eq!(pool.panicked(), 1);
    }

    #[test]
    fn pool_shutdown_is_idempotent_and_drop_safe() {
        let mut pool = Pool::new(2);
        pool.submit(|| {});
        pool.wait_idle();
        pool.shutdown();
        pool.shutdown();
        drop(pool);
    }
}
