//! Fast hashing for hot, never-iterated maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! HashDoS-resistant, which the simulator's internal maps do not need:
//! their keys are small integers derived from trusted, deterministic
//! state. [`FastMap`] swaps in a Fowler–Noll–Vo-flavoured
//! multiply-rotate hasher (the `FxHasher` scheme used by rustc) that
//! hashes a `u32`/`u64` key in a couple of cycles.
//!
//! **Determinism caveat:** changing the hasher changes bucket order, so
//! a `FastMap` must never be *iterated* on any path that feeds output —
//! use it only for `get`/`get_mut`/`insert`/`remove` by key. Maps whose
//! iteration order reaches logs, metrics, or pcap bytes must stay on
//! `BTreeMap` or sort their keys first.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the [`FxHasher`] — for key-addressed hot maps only
/// (see the module docs for the no-iteration rule).
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` companion of [`FastMap`], same rules.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` function: a word-at-a-time multiply-rotate mix.
/// Not keyed, not DoS-resistant — strictly for trusted internal keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail-padded chunks; the integer fast
        // paths below cover every hot key, so this is the cold road.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
        // Mix the length so zero-padding cannot make `b""` and `b"\0"`
        // (or any zero-extended pair) collide.
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for k in 0..10_000u64 {
            m.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), k as u32);
        }
        for k in 0..10_000u64 {
            assert_eq!(m.get(&k.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(&(k as u32)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn set_round_trips() {
        let mut s: FastSet<u32> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn hash_is_deterministic_across_instances() {
        let h = |n: u64| {
            let mut hx = FxHasher::default();
            hx.write_u64(n);
            hx.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_matches_padding_rule() {
        // write() must consume any length without panicking and spread
        // single-bit differences.
        let h = |b: &[u8]| {
            let mut hx = FxHasher::default();
            hx.write(b);
            hx.finish()
        };
        assert_ne!(h(b"abcdefgh1"), h(b"abcdefgh2"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
