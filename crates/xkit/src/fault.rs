//! Seeded, deterministic fault injection for captured-frame streams.
//!
//! The injector models the capture-side damage a week of residential
//! monitoring actually sees — dropped frames, snaplen clips, flipped bits,
//! duplicated and reordered deliveries — as a pure function of
//! (configuration, RNG stream). Feeding the same frames through an
//! injector built from the same [`rng::StdRng`](crate::rng::StdRng) split
//! always yields the same corrupted stream, so every fuzz run is
//! byte-reproducible.
//!
//! A zero-rate configuration is special-cased: it never consumes RNG state
//! and passes every frame through untouched, which is what lets the test
//! suite assert that a rate-0 fuzz run is byte-identical to the clean
//! pipeline.

use crate::rng::{RngExt, StdRng};

/// Per-kind fault probabilities, each in `[0, 1]`, summed at most 1.
///
/// Exactly one fault (or none) is applied per frame: a single uniform draw
/// is compared against the cumulative rates, so the kinds are mutually
/// exclusive and the per-frame RNG cost is constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability the frame is silently dropped.
    pub drop: f64,
    /// Probability the captured bytes are clipped to a random prefix
    /// (the original wire length is preserved, like a snaplen cut).
    pub truncate: f64,
    /// Probability a single random bit of the captured bytes is flipped.
    pub bit_flip: f64,
    /// Probability the frame is delivered twice back-to-back.
    pub duplicate: f64,
    /// Probability the frame is held back and delivered after its
    /// successor (a one-slot adjacent swap).
    pub reorder: f64,
}

impl FaultConfig {
    /// No faults at all; the injector becomes a pass-through.
    pub fn clean() -> FaultConfig {
        FaultConfig { drop: 0.0, truncate: 0.0, bit_flip: 0.0, duplicate: 0.0, reorder: 0.0 }
    }

    /// Split a total fault rate evenly across the five kinds.
    ///
    /// `uniform(0.05)` gives each kind a 1% chance per frame.
    pub fn uniform(total: f64) -> FaultConfig {
        let each = total / 5.0;
        FaultConfig { drop: each, truncate: each, bit_flip: each, duplicate: each, reorder: each }
    }

    /// Sum of all per-kind rates (the per-frame fault probability).
    pub fn total(&self) -> f64 {
        self.drop + self.truncate + self.bit_flip + self.duplicate + self.reorder
    }

    /// True when every rate is zero and the injector must not perturb the
    /// stream (or the RNG).
    pub fn is_clean(&self) -> bool {
        self.total() == 0.0
    }

    /// Validate rates: each in `[0, 1]`, sum at most 1.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [self.drop, self.truncate, self.bit_flip, self.duplicate, self.reorder];
        for r in rates {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(format!("fault rate {r} outside [0, 1]"));
            }
        }
        if self.total() > 1.0 {
            return Err(format!("fault rates sum to {} > 1", self.total()));
        }
        Ok(())
    }
}

/// Counters for what the injector actually did to a stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to the injector.
    pub frames_in: u64,
    /// Frames emitted (after drops, duplicates, and flush).
    pub frames_out: u64,
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames clipped to a shorter capture.
    pub truncated: u64,
    /// Frames with one bit flipped.
    pub bit_flipped: u64,
    /// Frames emitted twice.
    pub duplicated: u64,
    /// Frames swapped past their successor.
    pub reordered: u64,
}

impl FaultStats {
    /// Fold another stats block into this one (shard-wise merge).
    pub fn merge(&mut self, other: &FaultStats) {
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.dropped += other.dropped;
        self.truncated += other.truncated;
        self.bit_flipped += other.bit_flipped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }

    /// Total frames a fault touched (dropping, clipping, flipping,
    /// duplicating, or reordering).
    pub fn faulted(&self) -> u64 {
        self.dropped + self.truncated + self.bit_flipped + self.duplicated + self.reordered
    }

    /// Express the counters as an obs snapshot.
    ///
    /// Damage events live under `fault.*` (`fault.dropped`,
    /// `fault.truncated`, …) so a clean run is recognizable as "every
    /// `fault.*` damage counter is zero"; the pass-through frame counts
    /// live under `fault.io.*` because they increment even when nothing
    /// was damaged. Merging these snapshots is equivalent to
    /// [`FaultStats::merge`].
    pub fn to_metrics(&self) -> crate::obs::Metrics {
        let mut m = crate::obs::Metrics::new();
        m.add("fault.io.frames_in", self.frames_in);
        m.add("fault.io.frames_out", self.frames_out);
        m.add("fault.dropped", self.dropped);
        m.add("fault.truncated", self.truncated);
        m.add("fault.bit_flipped", self.bit_flipped);
        m.add("fault.duplicated", self.duplicated);
        m.add("fault.reordered", self.reordered);
        m
    }
}

/// One captured frame: timestamp, original wire length, captured bytes.
///
/// `xkit` stays dependency-free, so this mirrors (rather than imports) the
/// pcap record shape; callers convert at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Capture timestamp in nanoseconds since the epoch.
    pub ts_nanos: u64,
    /// Length of the frame on the wire, before any snaplen clip.
    pub orig_len: u32,
    /// Captured bytes (possibly fewer than `orig_len`).
    pub data: Vec<u8>,
}

/// The deterministic fault injector.
///
/// Feed frames through [`apply`](FaultInjector::apply) in capture order and
/// call [`flush`](FaultInjector::flush) at end-of-stream to release a frame
/// held back by a pending reorder.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
    /// A frame held back by a reorder fault, emitted after its successor.
    held: Option<RawFrame>,
}

impl FaultInjector {
    /// Build an injector from a validated config and a dedicated RNG
    /// stream (use [`StdRng::split`] so the stream is independent of every
    /// other consumer).
    ///
    /// # Panics
    /// Panics if the config fails [`FaultConfig::validate`]; rates are
    /// caller-supplied constants, so this is a programming error.
    pub fn new(cfg: FaultConfig, rng: StdRng) -> FaultInjector {
        if let Err(e) = cfg.validate() {
            panic!("invalid FaultConfig: {e}");
        }
        FaultInjector { cfg, rng, stats: FaultStats::default(), held: None }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Apply at most one fault to `frame`, returning the frames to emit
    /// now (empty for a drop or a reorder holdback, two for a duplicate).
    pub fn apply(&mut self, frame: RawFrame) -> Vec<RawFrame> {
        self.stats.frames_in += 1;
        // Clean configs must not consume RNG state: a rate-0 run is
        // byte-identical to never having constructed an injector.
        if self.cfg.is_clean() {
            self.stats.frames_out += 1;
            return vec![frame];
        }
        let u: f64 = self.rng.random();
        let mut out = self.fault_for(u, frame);
        // A pending reorder releases its frame after the next emission.
        if !out.is_empty() {
            if let Some(held) = self.held.take() {
                out.push(held);
            }
        }
        self.stats.frames_out += out.len() as u64;
        out
    }

    /// End-of-stream: release a frame still held by a pending reorder.
    pub fn flush(&mut self) -> Vec<RawFrame> {
        let out: Vec<RawFrame> = self.held.take().into_iter().collect();
        self.stats.frames_out += out.len() as u64;
        out
    }

    /// Decide and apply the fault selected by the uniform draw `u`.
    fn fault_for(&mut self, u: f64, mut frame: RawFrame) -> Vec<RawFrame> {
        let c = self.cfg;
        let mut edge = c.drop;
        if u < edge {
            self.stats.dropped += 1;
            return Vec::new();
        }
        edge += c.truncate;
        if u < edge {
            if !frame.data.is_empty() {
                let keep = self.rng.random_range(0..frame.data.len());
                frame.data.truncate(keep);
                self.stats.truncated += 1;
            }
            return vec![frame];
        }
        edge += c.bit_flip;
        if u < edge {
            if !frame.data.is_empty() {
                let bit = self.rng.random_range(0..frame.data.len() * 8);
                frame.data[bit / 8] ^= 1 << (bit % 8);
                self.stats.bit_flipped += 1;
            }
            return vec![frame];
        }
        edge += c.duplicate;
        if u < edge {
            self.stats.duplicated += 1;
            return vec![frame.clone(), frame];
        }
        edge += c.reorder;
        if u < edge {
            self.stats.reordered += 1;
            // Hold this frame until the next emission; if a frame is
            // already held (two reorders in a row), release it now so the
            // holdback slot never grows beyond one frame.
            return match self.held.replace(frame) {
                Some(prev) => vec![prev],
                None => Vec::new(),
            };
        }
        vec![frame]
    }
}

/// Corrupt an in-memory frame stream in one call.
///
/// Convenience wrapper over [`FaultInjector`]: applies faults to every
/// frame in order, flushes the reorder slot, and returns the corrupted
/// stream together with the stats.
pub fn corrupt_stream(
    frames: impl IntoIterator<Item = RawFrame>,
    cfg: FaultConfig,
    rng: StdRng,
) -> (Vec<RawFrame>, FaultStats) {
    let mut inj = FaultInjector::new(cfg, rng);
    let mut out = Vec::new();
    for f in frames {
        out.extend(inj.apply(f));
    }
    out.extend(inj.flush());
    (out, *inj.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng};

    fn frames(n: usize) -> Vec<RawFrame> {
        (0..n)
            .map(|i| RawFrame {
                ts_nanos: i as u64 * 1_000,
                orig_len: 64,
                data: vec![i as u8; 64],
            })
            .collect()
    }

    #[test]
    fn clean_config_is_identity_and_consumes_no_rng() {
        let rng = StdRng::seed_from_u64(1);
        let mut inj = FaultInjector::new(FaultConfig::clean(), rng.clone());
        let input = frames(100);
        let mut out = Vec::new();
        for f in input.clone() {
            out.extend(inj.apply(f));
        }
        out.extend(inj.flush());
        assert_eq!(out, input);
        assert_eq!(inj.stats().faulted(), 0);
        assert_eq!(inj.stats().frames_in, 100);
        assert_eq!(inj.stats().frames_out, 100);
        // The injector's RNG state is untouched.
        let mut a = inj.rng.clone();
        let mut b = rng.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn same_seed_reproduces_byte_identical_streams() {
        let cfg = FaultConfig::uniform(0.3);
        let (out1, st1) = corrupt_stream(frames(500), cfg, StdRng::seed_from_u64(9));
        let (out2, st2) = corrupt_stream(frames(500), cfg, StdRng::seed_from_u64(9));
        let (out3, _) = corrupt_stream(frames(500), cfg, StdRng::seed_from_u64(10));
        assert_eq!(out1, out2);
        assert_eq!(st1, st2);
        assert_ne!(out1, out3, "different seeds must corrupt differently");
    }

    #[test]
    fn stats_account_for_every_frame() {
        let cfg = FaultConfig::uniform(0.5);
        let (out, st) = corrupt_stream(frames(2_000), cfg, StdRng::seed_from_u64(3));
        assert_eq!(st.frames_in, 2_000);
        assert_eq!(st.frames_out as usize, out.len());
        // drop removes one, duplicate adds one, the rest preserve count.
        assert_eq!(
            st.frames_out as i64,
            st.frames_in as i64 - st.dropped as i64 + st.duplicated as i64
        );
        // With a 10% per-kind rate over 2k frames, every kind fires.
        assert!(st.dropped > 0 && st.truncated > 0 && st.bit_flipped > 0);
        assert!(st.duplicated > 0 && st.reordered > 0);
    }

    #[test]
    fn fault_rates_land_near_configured_probability() {
        let cfg = FaultConfig::uniform(0.2);
        let (_, st) = corrupt_stream(frames(20_000), cfg, StdRng::seed_from_u64(5));
        let rate = st.faulted() as f64 / st.frames_in as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed fault rate {rate}");
    }

    #[test]
    fn truncate_only_shortens_and_preserves_orig_len() {
        let cfg = FaultConfig { truncate: 1.0, ..FaultConfig::clean() };
        let (out, st) = corrupt_stream(frames(50), cfg, StdRng::seed_from_u64(7));
        assert_eq!(st.truncated, 50);
        for f in &out {
            assert!(f.data.len() < 64);
            assert_eq!(f.orig_len, 64);
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let cfg = FaultConfig { bit_flip: 1.0, ..FaultConfig::clean() };
        let input = frames(50);
        let (out, st) = corrupt_stream(input.clone(), cfg, StdRng::seed_from_u64(8));
        assert_eq!(st.bit_flipped, 50);
        for (a, b) in input.iter().zip(&out) {
            let diff: u32 = a
                .data
                .iter()
                .zip(&b.data)
                .map(|(x, y)| (x ^ y).count_ones())
                .sum();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn reorder_holdback_preserves_frames_and_flush_drains() {
        // 50% so holdbacks interleave with pass-throughs and actually swap
        // (an all-reorder stream degenerates to a uniform one-frame delay).
        let cfg = FaultConfig { reorder: 0.5, ..FaultConfig::clean() };
        let input = frames(64);
        let (out, st) = corrupt_stream(input.clone(), cfg, StdRng::seed_from_u64(11));
        assert!(st.reordered > 0);
        assert_eq!(out.len(), 64, "reorder must never lose frames");
        let mut sorted = out.clone();
        sorted.sort_by_key(|f| f.ts_nanos);
        assert_eq!(sorted, input);
        assert_ne!(out, input, "reordered stream must leave capture order");
    }

    #[test]
    fn empty_frames_survive_truncate_and_flip() {
        let cfg = FaultConfig { truncate: 0.5, bit_flip: 0.5, ..FaultConfig::clean() };
        let empty = vec![
            RawFrame { ts_nanos: 0, orig_len: 0, data: Vec::new() };
            20
        ];
        let (out, st) = corrupt_stream(empty.clone(), cfg, StdRng::seed_from_u64(13));
        assert_eq!(out, empty, "zero-length frames pass through unchanged");
        assert_eq!(st.truncated + st.bit_flipped, 0);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultConfig { drop: -0.1, ..FaultConfig::clean() }.validate().is_err());
        assert!(FaultConfig { drop: 0.6, truncate: 0.6, ..FaultConfig::clean() }
            .validate()
            .is_err());
        assert!(FaultConfig::uniform(1.0).validate().is_ok());
        assert!(FaultConfig { drop: f64::NAN, ..FaultConfig::clean() }.validate().is_err());
    }

    #[test]
    fn stats_merge_sums_counters() {
        let cfg = FaultConfig::uniform(0.4);
        let (_, a) = corrupt_stream(frames(300), cfg, StdRng::seed_from_u64(1));
        let (_, b) = corrupt_stream(frames(200), cfg, StdRng::seed_from_u64(2));
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.frames_in, 500);
        assert_eq!(m.faulted(), a.faulted() + b.faulted());
    }
}
