//! A small offline bench harness: warmup, sampled iterations, robust
//! summary statistics, JSON baseline emit.
//!
//! Criterion-shaped where it matters — call [`Harness::bench`] with a
//! closure, get median/p95 nanoseconds per iteration — without the
//! registry dependency. Results accumulate in the harness and can be
//! printed as a table or serialized with [`Harness::to_json`] so future
//! runs have a baseline to compare against.

use crate::obs::clock;
use std::time::Duration;

/// Summary statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Total measured iterations across all samples.
    pub iters: u64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration across samples.
    pub p95_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
}

impl BenchResult {
    /// Human-readable time per iteration.
    pub fn pretty_median(&self) -> String {
        pretty_ns(self.median_ns)
    }
}

fn pretty_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Percentile of an unsorted sample set (linear interpolation).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (rank - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Bench runner + result accumulator for one named group.
pub struct Harness {
    /// Group name (becomes the JSON `group` field).
    pub group: String,
    /// Time spent warming up each benchmark before measuring.
    pub warmup: Duration,
    /// Number of timed samples per benchmark.
    pub samples: usize,
    /// Target wall-clock per sample (iterations are scaled to reach it).
    pub sample_time: Duration,
    /// Completed results, in registration order.
    pub results: Vec<BenchResult>,
    /// Free-form scalar metrics recorded alongside the benches
    /// (e.g. speedups, thread counts).
    pub notes: Vec<(String, f64)>,
}

impl Harness {
    /// A harness with defaults suited to sub-second benchmarks.
    pub fn new(group: &str) -> Harness {
        Harness {
            group: group.to_string(),
            warmup: Duration::from_millis(60),
            samples: 15,
            sample_time: Duration::from_millis(25),
            results: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A harness tuned for expensive (multi-millisecond) benchmarks:
    /// fewer samples, one iteration per sample.
    pub fn coarse(group: &str) -> Harness {
        Harness {
            group: group.to_string(),
            warmup: Duration::ZERO,
            samples: 5,
            sample_time: Duration::ZERO,
            results: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Measure `f`, record and return its summary.
    ///
    /// The closure's return value is consumed with [`std::hint::black_box`]
    /// so the optimizer cannot elide the work.
    pub fn bench<F, R>(&mut self, name: &str, mut f: F) -> &BenchResult
    where
        F: FnMut() -> R,
    {
        // Warmup, also used to size the per-sample iteration count.
        let mut warm_iters = 0u64;
        let warm_start = clock::now();
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1 << 20 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = if self.sample_time.is_zero() {
            1
        } else {
            ((self.sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24)
        };

        let mut samples_ns = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = clock::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let ns = start.elapsed_ns() as f64 / iters_per_sample as f64;
            samples_ns.push(ns);
            total_iters += iters_per_sample;
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_string(),
            iters: total_iters,
            median_ns: percentile(&samples_ns, 50.0),
            p95_ns: percentile(&samples_ns, 95.0),
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            min_ns: samples_ns.first().copied().unwrap_or(0.0),
        };
        self.results.push(result);
        self.results.last().unwrap()
    }

    /// Record a scalar metric (shows up in the JSON under `notes`).
    pub fn note(&mut self, name: &str, value: f64) {
        self.notes.push((name.to_string(), value));
    }

    /// The aligned summary table as a string, so callers choose the
    /// stream (the repro harness sends it to stderr to keep stdout
    /// machine-readable).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== bench group: {} ==\n", self.group));
        let width = self.results.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
        out.push_str(&format!(
            "{:width$}  {:>12} {:>12} {:>12}\n",
            "name", "median", "p95", "mean"
        ));
        for r in &self.results {
            out.push_str(&format!(
                "{:width$}  {:>12} {:>12} {:>12}\n",
                r.name,
                pretty_ns(r.median_ns),
                pretty_ns(r.p95_ns),
                pretty_ns(r.mean_ns),
            ));
        }
        for (name, value) in &self.notes {
            out.push_str(&format!("{name} = {value:.3}\n"));
        }
        out
    }

    /// Print the summary table to stdout (standalone bench targets,
    /// where stdout *is* the report).
    pub fn print_table(&self) {
        // lint: allow(stdout-discipline): bench targets report on stdout by contract
        print!("{}", self.render_table());
    }

    /// Serialize the group to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"group\": {},\n", json_string(&self.group)));
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"iters\": {}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{}\n",
                json_string(&r.name),
                r.iters,
                r.median_ns,
                r.p95_ns,
                r.mean_ns,
                r.min_ns,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"notes\": {");
        for (i, (name, value)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(name), json_number(*value)));
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Heap-allocation accounting for bench runs.
///
/// [`CountingAlloc`] wraps the system allocator and keeps global counters:
/// allocation events, bytes requested, live bytes, and a high-water mark.
/// A binary opts in with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: xkit::bench::alloc::CountingAlloc = xkit::bench::alloc::CountingAlloc;
/// ```
///
/// after which [`measure`] (or [`snapshot`] deltas) report how many heap
/// allocations a stage performed — the regression signal the time columns
/// can hide. Without the opt-in every counter just stays at zero, so the
/// API is safe to call unconditionally.
pub mod alloc {
    // `GlobalAlloc` is an unsafe trait: implementing it is the single
    // sanctioned use of `unsafe` in this crate (see lib.rs). The impl adds
    // no pointer arithmetic of its own — it only updates atomics and
    // forwards to `System`.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(size, Relaxed);
        let live = LIVE.fetch_add(size, Relaxed) + size;
        PEAK.fetch_max(live, Relaxed);
    }

    fn on_dealloc(size: u64) {
        LIVE.fetch_sub(size, Relaxed);
    }

    /// A [`System`]-backed allocator that counts every allocation.
    pub struct CountingAlloc;

    // SAFETY: every method forwards to `System` with the caller's exact
    // layout and pointer, so `System`'s own contract is what holds; the
    // counter updates are lock- and alloc-free atomics.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // SAFETY: `layout` is forwarded unchanged to `System.alloc`.
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            // SAFETY: `layout` is forwarded unchanged to `System`.
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr`/`layout` come from a matching `alloc` on
            // `System` (every alloc path above forwards to it).
            unsafe { System.dealloc(ptr, layout) };
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged
            // to `System.realloc`, which owns the allocation.
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                // Count a realloc as one allocation event; live bytes move
                // by the size delta so the peak tracks true working set.
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    /// Point-in-time view of the global counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct AllocSnapshot {
        /// Allocation events since process start.
        pub allocs: u64,
        /// Bytes requested since process start.
        pub bytes: u64,
        /// Bytes currently live.
        pub live: u64,
        /// High-water mark of live bytes (since start or last
        /// [`reset_peak`]).
        pub peak: u64,
    }

    /// Read the counters.
    pub fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: ALLOCS.load(Relaxed),
            bytes: BYTES.load(Relaxed),
            live: LIVE.load(Relaxed),
            peak: PEAK.load(Relaxed),
        }
    }

    /// Reset the peak-live mark to the current live size, so the next
    /// [`measure`] reports the peak *within* its stage.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Relaxed), Relaxed);
    }

    /// What one measured stage allocated.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StageAllocs {
        /// Allocation events during the stage.
        pub allocs: u64,
        /// Bytes requested during the stage.
        pub bytes: u64,
        /// Peak live bytes observed during the stage.
        pub peak_live: u64,
    }

    /// Run `f` and report the allocations it performed.
    ///
    /// Counters are global, so concurrent allocating threads will be
    /// attributed to the stage; bench stages run one at a time, which is
    /// the intended usage.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, StageAllocs) {
        reset_peak();
        let before = snapshot();
        let out = f();
        let after = snapshot();
        (
            out,
            StageAllocs {
                allocs: after.allocs - before.allocs,
                bytes: after.bytes - before.bytes,
                peak_live: after.peak,
            },
        )
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as valid JSON (no NaN/Inf literals).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let mut h = Harness::new("unit");
        h.warmup = Duration::from_millis(1);
        h.samples = 5;
        h.sample_time = Duration::from_micros(200);
        let r = h.bench("sum", || (0..1000u64).sum::<u64>());
        assert!(r.median_ns > 0.0);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.iters >= 5);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness::coarse("g");
        h.bench("noop", || 1u8);
        h.note("speedup_x", 2.5);
        let j = h.to_json();
        assert!(j.contains("\"group\": \"g\""));
        assert!(j.contains("\"name\": \"noop\""));
        assert!(j.contains("\"speedup_x\": 2.500"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.500");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
    }
}
