//! Seeded pseudo-random numbers: SplitMix64 seeding, Xoshiro256++ streams.
//!
//! The trait surface deliberately mirrors the subset of `rand` the
//! workspace used — `Rng` + `RngExt` bounds, `StdRng::seed_from_u64`,
//! `random::<f64>()`, `random_range(..)`, `random_bool(p)` — so call
//! sites only swap imports. On top of that, [`StdRng::split`] derives
//! statistically independent child streams from a parent state and a
//! label, which is what makes sharded simulation bit-reproducible
//! regardless of how many worker threads execute the shards.

/// One step of the SplitMix64 sequence (also the seed expander).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core random source: a stream of uniform `u64`s.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructor, kept as its own trait to match the old import
/// shape (`use xkit::rng::{SeedableRng, StdRng}`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u16 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types [`RngExt::random_range`] can draw uniformly.
pub trait Uniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on an empty range.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Unbiased uniform draw in `[0, n)` via Lemire's widening-multiply
/// rejection method.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full 64-bit domain: every output is valid.
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(uniform_below(rng, span as u64) as $t)
                } else {
                    assert!(lo < hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo < hi, "empty range");
                let u: $t = Sample::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges that can be sampled uniformly (`lo..hi`, `lo..=hi`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: Uniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: Uniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience draws, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T` (`f64` in `[0, 1)`, integers over
    /// their whole domain).
    #[inline]
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `lo..hi` or `lo..=hi`.
    #[inline]
    fn random_range<T: Uniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = Sample::sample(self);
        u < p
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    #[inline]
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[uniform_below(self, slice.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle.
    #[inline]
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// The workspace's standard generator: Xoshiro256++ seeded via SplitMix64.
///
/// Fast (one rotate-add-xor round per draw), 256-bit state, passes BigCrush,
/// and — unlike `rand`'s `StdRng` — guarantees the stream is stable across
/// releases, which the reproduction tests rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state_seed(mut acc: u64) -> StdRng {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut acc);
        }
        if s == [0; 4] {
            // Xoshiro's one forbidden state; unreachable from SplitMix64
            // expansion in practice, but cheap to rule out entirely.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    /// Derive a statistically independent child stream from this
    /// generator's current state and a caller-chosen `label`, without
    /// advancing the parent.
    ///
    /// Shard `i` of a parallel run takes `master.split(i as u64)`: the
    /// child streams depend only on (parent state, label), never on how
    /// many threads execute the shards or in what order they finish, so a
    /// fixed seed yields bit-identical output at any `--threads` value.
    pub fn split(&self, label: u64) -> StdRng {
        let mut acc = self.s[0]
            ^ self.s[1].rotate_left(16)
            ^ self.s[2].rotate_left(32)
            ^ self.s[3].rotate_left(48);
        let mut label_state = label;
        acc ^= splitmix64(&mut label_state);
        acc = acc.wrapping_add(label.wrapping_mul(0xA24B_AED4_963E_E407));
        StdRng::from_state_seed(acc)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng::from_state_seed(seed)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn split_is_stable_and_label_sensitive() {
        let parent = StdRng::seed_from_u64(7);
        let mut c1 = parent.split(0);
        let mut c1b = parent.split(0);
        let mut c2 = parent.split(1);
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c1b.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_eq!(a, b, "same label must reproduce the same stream");
        assert_ne!(a, c, "different labels must diverge");
        // Non-mutating: the parent still produces its own stream.
        let mut p1 = parent.clone();
        let mut p2 = parent.clone();
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn split_children_do_not_collide_with_parent() {
        let parent = StdRng::seed_from_u64(9);
        let mut p = parent.clone();
        let mut child = parent.split(3);
        let pa: Vec<u64> = (0..64).map(|_| p.next_u64()).collect();
        let ch: Vec<u64> = (0..64).map(|_| child.next_u64()).collect();
        assert_ne!(pa, ch);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(3..13usize);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1k draws");
        for _ in 0..1_000 {
            let v = rng.random_range(5..=7u32);
            assert!((5..=7).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn uniform_below_is_unbiased_over_small_moduli() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[uniform_below(&mut rng, 7) as usize] += 1;
        }
        for c in counts {
            let dev = (c as f64 - n as f64 / 7.0).abs() / (n as f64 / 7.0);
            assert!(dev < 0.05, "bucket off by {dev:.3}");
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle_are_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(rng.choose::<u8>(&[]).is_none());
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements never shuffle to identity");
    }
}
