//! Mergeable metric snapshots: counters, gauges, log-scale histograms.
//!
//! [`Metrics`] is the single transport every pipeline stage speaks: a
//! name-ordered map of [`Metric`] values that merges deterministically.
//! Merging is exact — counters and histogram buckets are `u64` sums,
//! gauges take the maximum, histogram `min`/`max` take the extrema — so
//! folding per-shard snapshots in shard order yields byte-identical
//! results for any worker count, the same discipline the simulator uses
//! for its logs. Histograms deliberately carry **no floating-point running
//! sum**: float addition is not associative, and an approximate sum would
//! break the merge-order-independence the whole layer is built on. (The
//! Prometheus `_sum` line is estimated from bucket midpoints at export
//! time instead.)

use std::collections::BTreeMap;

/// Shape of a fixed-bucket log-scale histogram: `decades * per_decade`
/// buckets spanning `[lo, lo * 10^decades)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSpec {
    /// Lower edge of the first bucket (must be positive and finite).
    pub lo: f64,
    /// Number of powers of ten covered.
    pub decades: u32,
    /// Buckets per decade.
    pub per_decade: u32,
}

impl HistSpec {
    /// A log-scale spec, clamped to sane shape (at least one decade and
    /// one bucket per decade, at most 4096 buckets, positive finite `lo`).
    pub fn log(lo: f64, decades: u32, per_decade: u32) -> HistSpec {
        let lo = if lo.is_finite() && lo > 0.0 { lo } else { 1e-3 };
        let decades = decades.clamp(1, 64);
        let per_decade = per_decade.clamp(1, 64);
        HistSpec { lo, decades, per_decade }
    }

    /// Default spec for durations in milliseconds: 1 µs .. ~16.7 min,
    /// four buckets per decade.
    pub fn time_ms() -> HistSpec {
        HistSpec::log(1e-3, 9, 4)
    }

    /// Default spec for sizes/rates: 1 .. 10^12, two buckets per decade.
    pub fn magnitude() -> HistSpec {
        HistSpec::log(1.0, 12, 2)
    }

    /// Number of in-range buckets.
    pub fn buckets(&self) -> usize {
        (self.decades * self.per_decade) as usize
    }

    /// The `buckets() + 1` bucket edges, ascending. Decade edges are the
    /// exact products `lo * 10^k` (integer `powi`), so bucket boundaries
    /// are reproducible and testable.
    pub fn bounds(&self) -> Vec<f64> {
        let pd = self.per_decade;
        (0..=self.buckets() as u32)
            .map(|i| {
                let (dec, rem) = (i / pd, i % pd);
                self.lo * 10f64.powi(dec as i32) * 10f64.powf(rem as f64 / pd as f64)
            })
            .collect()
    }
}

/// Where a value lands in a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Bucket(usize),
    Underflow,
    Overflow,
    Nonfinite,
}

/// A fixed-bucket log-scale histogram with exact (`u64`) merge.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    spec: HistSpec,
    bounds: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nonfinite: u64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram with the given spec.
    pub fn new(spec: HistSpec) -> Histogram {
        let bounds = spec.bounds();
        let buckets = spec.buckets();
        Histogram {
            spec,
            bounds,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            nonfinite: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn slot(&self, v: f64) -> Slot {
        if !v.is_finite() {
            return Slot::Nonfinite;
        }
        if v < self.bounds[0] {
            return Slot::Underflow;
        }
        if v >= self.bounds[self.bounds.len() - 1] {
            return Slot::Overflow;
        }
        // First edge strictly greater than v; v lives in the bucket below.
        let idx = self.bounds.partition_point(|b| *b <= v);
        Slot::Bucket(idx - 1)
    }

    /// Record one value. Finite values update `count`/`min`/`max` and one
    /// of the bucket / underflow / overflow counters; non-finite values
    /// only bump the `nonfinite` counter.
    pub fn observe(&mut self, v: f64) {
        self.observe_n(v, 1)
    }

    /// Record the same value `n` times in O(1).
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        match self.slot(v) {
            Slot::Nonfinite => {
                self.nonfinite += n;
                return;
            }
            Slot::Underflow => self.underflow += n,
            Slot::Overflow => self.overflow += n,
            Slot::Bucket(i) => self.counts[i] += n,
        }
        self.count += n;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold another histogram into this one.
    ///
    /// Same-spec merges are exact `u64` sums (associative and commutative,
    /// so merge order never changes the result). A cross-spec merge
    /// re-records the other histogram's bucket geometric midpoints, which
    /// preserves `count` and `min`/`max` exactly and bucket placement
    /// approximately.
    pub fn merge(&mut self, other: &Histogram) {
        if self.spec == other.spec {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += *b;
            }
            self.underflow += other.underflow;
            self.overflow += other.overflow;
            self.nonfinite += other.nonfinite;
            self.count += other.count;
        } else {
            // Re-recording midpoints must not perturb the exact extrema:
            // snapshot them, re-record, then restore.
            let (min, max) = (self.min, self.max);
            for (i, &n) in other.counts.iter().enumerate() {
                let mid = (other.bounds[i] * other.bounds[i + 1]).sqrt();
                self.observe_n(mid, n);
            }
            self.observe_n(other.bounds[0] / 2.0, other.underflow);
            self.observe_n(other.bounds[other.bounds.len() - 1], other.overflow);
            self.nonfinite += other.nonfinite;
            self.min = min;
            self.max = max;
        }
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The spec this histogram was built from.
    pub fn spec(&self) -> HistSpec {
        self.spec
    }

    /// Bucket edges (`buckets() + 1` ascending values).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, aligned with [`bounds`](Histogram::bounds).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Finite values recorded (includes underflow and overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values below the first bucket edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values at or above the last bucket edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN/infinite values offered (never counted in `count`).
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Smallest finite value recorded, `None` when empty. Exact under
    /// merge.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest finite value recorded, `None` when empty. Exact under
    /// merge.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Replace the tracked extrema with exact values read elsewhere
    /// (registry snapshots transfer their atomic min/max through this).
    /// No-op on an empty histogram.
    pub(crate) fn with_exact_extrema(mut self, min: f64, max: f64) -> Histogram {
        if self.count > 0 {
            self.min = min;
            self.max = max;
        }
        self
    }

    /// Estimated quantile (`q` in `[0, 1]`) from bucket geometric
    /// midpoints; `None` when empty. Underflow resolves to `min`,
    /// overflow to `max`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = self.underflow;
        if rank < seen {
            return Some(self.min);
        }
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if rank < seen {
                let mid = (self.bounds[i] * self.bounds[i + 1]).sqrt();
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Conservative quantile estimate (`q` in `[0, 1]`): the **upper
    /// edge** of the bucket holding rank `round(q * (count - 1))`;
    /// `None` when empty. Underflow ranks resolve to the first bucket
    /// edge (every underflow value is below it), overflow ranks to
    /// `max(bounds[last], max)` — an upper bound like every other
    /// branch, never a bare observed value, so the estimator is
    /// monotone in `q` even when `max` was merged or rebuilt from
    /// parts and sits below the last edge. The estimate never
    /// understates the true quantile by construction — the pinned
    /// contract for `p50<=`/`p95<=`/`p99<=` table columns and the
    /// Prometheus `_q` lines.
    pub fn quantile_upper(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = self.underflow;
        if rank < seen {
            return Some(self.bounds[0]);
        }
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if rank < seen {
                return Some(self.bounds[i + 1]);
            }
        }
        Some(self.bounds[self.bounds.len() - 1].max(self.max))
    }

    /// Rebuild a histogram from exported parts (the inverse of the
    /// [`Metrics::to_json`] `hist` object). `count` is recomputed as
    /// `underflow + overflow + Σ counts`; `min`/`max` are required
    /// whenever that count is positive.
    pub fn from_parts(
        spec: HistSpec,
        counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
        nonfinite: u64,
        min: Option<f64>,
        max: Option<f64>,
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new(spec);
        if counts.len() != h.counts.len() {
            return Err(format!(
                "histogram has {} buckets, spec wants {}",
                counts.len(),
                h.counts.len()
            ));
        }
        h.count = counts
            .iter()
            .fold(underflow.saturating_add(overflow), |acc, n| acc.saturating_add(*n));
        h.counts = counts;
        h.underflow = underflow;
        h.overflow = overflow;
        h.nonfinite = nonfinite;
        if h.count > 0 {
            h.min = min.ok_or("non-empty histogram missing min")?;
            h.max = max.ok_or("non-empty histogram missing max")?;
        }
        Ok(h)
    }

    /// Estimated sum of recorded values (bucket geometric midpoints;
    /// under/overflow contribute `min`/`max`). Export-time convenience
    /// only — never merged, so it cannot perturb determinism.
    pub fn sum_estimate(&self) -> f64 {
        let mut sum = self.underflow as f64 * if self.underflow > 0 { self.min } else { 0.0 };
        sum += self.overflow as f64 * if self.overflow > 0 { self.max } else { 0.0 };
        for (i, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                sum += n as f64 * (self.bounds[i] * self.bounds[i + 1]).sqrt();
            }
        }
        sum
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count; merges by summation.
    Counter(u64),
    /// Level/peak reading; merges by maximum (the only float gauge merge
    /// that is exact, associative, and commutative).
    Gauge(f64),
    /// Distribution; merges bucket-wise (see [`Histogram::merge`]).
    Hist(Histogram),
}

/// A name-ordered, deterministic-merge metric snapshot.
///
/// This is both the per-shard recorder used on hot paths that don't need
/// atomics, and the snapshot type the atomic
/// [`Registry`](crate::obs::Registry) produces — one merge path for
/// everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    map: BTreeMap<String, Metric>,
}

impl Metrics {
    /// An empty snapshot.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `n` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        match self.map.get_mut(name) {
            Some(Metric::Counter(c)) => *c += n,
            Some(_) => self.conflict(),
            None => {
                self.map.insert(name.to_string(), Metric::Counter(n));
            }
        }
    }

    /// Increment the counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Raise the gauge `name` to at least `v` (creating it at `v`).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        if !v.is_finite() {
            return;
        }
        match self.map.get_mut(name) {
            Some(Metric::Gauge(g)) => {
                if v > *g {
                    *g = v;
                }
            }
            Some(_) => self.conflict(),
            None => {
                self.map.insert(name.to_string(), Metric::Gauge(v));
            }
        }
    }

    /// Record `v` into the histogram `name`, creating it with `spec` on
    /// first use.
    pub fn observe_with(&mut self, name: &str, spec: HistSpec, v: f64) {
        match self.map.get_mut(name) {
            Some(Metric::Hist(h)) => h.observe(v),
            Some(_) => self.conflict(),
            None => {
                let mut h = Histogram::new(spec);
                h.observe(v);
                self.map.insert(name.to_string(), Metric::Hist(h));
            }
        }
    }

    /// Record `v` into the histogram `name` with the default
    /// [`HistSpec::time_ms`] spec.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.observe_with(name, HistSpec::time_ms(), v);
    }

    /// Insert a pre-built metric under `name`, replacing any previous one.
    pub fn insert(&mut self, name: &str, metric: Metric) {
        self.map.insert(name.to_string(), metric);
    }

    /// A kind mismatch is a programming error, but the layer is panic-free
    /// by contract: record the conflict and keep the existing metric.
    fn conflict(&mut self) {
        let e = self
            .map
            .entry("obs.kind_conflicts".to_string())
            .or_insert(Metric::Counter(0));
        if let Metric::Counter(c) = e {
            *c += 1;
        }
    }

    /// The metric under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.map.get(name)
    }

    /// Counter value (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.map.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.map.get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Histogram under `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        match self.map.get(name) {
            Some(Metric::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix` (invariant
    /// checks: `sum_counters("zeek.reject.")`).
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                Metric::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Iterate metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fold another snapshot into this one (exact; order-independent for
    /// counters, gauges, and same-spec histograms).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, metric) in &other.map {
            match (self.map.get_mut(name), metric) {
                (None, m) => {
                    self.map.insert(name.clone(), m.clone());
                }
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += *b,
                (Some(Metric::Gauge(a)), Metric::Gauge(b)) => {
                    if *b > *a {
                        *a = *b;
                    }
                }
                (Some(Metric::Hist(a)), Metric::Hist(b)) => a.merge(b),
                (Some(_), _) => self.conflict(),
            }
        }
    }
}

/// Render a float as a JSON token (`null` for non-finite; shortest
/// round-trip decimal otherwise, so re-parsing is lossless).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Metrics {
    /// Canonical JSON object, one line per metric, keys in name order.
    /// Two snapshots with equal contents render byte-identically, which
    /// is what the `--threads N` determinism check compares.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&crate::bench::json_string(name));
            out.push_str(": ");
            match metric {
                Metric::Counter(c) => out.push_str(&c.to_string()),
                Metric::Gauge(g) => {
                    out.push_str("{\"gauge\": ");
                    out.push_str(&json_f64(*g));
                    out.push('}');
                }
                Metric::Hist(h) => {
                    out.push_str(&format!(
                        "{{\"hist\": {{\"lo\": {}, \"decades\": {}, \"per_decade\": {}, \
                         \"count\": {}, \"underflow\": {}, \"overflow\": {}, \
                         \"nonfinite\": {}, \"min\": {}, \"max\": {}, \"counts\": [",
                        json_f64(h.spec.lo),
                        h.spec.decades,
                        h.spec.per_decade,
                        h.count,
                        h.underflow,
                        h.overflow,
                        h.nonfinite,
                        h.min().map_or("null".into(), json_f64),
                        h.max().map_or("null".into(), json_f64),
                    ));
                    for (j, n) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&n.to_string());
                    }
                    out.push_str("]}}");
                }
            }
        }
        out.push_str("\n}");
        out
    }

    /// Human-readable aligned table.
    pub fn render_table(&self) -> String {
        let width = self.map.keys().map(|k| k.len()).max().unwrap_or(6).max(6);
        let mut out = String::new();
        for (name, metric) in &self.map {
            let value = match metric {
                Metric::Counter(c) => c.to_string(),
                Metric::Gauge(g) => format!("{g} (gauge)"),
                Metric::Hist(h) => match (h.min(), h.max()) {
                    (Some(min), Some(max)) => {
                        let (p50, p95, p99) = (
                            h.quantile_upper(0.5).unwrap_or(max),
                            h.quantile_upper(0.95).unwrap_or(max),
                            h.quantile_upper(0.99).unwrap_or(max),
                        );
                        format!(
                            "n={} min={min:.3} p50<={p50:.3} p95<={p95:.3} p99<={p99:.3} max={max:.3}",
                            h.count()
                        )
                    }
                    _ => format!("n=0 (+{} nonfinite)", h.nonfinite()),
                },
            };
            out.push_str(&format!("{name:width$}  {value}\n"));
        }
        out
    }

    /// Prometheus text exposition format. Metric names are prefixed with
    /// `namespace_` and sanitized (every non `[a-zA-Z0-9_:]` byte becomes
    /// `_`); histograms emit cumulative `_bucket{le=...}` lines plus the
    /// conventional `_sum` (midpoint estimate) and `_count`.
    pub fn to_prometheus(&self, namespace: &str) -> String {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
                .collect()
        };
        let mut out = String::new();
        for (name, metric) in &self.map {
            let full = format!("{}_{}", sanitize(namespace), sanitize(name));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {full} counter\n{full} {c}\n"));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {full} gauge\n{full} {g}\n"));
                }
                Metric::Hist(h) => {
                    out.push_str(&format!("# TYPE {full} histogram\n"));
                    let mut cum = h.underflow;
                    for (i, n) in h.counts.iter().enumerate() {
                        cum += n;
                        out.push_str(&format!(
                            "{full}_bucket{{le=\"{}\"}} {cum}\n",
                            h.bounds[i + 1]
                        ));
                    }
                    cum += h.overflow;
                    out.push_str(&format!("{full}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{full}_sum {}\n", h.sum_estimate()));
                    out.push_str(&format!("{full}_count {}\n", h.count));
                    // Summary-style quantile estimates (bucket upper
                    // bounds), emitted as a sibling gauge family so the
                    // histogram TYPE above stays well-formed.
                    if h.count > 0 {
                        out.push_str(&format!("# TYPE {full}_q gauge\n"));
                        for q in [0.5, 0.95, 0.99] {
                            if let Some(v) = h.quantile_upper(q) {
                                out.push_str(&format!("{full}_q{{quantile=\"{q}\"}} {v}\n"));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Rebuild a snapshot from parsed [`to_json`](Metrics::to_json)
    /// output. Lossless for counters below 2^53 (JSON numbers are f64)
    /// and for everything else exactly — `to_json` writes shortest
    /// round-trip floats — so
    /// `from_json_value(&parse(&m.to_json())?)? == m`. This is how
    /// `repro obs-check` verifies a scraped `/snapshot` against the
    /// `/metrics` exposition.
    pub fn from_json_value(v: &crate::obs::json::Value) -> Result<Metrics, String> {
        use crate::obs::json::Value;
        let as_f64 = |v: &Value| match v {
            Value::Num(n) => Some(*n),
            // `to_json` writes non-finite floats as null.
            Value::Null => Some(f64::NAN),
            _ => None,
        };
        let as_u64 = |name: &str, v: Option<&Value>, what: &str| -> Result<u64, String> {
            let n = v
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric {name}: missing {what}"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("metric {name}: {what} is not a u64 ({n})"));
            }
            Ok(n as u64)
        };
        let members = v.as_obj().ok_or("metrics document must be a JSON object")?;
        let mut out = Metrics::new();
        for (name, val) in members {
            let metric = match val {
                Value::Num(_) => Metric::Counter(as_u64(name, Some(val), "counter")?),
                Value::Obj(_) => {
                    if let Some(g) = val.get("gauge") {
                        let g = as_f64(g)
                            .ok_or_else(|| format!("metric {name}: gauge is not numeric"))?;
                        Metric::Gauge(g)
                    } else if let Some(h) = val.get("hist") {
                        let spec = HistSpec::log(
                            h.get("lo").and_then(Value::as_f64).unwrap_or(f64::NAN),
                            as_u64(name, h.get("decades"), "decades")? as u32,
                            as_u64(name, h.get("per_decade"), "per_decade")? as u32,
                        );
                        let counts = h
                            .get("counts")
                            .and_then(Value::as_arr)
                            .ok_or_else(|| format!("metric {name}: missing counts"))?
                            .iter()
                            .map(|c| as_u64(name, Some(c), "bucket count"))
                            .collect::<Result<Vec<u64>, String>>()?;
                        let hist = Histogram::from_parts(
                            spec,
                            counts,
                            as_u64(name, h.get("underflow"), "underflow")?,
                            as_u64(name, h.get("overflow"), "overflow")?,
                            as_u64(name, h.get("nonfinite"), "nonfinite")?,
                            h.get("min").and_then(Value::as_f64),
                            h.get("max").and_then(Value::as_f64),
                        )
                        .map_err(|e| format!("metric {name}: {e}"))?;
                        Metric::Hist(hist)
                    } else {
                        return Err(format!("metric {name}: unknown object shape"));
                    }
                }
                _ => return Err(format!("metric {name}: unsupported value kind")),
            };
            out.map.insert(name.clone(), metric);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_bounds_are_exact_at_decades() {
        let spec = HistSpec::log(1e-3, 3, 4);
        let b = spec.bounds();
        assert_eq!(b.len(), 13);
        assert_eq!(b[0], 1e-3);
        assert_eq!(b[4], 1e-3 * 10.0);
        assert_eq!(b[8], 1e-3 * 100.0);
        assert_eq!(b[12], 1e-3 * 1000.0);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "edges strictly ascending");
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        let mut h = Histogram::new(HistSpec::log(1.0, 2, 2));
        let bounds = h.bounds().to_vec();
        // A value exactly on edge i belongs to bucket i, not i-1.
        for (i, &edge) in bounds.iter().enumerate().take(bounds.len() - 1) {
            h.observe(edge);
            assert_eq!(h.bucket_counts()[i], 1, "edge {edge} lands in bucket {i}");
        }
        // The last edge overflows.
        h.observe(bounds[bounds.len() - 1]);
        assert_eq!(h.overflow(), 1);
        // Just below the first edge underflows.
        h.observe(bounds[0] * 0.999);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn log_scale_edge_values() {
        let mut h = Histogram::new(HistSpec::time_ms());
        h.observe(0.0); // below lo=1e-3
        h.observe(-5.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(1e-3); // exactly lo → first bucket
        h.observe(1e9); // way past the top
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.nonfinite(), 3);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.count(), 4, "nonfinite never enters count");
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(1e9));
    }

    fn filled(seed: u64, n: usize) -> Histogram {
        let mut h = Histogram::new(HistSpec::time_ms());
        let mut x = seed.wrapping_mul(2).wrapping_add(1);
        for _ in 0..n {
            // Cheap LCG spread across many decades.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.observe((x % 1_000_000) as f64 / 7.0 + 1e-4);
        }
        h
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let (a, b, c) = (filled(1, 500), filled(2, 700), filled(3, 300));
        // a+(b+c) == (a+b)+c
        let mut bc = b.clone();
        bc.merge(&c);
        let mut left = a.clone();
        left.merge(&bc);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut right = ab;
        right.merge(&c);
        assert_eq!(left, right, "associativity");
        // a+b == b+a
        let mut ab2 = a.clone();
        ab2.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab2, ba, "commutativity");
        assert_eq!(left.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn cross_spec_merge_preserves_count_and_extrema() {
        let mut a = Histogram::new(HistSpec::time_ms());
        a.observe(5.0);
        let mut b = Histogram::new(HistSpec::magnitude());
        b.observe(2.0);
        b.observe(1e14); // overflow in b
        b.observe(f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.nonfinite(), 1);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(1e14));
    }

    #[test]
    fn quantile_and_sum_are_sane() {
        let mut h = Histogram::new(HistSpec::time_ms());
        for _ in 0..100 {
            h.observe(10.0);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((5.0..=20.0).contains(&p50), "p50 {p50} near 10");
        let sum = h.sum_estimate();
        assert!((500.0..=2000.0).contains(&sum), "sum {sum} near 1000");
        assert_eq!(Histogram::new(HistSpec::time_ms()).quantile(0.5), None);
    }

    #[test]
    fn quantile_upper_pins_bucket_upper_bounds() {
        // 10.0 sits exactly on a decade edge of time_ms (1e-3 * 10^4,
        // edge index 16), so every sample lands in bucket 16 and the
        // upper-bound estimate is exactly edge 17 — no tolerance needed.
        let mut h = Histogram::new(HistSpec::time_ms());
        for _ in 0..100 {
            h.observe(10.0);
        }
        let bounds = h.bounds().to_vec();
        assert_eq!(h.quantile_upper(0.5), Some(bounds[17]));
        assert_eq!(h.quantile_upper(0.95), Some(bounds[17]));
        assert_eq!(h.quantile_upper(0.99), Some(bounds[17]));
        assert!(h.quantile_upper(0.5).unwrap() >= 10.0, "never understates");

        // Underflow ranks resolve to the first edge; overflow ranks to
        // max(bounds[last], max). For a naturally observed overflow the
        // observed max is >= the last edge, so this is still the max.
        let mut u = Histogram::new(HistSpec::time_ms());
        u.observe(1e-9);
        assert_eq!(u.quantile_upper(0.0), Some(u.bounds()[0]));
        let mut o = Histogram::new(HistSpec::time_ms());
        o.observe(5e9);
        assert!(5e9 >= *o.bounds().last().unwrap());
        assert_eq!(o.quantile_upper(1.0), Some(5e9));

        // Rank selection across buckets: 90 low + 10 high samples.
        let mut m = Histogram::new(HistSpec::time_ms());
        m.observe_n(1.0, 90); // edge 12 (1e-3 * 10^3) → bucket 12
        m.observe_n(100.0, 10); // edge 20 → bucket 20
        assert_eq!(m.quantile_upper(0.5), Some(m.bounds()[13]));
        assert_eq!(m.quantile_upper(0.95), Some(m.bounds()[21]));
        assert_eq!(Histogram::new(HistSpec::time_ms()).quantile_upper(0.5), None);
    }

    #[test]
    fn quantile_upper_is_monotone_even_with_a_stale_max() {
        // Regression: a histogram rebuilt from parts (or merged from a
        // shard that saw smaller values) can carry max < bounds[last]
        // while overflow > 0. The old overflow branch returned the raw
        // `max` — an *observed value*, not an upper bound — so p99
        // (overflow rank) could come out below p95 (bucket rank). The
        // overflow branch must return max(bounds[last], max).
        let spec = HistSpec::time_ms();
        let probe = Histogram::new(spec.clone());
        let n_buckets = probe.bucket_counts().len();
        let mut counts = vec![0u64; n_buckets];
        counts[n_buckets - 1] = 95; // p95 rank lands here → bounds[last]
        let h = Histogram::from_parts(spec, counts, 0, 5, 0, Some(1.0), Some(1.0))
            .expect("parts accepted");
        let last_edge = *h.bounds().last().unwrap();
        let p95 = h.quantile_upper(0.95).unwrap();
        let p99 = h.quantile_upper(0.99).unwrap();
        assert_eq!(p95, last_edge);
        assert_eq!(p99, last_edge, "overflow rank resolves to an upper bound");
        assert!(p99 >= p95, "quantile_upper must be monotone in q: p99 {p99} < p95 {p95}");
    }

    #[test]
    fn histogram_from_parts_round_trips() {
        let h = filled(9, 400);
        let rebuilt = Histogram::from_parts(
            h.spec(),
            h.bucket_counts().to_vec(),
            h.underflow(),
            h.overflow(),
            h.nonfinite(),
            h.min(),
            h.max(),
        )
        .expect("parts are consistent");
        assert_eq!(rebuilt, h);
        // Wrong bucket count is an error, not a panic.
        assert!(Histogram::from_parts(
            HistSpec::time_ms(),
            vec![0; 3],
            0,
            0,
            0,
            None,
            None
        )
        .is_err());
        // A non-empty histogram must carry extrema.
        assert!(
            Histogram::from_parts(HistSpec::time_ms(), vec![1; 36], 0, 0, 0, None, None).is_err()
        );
    }

    #[test]
    fn metrics_json_round_trips_through_from_json_value() {
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 12345);
        m.gauge_max("stream.live_flows", 77.25);
        m.insert("h", Metric::Hist(filled(4, 250)));
        m.observe("empty-ish", f64::NAN); // nonfinite-only histogram
        let v = crate::obs::json::parse(&m.to_json()).expect("valid JSON");
        let back = Metrics::from_json_value(&v).expect("reconstructs");
        assert_eq!(back, m);
        assert_eq!(back.to_json(), m.to_json());
        assert_eq!(back.to_prometheus("ns"), m.to_prometheus("ns"));
        // Junk shapes error instead of panicking.
        for bad in ["[1]", "{\"x\": true}", "{\"x\": {\"weird\": 1}}", "{\"x\": -3}"] {
            let v = crate::obs::json::parse(bad).unwrap();
            assert!(Metrics::from_json_value(&v).is_err(), "{bad} must not reconstruct");
        }
    }

    #[test]
    fn metrics_counters_gauges_and_conflicts() {
        let mut m = Metrics::new();
        m.inc("a.x");
        m.add("a.x", 4);
        m.gauge_max("g", 2.0);
        m.gauge_max("g", 1.0);
        m.gauge_max("g", 7.5);
        m.gauge_max("g", f64::NAN);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.gauge("g"), Some(7.5));
        // Kind conflict: recorded, never panics, existing metric kept.
        m.gauge_max("a.x", 1.0);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("obs.kind_conflicts"), 1);
    }

    #[test]
    fn metrics_merge_matches_single_stream() {
        let mut whole = Metrics::new();
        let mut parts: Vec<Metrics> = (0..4).map(|_| Metrics::new()).collect();
        for i in 0..1000u64 {
            let v = (i % 97) as f64 + 0.5;
            whole.add("n", 1);
            whole.observe("h", v);
            whole.gauge_max("g", v);
            let p = &mut parts[(i % 4) as usize];
            p.add("n", 1);
            p.observe("h", v);
            p.gauge_max("g", v);
        }
        let mut merged = Metrics::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    fn sum_counters_by_prefix() {
        let mut m = Metrics::new();
        m.add("zeek.reject.a", 2);
        m.add("zeek.reject.b", 3);
        m.add("zeek.other", 100);
        m.gauge_max("zeek.reject.gauge", 9.0);
        assert_eq!(m.sum_counters("zeek.reject."), 5);
    }

    #[test]
    fn exports_render() {
        let mut m = Metrics::new();
        m.add("pair.hit", 3);
        m.gauge_max("zeek.peak", 4.0);
        m.observe("pair.gap_ms", 12.0);
        let table = m.render_table();
        assert!(table.contains("pair.hit"));
        assert!(table.contains("n=1"));
        let prom = m.to_prometheus("dnsctx");
        assert!(prom.contains("# TYPE dnsctx_pair_hit counter"));
        assert!(prom.contains("dnsctx_pair_gap_ms_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("dnsctx_pair_gap_ms_count 1"));
        assert!(prom.contains("# TYPE dnsctx_zeek_peak gauge"));
    }
}
