//! The observability hub: one shared, scrape-ready view of a live run.
//!
//! An [`ObsHub`] is the meeting point between the pipeline (which
//! publishes) and the HTTP plane (which serves): the stream engine folds
//! its per-shard registries into the hub once per epoch, the driver
//! publishes the final merged snapshot and Chrome-trace spans when the
//! run completes, and every [`http`](crate::obs::http) endpoint reads
//! whatever is current. Publication replaces the whole snapshot
//! atomically (one mutex swap), so a scrape never sees a half-merged
//! state — mid-run it sees a valid prefix of the final metrics, after
//! the run it sees exactly the final document's metrics section.

use super::flight::FlightRecorder;
use super::metrics::Metrics;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Inner {
    metrics: Mutex<Metrics>,
    spans: Mutex<String>,
    flight: FlightRecorder,
}

/// Shared handle to the live metrics snapshot, span trace, and flight
/// recorder. Cloning shares all three.
#[derive(Debug, Clone)]
pub struct ObsHub {
    inner: Arc<Inner>,
}

impl ObsHub {
    /// A hub with an empty snapshot and a flight ring of `flight_capacity`
    /// events.
    pub fn new(flight_capacity: usize) -> ObsHub {
        ObsHub {
            inner: Arc::new(Inner {
                metrics: Mutex::new(Metrics::new()),
                // No spans yet: an empty Chrome trace-event array.
                spans: Mutex::new(String::from("[]")),
                flight: FlightRecorder::new(flight_capacity),
            }),
        }
    }

    /// Replace the published metrics snapshot.
    pub fn publish_metrics(&self, snapshot: Metrics) {
        match self.inner.metrics.lock() {
            Ok(mut guard) => *guard = snapshot,
            Err(poison) => *poison.into_inner() = snapshot,
        }
    }

    /// The current metrics snapshot (empty before the first publication).
    pub fn metrics(&self) -> Metrics {
        match self.inner.metrics.lock() {
            Ok(guard) => guard.clone(),
            Err(poison) => poison.into_inner().clone(),
        }
    }

    /// Replace the published span trace. `chrome_json` must already be
    /// Chrome trace-event JSON (see `SpanLog::to_chrome_trace`).
    pub fn publish_spans(&self, chrome_json: String) {
        match self.inner.spans.lock() {
            Ok(mut guard) => *guard = chrome_json,
            Err(poison) => *poison.into_inner() = chrome_json,
        }
    }

    /// The current span trace (`"[]"` before the first publication).
    pub fn spans_json(&self) -> String {
        match self.inner.spans.lock() {
            Ok(guard) => guard.clone(),
            Err(poison) => poison.into_inner().clone(),
        }
    }

    /// The hub's flight recorder (share it with whatever records events).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }
}

impl Default for ObsHub {
    fn default() -> ObsHub {
        ObsHub::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publication_replaces_wholesale() {
        let hub = ObsHub::default();
        assert!(hub.metrics().is_empty());
        assert_eq!(hub.spans_json(), "[]");

        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 10);
        hub.publish_metrics(m.clone());
        assert_eq!(hub.metrics().counter("zeek.frames_seen"), 10);

        let mut m2 = Metrics::new();
        m2.add("zeek.frames_seen", 25);
        hub.publish_metrics(m2);
        let snap = hub.metrics();
        assert_eq!(snap.counter("zeek.frames_seen"), 25);
        assert_eq!(snap.len(), 1, "replace, not merge");

        hub.publish_spans("[{\"ph\":\"X\"}]".into());
        assert_eq!(hub.spans_json(), "[{\"ph\":\"X\"}]");
    }

    #[test]
    fn clones_share_state() {
        let hub = ObsHub::new(4);
        let viewer = hub.clone();
        hub.flight().record("epoch.release", "epoch 0", 1.0);
        let mut m = Metrics::new();
        m.inc("x");
        hub.publish_metrics(m);
        assert_eq!(viewer.metrics().counter("x"), 1);
        assert_eq!(viewer.flight().len(), 1);
    }
}
