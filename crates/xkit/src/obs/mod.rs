//! Zero-dependency observability: metrics, spans, and the clock seam.
//!
//! The pipeline computes the paper's per-stage aggregates — pairing
//! coverage, class mix, blocking delay — and this module is how every
//! stage reports what it did. Four pieces:
//!
//! * [`clock`] — the workspace's only monotonic-clock access point.
//!   `scripts/verify.sh` denies `Instant::now()` outside `xkit`, so all
//!   timing flows through here.
//! * [`Metrics`] — a name-ordered snapshot of counters, max-merged
//!   gauges, and fixed-bucket log-scale [`Histogram`]s whose merge is
//!   exact (`u64` arithmetic, no float sums). Per-shard snapshots folded
//!   in shard order are byte-identical for any `--threads N`, the same
//!   discipline the simulator uses for its logs.
//! * [`Registry`] — thread-safe atomic handles ([`Counter`], [`Gauge`],
//!   [`HistogramHandle`]) that snapshot into the same [`Metrics`] type,
//!   so concurrent and per-shard recording share one merge/export path.
//! * [`SpanLog`] — driver-side stage timers rendered as an indented tree
//!   or exported as Chrome trace-event JSON
//!   ([`SpanLog::to_chrome_trace`]). Span wall times are
//!   non-deterministic by nature and live next to — never inside — the
//!   byte-compared metrics section.
//! * [`FlightRecorder`] — a bounded drop-oldest ring of recent
//!   structured events (epoch releases, evictions, stalls, rejects)
//!   for live post-mortems.
//! * [`ObsHub`] + [`http`] — the live plane: the pipeline publishes
//!   snapshots into a shared hub, and a zero-dependency HTTP/1.1 server
//!   exposes `/metrics`, `/snapshot`, `/spans`, `/events`, `/healthz`
//!   (DESIGN.md §13).
//! * [`HubRegistry`] — the serve daemon's tenant plane: one hub per
//!   tenant stream, folded in tenant-id order into a deterministic
//!   aggregate, with per-tenant routing (`/tenants`,
//!   `/tenants/<id>/snapshot|metrics`) in [`http`] (DESIGN.md §15).
//!
//! Exporters: [`Metrics::render_table`] (human), [`Metrics::to_json`]
//! (canonical, re-parseable via [`json`]), and
//! [`Metrics::to_prometheus`] (text exposition format).
//!
//! Naming conventions (see DESIGN.md §9): `stage.*` spans, `capture.*`
//! pcap I/O, `zeek.*` monitor + degradation, `sim.*`/`resolver.*`
//! simulator, `pair.*`/`class.*`/`threshold.*`/`perf.*`/`cover.*`
//! analysis, `fault.*` injector damage.

pub mod clock;
mod flight;
mod hub;
pub mod http;
pub mod json;
mod metrics;
mod registry;
mod span;
mod tenants;

pub use flight::{FlightEvent, FlightRecorder};
pub use hub::ObsHub;
pub use metrics::{HistSpec, Histogram, Metric, Metrics};
pub use registry::{Counter, Gauge, HistogramHandle, Registry};
pub use span::{SpanId, SpanLog, SpanRecord};
pub use tenants::{valid_tenant_id, HubRegistry};
