//! Multi-tenant hub registry for the serve daemon.
//!
//! Each tenant (one capture stream / vantage point) owns an [`ObsHub`]
//! that its engine publishes prefix-valid snapshots into. The registry
//! is the daemon's single source of truth for which tenants exist, what
//! lifecycle state they are in, and how their snapshots fold into the
//! global view:
//!
//! * **Deterministic aggregate.** [`HubRegistry::aggregate`] folds
//!   per-tenant snapshots in tenant-id order (the `BTreeMap` iteration
//!   order), so the global `/snapshot` and `/metrics` documents are
//!   byte-identical no matter how many workers raced the tenants to
//!   completion — the same shard-fold discipline the analysis pipeline
//!   uses for `--threads N` invariance (DESIGN.md §15).
//! * **Lifecycle as data.** States are plain strings
//!   (`queued`/`running`/`drained`/`failed`) set by the daemon;
//!   the registry only stores and reports them, it never schedules.
//! * **Removal frees state.** [`HubRegistry::remove`] drops the
//!   tenant's hub (and with it the last reference to its snapshots), so
//!   peak gauges from a removed tenant vanish from the aggregate.
//!
//! Tenant ids are fenced to `[A-Za-z0-9._-]` so they embed verbatim in
//! URL paths (`/tenants/<id>/snapshot`) and JSON without escaping.

use super::hub::ObsHub;
use super::metrics::Metrics;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct Tenant {
    hub: ObsHub,
    state: String,
}

/// A shared, id-ordered map of tenant observability hubs. Cheap to
/// clone (`Arc` inside); every clone views the same registry.
#[derive(Debug, Clone, Default)]
pub struct HubRegistry {
    inner: Arc<Mutex<BTreeMap<String, Tenant>>>,
}

/// `true` when `id` is non-empty and uses only URL/JSON-safe bytes.
pub fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl HubRegistry {
    /// An empty registry.
    pub fn new() -> HubRegistry {
        HubRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Tenant>> {
        // Same poisoning stance as ObsHub: a panicking publisher must
        // not take the exporter down with it.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Register `id` with its hub in state `queued`. Errors on a
    /// duplicate or malformed id.
    pub fn add(&self, id: &str, hub: ObsHub) -> Result<(), String> {
        if !valid_tenant_id(id) {
            return Err(format!(
                "invalid tenant id {id:?} (want [A-Za-z0-9._-]{{1,128}})"
            ));
        }
        let mut map = self.lock();
        if map.contains_key(id) {
            return Err(format!("duplicate tenant id {id:?}"));
        }
        map.insert(
            id.to_string(),
            Tenant {
                hub,
                state: "queued".to_string(),
            },
        );
        Ok(())
    }

    /// Drop `id` and its hub entirely; `false` if it was never
    /// registered. After removal the tenant no longer contributes to
    /// [`aggregate`](HubRegistry::aggregate) — peak gauges it held
    /// drop out of the global view.
    pub fn remove(&self, id: &str) -> bool {
        self.lock().remove(id).is_some()
    }

    /// The tenant's hub, if registered.
    pub fn hub(&self, id: &str) -> Option<ObsHub> {
        self.lock().get(id).map(|t| t.hub.clone())
    }

    /// Set the tenant's lifecycle state; `false` if unknown.
    pub fn set_state(&self, id: &str, state: &str) -> bool {
        match self.lock().get_mut(id) {
            Some(t) => {
                t.state = state.to_string();
                true
            }
            None => false,
        }
    }

    /// The tenant's lifecycle state, if registered.
    pub fn state(&self, id: &str) -> Option<String> {
        self.lock().get(id).map(|t| t.state.clone())
    }

    /// `(id, state)` pairs in tenant-id order.
    pub fn tenants(&self) -> Vec<(String, String)> {
        self.lock()
            .iter()
            .map(|(id, t)| (id.clone(), t.state.clone()))
            .collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Fold every tenant's current snapshot into one [`Metrics`], in
    /// tenant-id order. Merge is exact (`u64` adds, max-gauges), so the
    /// result is byte-identical for any worker count once the tenants
    /// have settled — and a valid prefix view while they are live.
    pub fn aggregate(&self) -> Metrics {
        let map = self.lock();
        let mut folded = Metrics::new();
        for tenant in map.values() {
            folded.merge(&tenant.hub.metrics());
        }
        folded
    }

    /// The `/tenants` document: `{"tenants": [{"id", "state"}, ...]}`
    /// in tenant-id order. Ids are fenced to a safe charset at
    /// [`add`](HubRegistry::add), so plain quoting is already valid
    /// JSON.
    pub fn to_json(&self) -> String {
        let map = self.lock();
        let mut out = String::from("{\n  \"tenants\": [");
        for (i, (id, tenant)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{id}\", \"state\": \"{}\"}}",
                tenant.state
            ));
        }
        if !map.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_and_states() {
        let reg = HubRegistry::new();
        assert!(reg.is_empty());
        reg.add("t1", ObsHub::new(1)).expect("t1");
        reg.add("t0", ObsHub::new(1)).expect("t0");
        assert_eq!(
            reg.add("t1", ObsHub::new(1))
                .unwrap_err()
                .contains("duplicate"),
            true
        );
        assert!(reg.add("no spaces", ObsHub::new(1)).is_err());
        assert!(reg.add("", ObsHub::new(1)).is_err());
        assert!(reg.add("a/b", ObsHub::new(1)).is_err());
        assert_eq!(reg.len(), 2);

        // Id-ordered listing regardless of insertion order.
        let ids: Vec<String> = reg.tenants().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec!["t0".to_string(), "t1".to_string()]);
        assert_eq!(reg.state("t0").as_deref(), Some("queued"));
        assert!(reg.set_state("t0", "running"));
        assert_eq!(reg.state("t0").as_deref(), Some("running"));
        assert!(!reg.set_state("missing", "running"));

        assert!(reg.remove("t0"));
        assert!(!reg.remove("t0"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn aggregate_folds_in_id_order_and_removal_drops_gauges() {
        let reg = HubRegistry::new();
        let big = ObsHub::new(1);
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 100);
        m.gauge_max("stream.peak_live_answers", 500.0);
        big.publish_metrics(m);
        let small = ObsHub::new(1);
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 7);
        m.gauge_max("stream.peak_live_answers", 3.0);
        small.publish_metrics(m);
        reg.add("big", big).expect("big");
        reg.add("small", small).expect("small");

        let agg = reg.aggregate();
        assert_eq!(agg.counter("zeek.frames_seen"), 107);
        assert_eq!(agg.gauge("stream.peak_live_answers"), Some(500.0));

        // Removing a tenant frees its contribution: the max-gauge
        // drops to the surviving tenant's peak.
        assert!(reg.remove("big"));
        let agg = reg.aggregate();
        assert_eq!(agg.counter("zeek.frames_seen"), 7);
        assert_eq!(agg.gauge("stream.peak_live_answers"), Some(3.0));
    }

    #[test]
    fn tenants_json_is_canonical() {
        let reg = HubRegistry::new();
        assert_eq!(reg.to_json(), "{\n  \"tenants\": []\n}");
        reg.add("b", ObsHub::new(1)).expect("b");
        reg.add("a", ObsHub::new(1)).expect("a");
        reg.set_state("b", "drained");
        let doc = reg.to_json();
        let v = crate::obs::json::parse(&doc).expect("valid JSON");
        let arr = v
            .get("tenants")
            .and_then(|t| t.as_arr())
            .expect("array")
            .to_vec();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("id").and_then(|x| x.as_str()), Some("a"));
        assert_eq!(arr[0].get("state").and_then(|x| x.as_str()), Some("queued"));
        assert_eq!(arr[1].get("id").and_then(|x| x.as_str()), Some("b"));
        assert_eq!(
            arr[1].get("state").and_then(|x| x.as_str()),
            Some("drained")
        );
    }
}
