//! Lightweight stage spans: a nesting-aware log of named timers.
//!
//! A [`SpanLog`] is a single-threaded driver-side structure: the harness
//! opens a span per pipeline stage (`stage.zeek`, `stage.pair`, …),
//! attaches a few headline counters as notes, and renders the result as
//! an indented tree with wall times. Span timings come from the
//! [`clock`](crate::obs::clock) seam and are inherently non-deterministic;
//! they are reported next to — never inside — the byte-compared metrics
//! snapshot.

use super::clock::{self, Mono};

/// Handle to an open span (index into the log's record list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One finished (or still-open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`stage.*` by convention).
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Open time, nanoseconds since the log's first span opened (the
    /// Chrome trace-event `ts` origin).
    pub start_ns: u64,
    /// Wall time from open to finish, nanoseconds (0 while open).
    pub wall_ns: u64,
    /// Headline values attached to the span (`key = value`).
    pub notes: Vec<(String, f64)>,
}

#[derive(Debug)]
struct Open {
    idx: usize,
    start: Mono,
}

/// An append-only span log with stack-based nesting.
#[derive(Debug, Default)]
pub struct SpanLog {
    records: Vec<SpanRecord>,
    stack: Vec<Open>,
    /// Trace origin, set when the first span opens; every `start_ns`
    /// is measured from here.
    origin: Option<Mono>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    /// Open a span nested under the innermost open span.
    pub fn start(&mut self, name: &str) -> SpanId {
        let now = clock::now();
        let origin = *self.origin.get_or_insert(now);
        let idx = self.records.len();
        self.records.push(SpanRecord {
            name: name.to_string(),
            depth: self.stack.len(),
            start_ns: u64::try_from(origin.delta(now).as_nanos()).unwrap_or(u64::MAX),
            wall_ns: 0,
            notes: Vec::new(),
        });
        self.stack.push(Open { idx, start: now });
        SpanId(idx)
    }

    /// Attach a headline value to a span (open or finished).
    pub fn note(&mut self, id: SpanId, key: &str, value: f64) {
        if let Some(r) = self.records.get_mut(id.0) {
            r.notes.push((key.to_string(), value));
        }
    }

    /// Close a span, recording its wall time. Closing out of order also
    /// closes every span nested deeper (a span cannot outlive its
    /// parent); closing an unknown id is a no-op.
    pub fn finish(&mut self, id: SpanId) {
        let Some(pos) = self.stack.iter().position(|o| o.idx == id.0) else {
            return;
        };
        while self.stack.len() > pos {
            if let Some(open) = self.stack.pop() {
                self.records[open.idx].wall_ns = open.start.elapsed_ns();
            }
        }
    }

    /// Run `f` inside a span named `name`; the span closes when `f`
    /// returns.
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut SpanLog) -> R) -> R {
        let id = self.start(name);
        let out = f(self);
        self.finish(id);
        out
    }

    /// All spans, in open order (preorder of the tree).
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Wall time of a span, nanoseconds.
    pub fn wall_ns(&self, id: SpanId) -> u64 {
        self.records.get(id.0).map_or(0, |r| r.wall_ns)
    }

    /// Render the indented span tree with wall times and notes.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&"  ".repeat(r.depth));
            out.push_str(&format!("{} · {}", r.name, fmt_ns(r.wall_ns)));
            for (k, v) in &r.notes {
                out.push_str(&format!(" · {k}={}", fmt_note(*v)));
            }
            out.push('\n');
        }
        out
    }

    /// JSON array of span objects (`name`, `depth`, `start_ns`,
    /// `wall_ns`, `notes`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\": ");
            out.push_str(&crate::bench::json_string(&r.name));
            out.push_str(&format!(
                ", \"depth\": {}, \"start_ns\": {}, \"wall_ns\": {}, \"notes\": {{",
                r.depth, r.start_ns, r.wall_ns
            ));
            for (j, (k, v)) in r.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&crate::bench::json_string(k));
                out.push_str(": ");
                out.push_str(&if v.is_finite() { format!("{v}") } else { "null".into() });
            }
            out.push_str("}}");
        }
        out.push_str("\n]");
        out
    }

    /// Chrome trace-event JSON: an array of complete (`"ph": "X"`)
    /// events with `ts`/`dur` in microseconds, loadable in Perfetto or
    /// `chrome://tracing`. Nesting is reconstructed by the viewer from
    /// the shared `tid` and the `ts`/`dur` containment the span stack
    /// guarantees; notes ride along as `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\": ");
            out.push_str(&crate::bench::json_string(&r.name));
            out.push_str(&format!(
                ", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": 1, \"args\": {{",
                r.start_ns as f64 / 1e3,
                r.wall_ns as f64 / 1e3
            ));
            for (j, (k, v)) in r.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&crate::bench::json_string(k));
                out.push_str(": ");
                out.push_str(&if v.is_finite() { format!("{v}") } else { "null".into() });
            }
            out.push_str("}}");
        }
        out.push_str(if self.records.is_empty() { "]" } else { "\n]" });
        out
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Notes print as integers when they are integral (counters mostly are).
fn fmt_note(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depths_follow_open_order() {
        let mut log = SpanLog::new();
        let outer = log.start("outer");
        let inner = log.start("inner");
        log.finish(inner);
        let sibling = log.start("sibling");
        log.finish(sibling);
        log.finish(outer);
        let depths: Vec<usize> = log.records().iter().map(|r| r.depth).collect();
        assert_eq!(depths, vec![0, 1, 1]);
        assert!(log.records().iter().all(|r| r.wall_ns > 0));
    }

    #[test]
    fn out_of_order_finish_closes_children() {
        let mut log = SpanLog::new();
        let outer = log.start("outer");
        let _inner = log.start("inner");
        log.finish(outer); // closes inner too
        assert!(log.records().iter().all(|r| r.wall_ns > 0));
        log.finish(outer); // double-finish is a no-op
    }

    #[test]
    fn scope_notes_and_tree_render() {
        let mut log = SpanLog::new();
        let id = log.scope("stage.zeek", |log| {
            log.scope("stage.zeek.read", |_| {});
            let id = log.start("stage.zeek.track");
            log.finish(id);
            id
        });
        log.note(id, "rows", 42.0);
        let tree = log.render_tree();
        assert!(tree.contains("stage.zeek ·"));
        assert!(tree.contains("  stage.zeek.read"));
        assert!(tree.contains("rows=42"));
        let json = log.to_json();
        assert!(json.contains("\"name\": \"stage.zeek\""));
        assert!(json.contains("\"rows\": 42"));
    }

    #[test]
    fn start_times_are_monotone_from_the_trace_origin() {
        let mut log = SpanLog::new();
        let a = log.start("a");
        log.finish(a);
        let b = log.start("b");
        log.finish(b);
        let r = log.records();
        assert_eq!(r[0].start_ns, 0, "origin is the first span's open");
        assert!(r[1].start_ns >= r[0].start_ns);
        assert!(log.to_json().contains("\"start_ns\": 0"));
    }

    #[test]
    fn chrome_trace_matches_the_trace_event_schema() {
        let mut log = SpanLog::new();
        let id = log.scope("stage.zeek", |log| {
            log.scope("stage.zeek.read", |_| {});
            SpanId(0)
        });
        log.note(id, "rows", 42.0);
        log.note(id, "bad", f64::NAN);
        let trace = log.to_chrome_trace();
        let v = crate::obs::json::parse(&trace).expect("trace is valid JSON");
        let events = v.as_arr().expect("trace is an array");
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(|x| x.as_str()), Some("X"));
            let ts = e.get("ts").and_then(|x| x.as_f64()).expect("ts");
            let dur = e.get("dur").and_then(|x| x.as_f64()).expect("dur");
            assert!(ts >= 0.0 && dur >= 0.0, "ts/dur in µs, non-negative");
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
        }
        // The child event nests inside its parent on the timeline.
        let parent = &events[0];
        let child = &events[1];
        let end = |e: &crate::obs::json::Value| {
            e.get("ts").and_then(|x| x.as_f64()).unwrap_or(0.0)
                + e.get("dur").and_then(|x| x.as_f64()).unwrap_or(0.0)
        };
        assert!(end(child) <= end(parent) + 1.0, "child ends within parent (±1 µs)");
        assert_eq!(
            parent.get("args").and_then(|a| a.get("rows")).and_then(|x| x.as_f64()),
            Some(42.0)
        );
        assert_eq!(
            parent.get("args").and_then(|a| a.get("bad")),
            Some(&crate::obs::json::Value::Null)
        );
        assert_eq!(SpanLog::new().to_chrome_trace(), "[]");
    }

    #[test]
    fn note_on_unknown_id_is_ignored() {
        let mut log = SpanLog::new();
        log.note(SpanId(99), "k", 1.0);
        log.finish(SpanId(99));
        assert!(log.records().is_empty());
    }
}
