//! Flight recorder: a fixed-capacity ring of recent structured events.
//!
//! Metrics answer "how much"; the flight recorder answers "what just
//! happened". Long-running stream runs record their notable moments —
//! epoch releases, state evictions, backpressure stalls, fault
//! rejections, parse degradations — into a bounded ring that drops the
//! oldest entry when full (with exact drop accounting, so a post-mortem
//! knows how much history it is missing). The recorder is cheap enough
//! to leave on: recording is one short mutex hold on paths that are
//! already rare (rejects) or per-epoch (releases), never per-packet.
//!
//! Event kinds are free-form `&'static str` tags; the conventional set
//! used by the pipeline is:
//!
//! | kind                 | emitted by                 | value            |
//! |----------------------|----------------------------|------------------|
//! | `epoch.release`      | `StreamEngine::end_epoch`  | rows released    |
//! | `state.evict`        | `StreamEngine` eviction    | entries evicted  |
//! | `backpressure.stall` | `pcapio::ring` push        | ring capacity    |
//! | `fault.reject`       | `Monitor` frame parse      | frames seen      |
//! | `parse.degrade`      | `Monitor` DNS decode       | payloads seen    |

use super::clock::{self, Mono};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number (0 = first event ever recorded).
    pub seq: u64,
    /// Nanoseconds since the recorder was created (wall-clock derived,
    /// so never part of a byte-compared section).
    pub t_ns: u64,
    /// Event kind tag (`epoch.release`, `state.evict`, ...).
    pub kind: &'static str,
    /// Human-readable detail (error name, epoch index, ...).
    pub detail: String,
    /// Headline numeric payload (rows released, entries evicted, ...).
    pub value: f64,
}

#[derive(Debug)]
struct State {
    ring: VecDeque<FlightEvent>,
    seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    cap: usize,
    origin: Mono,
    state: Mutex<State>,
}

/// A shared fixed-capacity event ring with drop-oldest semantics.
///
/// Cloning shares the ring. All methods are panic-free: a poisoned lock
/// (another thread panicked mid-record) is recovered, since the ring
/// contents stay structurally valid.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Inner {
                cap,
                origin: clock::now(),
                state: Mutex::new(State {
                    ring: VecDeque::with_capacity(cap),
                    seq: 0,
                    dropped: 0,
                }),
            }),
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> R {
        match self.inner.state.lock() {
            Ok(mut guard) => f(&mut guard),
            Err(poison) => f(&mut poison.into_inner()),
        }
    }

    /// Record one event, evicting the oldest when the ring is full.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>, value: f64) {
        let t_ns = self.inner.origin.elapsed_ns();
        let detail = detail.into();
        self.with_state(|s| {
            if s.ring.len() == self.inner.cap {
                s.ring.pop_front();
                s.dropped += 1;
            }
            let seq = s.seq;
            s.seq += 1;
            s.ring.push_back(FlightEvent { seq, t_ns, kind, detail, value });
        });
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.with_state(|s| s.ring.len())
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.with_state(|s| s.seq)
    }

    /// Events evicted to make room (recorded − held).
    pub fn dropped(&self) -> u64 {
        self.with_state(|s| s.dropped)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.with_state(|s| s.ring.iter().cloned().collect())
    }

    /// JSON dump: `{"capacity", "recorded", "dropped", "events": [...]}`.
    /// Events carry `seq`, `t_ns`, `kind`, `detail`, `value`.
    pub fn to_json(&self) -> String {
        let (events, recorded, dropped) =
            self.with_state(|s| (s.ring.iter().cloned().collect::<Vec<_>>(), s.seq, s.dropped));
        let mut out = format!(
            "{{\"capacity\": {}, \"recorded\": {recorded}, \"dropped\": {dropped}, \"events\": [",
            self.inner.cap
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"seq\": {}, \"t_ns\": {}, \"kind\": {}, \"detail\": {}, \"value\": {}}}",
                e.seq,
                e.t_ns,
                crate::bench::json_string(e.kind),
                crate::bench::json_string(&e.detail),
                if e.value.is_finite() { format!("{}", e.value) } else { "null".into() },
            ));
        }
        out.push_str(if events.is_empty() { "]}" } else { "\n]}" });
        out
    }
}

impl Default for FlightRecorder {
    /// The pipeline's default ring: 256 recent events.
    fn default() -> FlightRecorder {
        FlightRecorder::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_oldest_accounting_is_exact() {
        let fr = FlightRecorder::new(3);
        for i in 0..10u64 {
            fr.record("epoch.release", format!("epoch {i}"), i as f64);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.recorded(), 10);
        assert_eq!(fr.dropped(), 7);
        let events = fr.snapshot();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9], "oldest dropped first, order kept");
        assert_eq!(events[0].detail, "epoch 7");
        // recorded = held + dropped at all times.
        assert_eq!(fr.recorded(), fr.len() as u64 + fr.dropped());
    }

    #[test]
    fn timestamps_are_monotone() {
        let fr = FlightRecorder::new(8);
        fr.record("a", "", 0.0);
        fr.record("b", "", 1.0);
        let ev = fr.snapshot();
        assert!(ev[0].t_ns <= ev[1].t_ns);
    }

    #[test]
    fn clones_share_the_ring() {
        let fr = FlightRecorder::new(4);
        let other = fr.clone();
        other.record("state.evict", "flows", 12.0);
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.snapshot()[0].value, 12.0);
    }

    #[test]
    fn json_dump_parses_back() {
        let fr = FlightRecorder::new(2);
        fr.record("fault.reject", "TruncatedIp \"x\"", 1.0);
        fr.record("parse.degrade", "BadLabel", f64::NAN);
        fr.record("epoch.release", "epoch 0", 42.0);
        let v = crate::obs::json::parse(&fr.to_json()).expect("flight JSON is valid");
        assert_eq!(v.get("capacity").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(v.get("recorded").and_then(|x| x.as_f64()), Some(3.0));
        assert_eq!(v.get("dropped").and_then(|x| x.as_f64()), Some(1.0));
        let events = v.get("events").and_then(|x| x.as_arr()).expect("events array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("kind").and_then(|x| x.as_str()), Some("epoch.release"));
        assert_eq!(events[0].get("value"), Some(&crate::obs::json::Value::Null));
    }

    #[test]
    fn empty_dump_is_valid_json() {
        let fr = FlightRecorder::new(1);
        let v = crate::obs::json::parse(&fr.to_json()).unwrap();
        assert_eq!(v.get("events").and_then(|x| x.as_arr()).map(<[_]>::len), Some(0));
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(FlightRecorder::new(0).capacity(), 1);
    }
}
