//! A zero-dependency HTTP/1.1 observability endpoint.
//!
//! Just enough HTTP to scrape a live run: a blocking accept loop on one
//! dedicated thread, connections served sequentially (concurrency is
//! bounded at 1 by construction — an observability plane, not a web
//! server), per-socket read/write timeouts so a stalled client can
//! never wedge the exporter. This module and `pcapio::raw` are the only
//! places in the workspace allowed to touch sockets;
//! `scripts/verify.sh` fences `TcpListener`/`TcpStream`/`UdpSocket`
//! everywhere else.
//!
//! Endpoints (all `GET`):
//!
//! | path        | body                                                  |
//! |-------------|-------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of the hub snapshot        |
//! | `/snapshot` | canonical metrics JSON ([`Metrics::to_json`])         |
//! | `/spans`    | Chrome trace-event JSON (`SpanLog::to_chrome_trace`)  |
//! | `/events`   | flight-recorder dump ([`FlightRecorder::to_json`])    |
//! | `/healthz`  | `ok`                                                  |
//!
//! A server started with [`serve_tenants`] additionally routes the
//! daemon's tenant plane (DESIGN.md §15):
//!
//! | path                      | body                                    |
//! |---------------------------|-----------------------------------------|
//! | `/tenants`                | id-ordered `{"tenants": [{id, state}]}` |
//! | `/tenants/<id>/snapshot`  | that tenant's metrics JSON              |
//! | `/tenants/<id>/metrics`   | that tenant's Prometheus exposition     |
//!
//! and `/metrics` + `/snapshot` switch to the registry's id-ordered
//! aggregate fold, so the global view is deterministic for any worker
//! count once the tenants settle.
//!
//! [`Metrics::to_json`]: crate::obs::Metrics::to_json
//! [`FlightRecorder::to_json`]: crate::obs::FlightRecorder::to_json

use super::hub::ObsHub;
use super::tenants::HubRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-socket read/write timeout: a scraper that stalls longer than
/// this is dropped so the accept loop keeps serving.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head we accept before answering 400.
const MAX_REQUEST_BYTES: usize = 8192;

/// A running observability server; dropping it (or calling
/// [`shutdown`](ObsServer::shutdown)) stops the accept loop and joins
/// the serving thread.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// The bound address (useful with `127.0.0.1:0` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the accept loop, and join the thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9090`, or port `0` for ephemeral) and
/// serve the hub's current state until the returned server is dropped.
/// `namespace` prefixes every Prometheus metric name.
pub fn serve(addr: &str, namespace: &str, hub: ObsHub) -> io::Result<ObsServer> {
    serve_inner(addr, namespace, hub, None)
}

/// Like [`serve`], with the tenant plane attached: `/tenants` routes
/// resolve against `tenants`, and the global `/metrics` + `/snapshot`
/// serve the registry's id-ordered aggregate. The root `hub` keeps
/// `/spans` and `/events` (daemon-level traces and lifecycle events).
pub fn serve_tenants(
    addr: &str,
    namespace: &str,
    hub: ObsHub,
    tenants: HubRegistry,
) -> io::Result<ObsServer> {
    serve_inner(addr, namespace, hub, Some(tenants))
}

fn serve_inner(
    addr: &str,
    namespace: &str,
    hub: ObsHub,
    tenants: Option<HubRegistry>,
) -> io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let namespace = namespace.to_string();
    let handle = std::thread::Builder::new()
        .name("obs-http".into())
        .spawn(move || accept_loop(listener, &thread_stop, &namespace, &hub, tenants.as_ref()))?;
    Ok(ObsServer { addr, stop, handle: Some(handle) })
}

fn accept_loop(
    listener: TcpListener,
    stop: &AtomicBool,
    namespace: &str,
    hub: &ObsHub,
    tenants: Option<&HubRegistry>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // One connection at a time; a broken client costs at most the
        // I/O timeout, never the exporter.
        let _ = serve_one(stream, namespace, hub, tenants);
    }
}

/// Read one request, write one response, close.
fn serve_one(
    mut stream: TcpStream,
    namespace: &str,
    hub: &ObsHub,
    tenants: Option<&HubRegistry>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let (head, complete) = read_head(&mut stream)?;
    let (status, content_type, body) = if !complete {
        // EOF or the 8 KiB cap before the blank line: never route a
        // truncated head, even when its first line happens to parse.
        (400, "text/plain; charset=utf-8", "request head too large or truncated\n".to_string())
    } else {
        match parse_request_line(&head) {
            None => (400, "text/plain; charset=utf-8", "bad request\n".to_string()),
            Some((method, _)) if method != "GET" => {
                (405, "text/plain; charset=utf-8", "method not allowed\n".to_string())
            }
            Some((_, path)) => route(&path, namespace, hub, tenants),
        }
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Dispatch a path to its body. Query strings are ignored.
fn route(
    path: &str,
    namespace: &str,
    hub: &ObsHub,
    tenants: Option<&HubRegistry>,
) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    const TEXT: &str = "text/plain; charset=utf-8";
    const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";
    let path = path.split('?').next().unwrap_or(path);
    if let Some(reg) = tenants {
        if path == "/tenants" {
            return (200, JSON, reg.to_json());
        }
        if let Some(rest) = path.strip_prefix("/tenants/") {
            return match rest.split_once('/') {
                Some((id, "snapshot")) => match reg.hub(id) {
                    Some(hub) => (200, JSON, hub.metrics().to_json()),
                    None => (404, TEXT, format!("no such tenant: {id}\n")),
                },
                Some((id, "metrics")) => match reg.hub(id) {
                    Some(hub) => (200, PROM, hub.metrics().to_prometheus(namespace)),
                    None => (404, TEXT, format!("no such tenant: {id}\n")),
                },
                _ => (404, TEXT, "not found\n".to_string()),
            };
        }
        // The global views fold the registry, not the root hub: the
        // id-ordered merge is deterministic for any worker count.
        match path {
            "/metrics" => return (200, PROM, reg.aggregate().to_prometheus(namespace)),
            "/snapshot" => return (200, JSON, reg.aggregate().to_json()),
            _ => {}
        }
    }
    match path {
        "/metrics" => (200, PROM, hub.metrics().to_prometheus(namespace)),
        "/snapshot" => (200, JSON, hub.metrics().to_json()),
        "/spans" => (200, JSON, hub.spans_json()),
        "/events" => (200, JSON, hub.flight().to_json()),
        "/healthz" => (200, TEXT, "ok\n".to_string()),
        _ => (404, TEXT, "not found\n".to_string()),
    }
}

/// Read until the blank line ending the request head, reassembling
/// heads split across TCP segments. Returns the text plus a
/// completeness flag: `false` when EOF or the 8 KiB cap arrived before
/// the `\r\n\r\n` terminator (the caller answers 400, never routes).
///
/// An oversize head is drained (discarded) up to a hard bound before
/// returning, so the rejection response isn't clobbered by a TCP reset
/// over the unread remainder.
fn read_head(stream: &mut TcpStream) -> io::Result<(String, bool)> {
    // Past the stored cap, keep discarding this much before giving up
    // on delivering a clean 400.
    const DRAIN_BYTES: usize = 256 * 1024;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let mut complete = false;
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            break;
        }
        // Only the tail can complete the terminator: scan the new
        // bytes plus up to 3 carried over, not the whole buffer again.
        let scan_from = buf.len().saturating_sub(3);
        buf.extend_from_slice(&chunk[..n]);
        let found = buf[scan_from..].windows(4).any(|w| w == b"\r\n\r\n");
        if buf.len() <= MAX_REQUEST_BYTES {
            if found {
                complete = true;
                break;
            }
        } else if found || buf.len() >= DRAIN_BYTES {
            // Oversize: the head is already rejected; we only kept
            // reading to consume the client's send so the socket
            // closes cleanly.
            break;
        }
    }
    buf.truncate(MAX_REQUEST_BYTES);
    Ok((String::from_utf8_lossy(&buf).into_owned(), complete))
}

/// `GET /path HTTP/1.1` → `("GET", "/path")`.
fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path))
}

/// Minimal blocking GET against a served endpoint: returns the status
/// code and body. This is the self-scrape client `repro --serve-check`
/// and `repro obs-check --url` use, so validation traffic stays inside
/// this module's socket fence.
///
/// Reads incrementally and stops as soon as the response is provably
/// complete (headers plus `Content-Length` bytes of body) — a
/// slow-but-complete response succeeds instead of surfacing the old
/// `read_to_end` timeout that discarded every byte already read.
/// Incomplete responses fail distinctly: `UnexpectedEof` when the
/// server closes mid-body, `TimedOut` naming how many bytes arrived
/// when the socket stalls past [`IO_TIMEOUT`].
pub fn get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;

    let mut raw: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut body_start: Option<usize> = None;
    let mut content_length: Option<usize> = None;
    let mut eof = false;
    loop {
        if body_start.is_none() {
            if let Some(idx) = find_subslice(&raw, b"\r\n\r\n") {
                body_start = Some(idx + 4);
                content_length = parse_content_length(&raw[..idx]);
            }
        }
        if let (Some(start), Some(len)) = (body_start, content_length) {
            if raw.len() >= start + len {
                // Complete by construction: don't wait for EOF (or a
                // timeout) from a server that holds the socket open.
                raw.truncate(start + len);
                break;
            }
        }
        if eof {
            match (body_start, content_length) {
                (Some(start), Some(len)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("partial body: got {} of {len} bytes", raw.len() - start),
                    ));
                }
                // No Content-Length: EOF delimits the body (HTTP/1.0
                // style); a missing head falls through to the status
                // parse below, which reports the malformed response.
                _ => break,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::WouldBlock =>
            {
                return Err(match (body_start, content_length) {
                    (Some(start), Some(len)) => io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("partial body: got {} of {len} bytes before timeout", raw.len() - start),
                    ),
                    (Some(_), None) => io::Error::new(
                        io::ErrorKind::TimedOut,
                        "partial body: timed out on a length-undelimited body",
                    ),
                    _ => io::Error::new(
                        io::ErrorKind::TimedOut,
                        "timed out before the response headers completed",
                    ),
                });
            }
            Err(e) => return Err(e),
        }
    }

    let head_end = body_start.unwrap_or(raw.len());
    let head_text = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status = head_text
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match body_start {
        Some(start) => String::from_utf8_lossy(&raw[start..]).into_owned(),
        None => String::new(),
    };
    Ok((status, body))
}

/// First occurrence of `needle` in `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Case-insensitive `Content-Length` from a response head (the bytes
/// before the blank line).
fn parse_content_length(head: &[u8]) -> Option<usize> {
    let text = String::from_utf8_lossy(head);
    for line in text.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Metrics;

    fn test_hub() -> ObsHub {
        let hub = ObsHub::new(8);
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 42);
        m.gauge_max("stream.live_flows", 7.0);
        hub.publish_metrics(m);
        hub.publish_spans(
            "[{\"name\":\"stage.zeek\",\"ph\":\"X\",\"ts\":0,\"dur\":1.5,\"pid\":1,\"tid\":1}]"
                .into(),
        );
        hub.flight().record("epoch.release", "epoch 0", 3.0);
        hub
    }

    #[test]
    fn all_endpoints_respond() {
        let mut server = serve("127.0.0.1:0", "dnsctx", test_hub()).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE dnsctx_zeek_frames_seen counter"));
        assert!(body.contains("dnsctx_zeek_frames_seen 42"));

        let (status, body) = get(&addr, "/snapshot").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("snapshot is valid JSON");
        assert_eq!(v.get("zeek.frames_seen").and_then(|x| x.as_f64()), Some(42.0));

        let (status, body) = get(&addr, "/spans").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("spans are valid JSON");
        let spans = v.as_arr().expect("trace-event array");
        assert_eq!(spans[0].get("ph").and_then(|x| x.as_str()), Some("X"));

        let (status, body) = get(&addr, "/events").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("events are valid JSON");
        assert_eq!(v.get("recorded").and_then(|x| x.as_f64()), Some(1.0));

        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let mut server = serve("127.0.0.1:0", "ns", ObsHub::new(1)).expect("bind");
        let addr = server.addr().to_string();
        let (status, _) = get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);

        // Hand-rolled POST: the tiny client only speaks GET.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"), "got: {text}");

        server.shutdown();
    }

    #[test]
    fn serves_updates_published_after_start() {
        let hub = ObsHub::new(1);
        let mut server = serve("127.0.0.1:0", "ns", hub.clone()).expect("bind");
        let addr = server.addr().to_string();
        let (_, body) = get(&addr, "/snapshot").unwrap();
        assert_eq!(body, "{\n}");
        let mut m = Metrics::new();
        m.add("late", 1);
        hub.publish_metrics(m);
        let (_, body) = get(&addr, "/snapshot").unwrap();
        assert!(body.contains("\"late\": 1"));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut server = serve("127.0.0.1:0", "ns", ObsHub::new(1)).expect("bind");
        server.shutdown();
        server.shutdown();
        drop(server); // second path through Drop::drop
    }

    #[test]
    fn split_write_heads_are_reassembled() {
        // Regression: a request head split across TCP segments must be
        // reassembled until the blank line, not truncated at the first
        // read and misrouted.
        let mut server = serve("127.0.0.1:0", "ns", test_hub()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for segment in ["GET /hea", "lthz HTT", "P/1.1\r\nHost: x\r\n", "Connection: close\r\n\r\n"]
        {
            stream.write_all(segment.as_bytes()).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
        assert!(text.ends_with("ok\n"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn oversized_heads_are_rejected_not_routed() {
        // Regression: a head that blows the 8 KiB cap used to be routed
        // off its (valid) first line; it must answer 400.
        let mut server = serve("127.0.0.1:0", "ns", test_hub()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let padding = "x".repeat(MAX_REQUEST_BYTES);
        let request = format!("GET /healthz HTTP/1.1\r\nX-Pad: {padding}\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        server.shutdown();
    }

    /// One-shot test server: accepts a single connection, swallows the
    /// request head, runs `respond` on the socket.
    fn one_shot_server(
        respond: impl FnOnce(&mut TcpStream) + Send + 'static,
    ) -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut sink = [0u8; 1024];
            let _ = stream.read(&mut sink);
            respond(&mut stream);
        });
        (addr, handle)
    }

    #[test]
    fn get_returns_a_slow_but_complete_response() {
        // Regression: the old read_to_end under the socket timeout
        // surfaced TimedOut and discarded a complete response when the
        // server dribbled the body or held the connection open. With
        // Content-Length satisfied, get() must return promptly.
        let (addr, handle) = one_shot_server(|stream| {
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhello")
                .unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(150));
            stream.write_all(b" body").unwrap();
            stream.flush().unwrap();
            // Hold the socket open past IO_TIMEOUT: a read_to_end
            // client blocks into its timeout here and loses the body;
            // the Content-Length-aware client returned long ago.
            std::thread::sleep(IO_TIMEOUT + Duration::from_millis(500));
        });
        let (status, body) = get(&addr.to_string(), "/x").expect("slow but complete");
        assert_eq!((status, body.as_str()), (200, "hello body"));
        handle.join().unwrap();
    }

    #[test]
    fn get_reports_partial_bodies_distinctly() {
        // Server promises 100 bytes, delivers 10, closes: a distinct
        // partial-body error, not a silent truncation or a bare EOF.
        let (addr, handle) = one_shot_server(|stream| {
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n0123456789")
                .unwrap();
            stream.flush().unwrap();
        });
        let err = get(&addr.to_string(), "/x").expect_err("partial body must error");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let msg = err.to_string();
        assert!(msg.contains("partial body"), "got: {msg}");
        assert!(msg.contains("10 of 100"), "got: {msg}");
        handle.join().unwrap();
    }

    #[test]
    fn get_still_reads_length_undelimited_bodies_to_eof() {
        let (addr, handle) = one_shot_server(|stream| {
            stream.write_all(b"HTTP/1.1 200 OK\r\n\r\nold style").unwrap();
            stream.flush().unwrap();
        });
        let (status, body) = get(&addr.to_string(), "/x").expect("eof-delimited");
        assert_eq!((status, body.as_str()), (200, "old style"));
        handle.join().unwrap();
    }

    #[test]
    fn tenant_routes_resolve_and_aggregate() {
        use crate::obs::HubRegistry;
        let reg = HubRegistry::new();
        let t0 = ObsHub::new(1);
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 5);
        t0.publish_metrics(m);
        let t1 = ObsHub::new(1);
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 11);
        t1.publish_metrics(m);
        reg.add("t0", t0).expect("t0");
        reg.add("t1", t1).expect("t1");
        reg.set_state("t1", "running");

        let mut server =
            serve_tenants("127.0.0.1:0", "dnsctx", test_hub(), reg.clone()).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = get(&addr, "/tenants").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("tenants JSON");
        let arr = v.get("tenants").and_then(|t| t.as_arr()).expect("array").to_vec();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("state").and_then(|x| x.as_str()), Some("running"));

        let (status, body) = get(&addr, "/tenants/t0/snapshot").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("tenant snapshot JSON");
        assert_eq!(v.get("zeek.frames_seen").and_then(|x| x.as_f64()), Some(5.0));

        let (status, body) = get(&addr, "/tenants/t1/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("dnsctx_zeek_frames_seen 11"), "got: {body}");

        // The global views fold the registry (5 + 11), not the root
        // hub (whose test_hub counter is 42).
        let (status, body) = get(&addr, "/snapshot").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("aggregate JSON");
        assert_eq!(v.get("zeek.frames_seen").and_then(|x| x.as_f64()), Some(16.0));
        let (_, body) = get(&addr, "/metrics").unwrap();
        assert!(body.contains("dnsctx_zeek_frames_seen 16"), "got: {body}");

        // Root-hub planes and 404s still work under the tenant router.
        let (status, _) = get(&addr, "/events").unwrap();
        assert_eq!(status, 200);
        let (status, body) = get(&addr, "/tenants/ghost/snapshot").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("no such tenant"), "got: {body}");
        let (status, _) = get(&addr, "/tenants/t0/nope").unwrap();
        assert_eq!(status, 404);

        // Removal takes the tenant out of both routing and the fold.
        assert!(reg.remove("t1"));
        let (status, _) = get(&addr, "/tenants/t1/snapshot").unwrap();
        assert_eq!(status, 404);
        let (_, body) = get(&addr, "/snapshot").unwrap();
        let v = crate::obs::json::parse(&body).expect("aggregate JSON");
        assert_eq!(v.get("zeek.frames_seen").and_then(|x| x.as_f64()), Some(5.0));

        server.shutdown();
    }
}
