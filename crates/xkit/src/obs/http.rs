//! A zero-dependency HTTP/1.1 observability endpoint.
//!
//! Just enough HTTP to scrape a live run: a blocking accept loop on one
//! dedicated thread, connections served sequentially (concurrency is
//! bounded at 1 by construction — an observability plane, not a web
//! server), per-socket read/write timeouts so a stalled client can
//! never wedge the exporter. This module and `pcapio::raw` are the only
//! places in the workspace allowed to touch sockets;
//! `scripts/verify.sh` fences `TcpListener`/`TcpStream`/`UdpSocket`
//! everywhere else.
//!
//! Endpoints (all `GET`):
//!
//! | path        | body                                                  |
//! |-------------|-------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of the hub snapshot        |
//! | `/snapshot` | canonical metrics JSON ([`Metrics::to_json`])         |
//! | `/spans`    | Chrome trace-event JSON (`SpanLog::to_chrome_trace`)  |
//! | `/events`   | flight-recorder dump ([`FlightRecorder::to_json`])    |
//! | `/healthz`  | `ok`                                                  |
//!
//! [`Metrics::to_json`]: crate::obs::Metrics::to_json
//! [`FlightRecorder::to_json`]: crate::obs::FlightRecorder::to_json

use super::hub::ObsHub;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-socket read/write timeout: a scraper that stalls longer than
/// this is dropped so the accept loop keeps serving.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head we accept before answering 400.
const MAX_REQUEST_BYTES: usize = 8192;

/// A running observability server; dropping it (or calling
/// [`shutdown`](ObsServer::shutdown)) stops the accept loop and joins
/// the serving thread.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// The bound address (useful with `127.0.0.1:0` ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the accept loop, and join the thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9090`, or port `0` for ephemeral) and
/// serve the hub's current state until the returned server is dropped.
/// `namespace` prefixes every Prometheus metric name.
pub fn serve(addr: &str, namespace: &str, hub: ObsHub) -> io::Result<ObsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let namespace = namespace.to_string();
    let handle = std::thread::Builder::new()
        .name("obs-http".into())
        .spawn(move || accept_loop(listener, &thread_stop, &namespace, &hub))?;
    Ok(ObsServer { addr, stop, handle: Some(handle) })
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool, namespace: &str, hub: &ObsHub) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // One connection at a time; a broken client costs at most the
        // I/O timeout, never the exporter.
        let _ = serve_one(stream, namespace, hub);
    }
}

/// Read one request, write one response, close.
fn serve_one(mut stream: TcpStream, namespace: &str, hub: &ObsHub) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = read_head(&mut stream)?;
    let (status, content_type, body) = match parse_request_line(&head) {
        None => (400, "text/plain; charset=utf-8", "bad request\n".to_string()),
        Some((method, _)) if method != "GET" => {
            (405, "text/plain; charset=utf-8", "method not allowed\n".to_string())
        }
        Some((_, path)) => route(&path, namespace, hub),
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Dispatch a path to its body. Query strings are ignored.
fn route(path: &str, namespace: &str, hub: &ObsHub) -> (u16, &'static str, String) {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => (200, "text/plain; version=0.0.4; charset=utf-8", hub.metrics().to_prometheus(namespace)),
        "/snapshot" => (200, "application/json", hub.metrics().to_json()),
        "/spans" => (200, "application/json", hub.spans_json()),
        "/events" => (200, "application/json", hub.flight().to_json()),
        "/healthz" => (200, "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}

/// Read until the blank line ending the request head (or the size cap).
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `GET /path HTTP/1.1` → `("GET", "/path")`.
fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path))
}

/// Minimal blocking GET against a served endpoint: returns the status
/// code and body. This is the self-scrape client `repro --serve-check`
/// and `repro obs-check --url` use, so validation traffic stays inside
/// this module's socket fence.
pub fn get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(idx) => text[idx + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Metrics;

    fn test_hub() -> ObsHub {
        let hub = ObsHub::new(8);
        let mut m = Metrics::new();
        m.add("zeek.frames_seen", 42);
        m.gauge_max("stream.live_flows", 7.0);
        hub.publish_metrics(m);
        hub.publish_spans(
            "[{\"name\":\"stage.zeek\",\"ph\":\"X\",\"ts\":0,\"dur\":1.5,\"pid\":1,\"tid\":1}]"
                .into(),
        );
        hub.flight().record("epoch.release", "epoch 0", 3.0);
        hub
    }

    #[test]
    fn all_endpoints_respond() {
        let mut server = serve("127.0.0.1:0", "dnsctx", test_hub()).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = get(&addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE dnsctx_zeek_frames_seen counter"));
        assert!(body.contains("dnsctx_zeek_frames_seen 42"));

        let (status, body) = get(&addr, "/snapshot").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("snapshot is valid JSON");
        assert_eq!(v.get("zeek.frames_seen").and_then(|x| x.as_f64()), Some(42.0));

        let (status, body) = get(&addr, "/spans").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("spans are valid JSON");
        let spans = v.as_arr().expect("trace-event array");
        assert_eq!(spans[0].get("ph").and_then(|x| x.as_str()), Some("X"));

        let (status, body) = get(&addr, "/events").unwrap();
        assert_eq!(status, 200);
        let v = crate::obs::json::parse(&body).expect("events are valid JSON");
        assert_eq!(v.get("recorded").and_then(|x| x.as_f64()), Some(1.0));

        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let mut server = serve("127.0.0.1:0", "ns", ObsHub::new(1)).expect("bind");
        let addr = server.addr().to_string();
        let (status, _) = get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);

        // Hand-rolled POST: the tiny client only speaks GET.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"), "got: {text}");

        server.shutdown();
    }

    #[test]
    fn serves_updates_published_after_start() {
        let hub = ObsHub::new(1);
        let mut server = serve("127.0.0.1:0", "ns", hub.clone()).expect("bind");
        let addr = server.addr().to_string();
        let (_, body) = get(&addr, "/snapshot").unwrap();
        assert_eq!(body, "{\n}");
        let mut m = Metrics::new();
        m.add("late", 1);
        hub.publish_metrics(m);
        let (_, body) = get(&addr, "/snapshot").unwrap();
        assert!(body.contains("\"late\": 1"));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut server = serve("127.0.0.1:0", "ns", ObsHub::new(1)).expect("bind");
        server.shutdown();
        server.shutdown();
        drop(server); // second path through Drop::drop
    }
}
