//! The workspace's single monotonic-clock seam.
//!
//! Every wall-time measurement in the workspace — bench harness samples,
//! span timers, stage progress — flows through [`now`]. This is the only
//! place `std::time::Instant` is allowed (`scripts/verify.sh` denies it
//! everywhere else), which keeps timing swappable and makes the
//! deterministic/non-deterministic split of every report explicit: values
//! derived from this module are timings and never belong in a
//! byte-compared snapshot section.

use std::time::{Duration, Instant};

/// An opaque monotonic timestamp; the only way to measure elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mono(Instant);

/// Read the monotonic clock.
pub fn now() -> Mono {
    Mono(Instant::now())
}

impl Mono {
    /// Time elapsed since this reading.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds since this reading, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed seconds since this reading, as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Duration between two readings (`later - self`), zero if `later`
    /// precedes `self`.
    pub fn delta(&self, later: Mono) -> Duration {
        later.0.saturating_duration_since(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now();
        let b = now();
        assert_eq!(b.delta(a), Duration::ZERO, "earlier minus later is zero");
        assert!(a.delta(b) >= Duration::ZERO);
        assert!(a.elapsed_ns() <= a.elapsed_ns().max(1));
    }

    #[test]
    fn elapsed_advances() {
        let t = now();
        std::hint::black_box((0..10_000u64).sum::<u64>());
        assert!(t.elapsed() >= Duration::ZERO);
        assert!(t.elapsed_secs() >= 0.0);
    }
}
