//! Thread-safe metric handles and the registry that snapshots them.
//!
//! Hot per-shard code should prefer a plain [`Metrics`] recorder merged in
//! shard order (exactly deterministic, no synchronization). The
//! [`Registry`] is for genuinely concurrent recording — counters bumped
//! from several workers at once — and produces the same [`Metrics`]
//! snapshot type, so both paths share one merge/export pipeline.

use super::metrics::{HistSpec, Histogram, Metric, Metrics};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared atomic counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared atomic gauge (f64 stored as bits, merged by maximum).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Raise the gauge to at least `v` (lock-free CAS loop; the final
    /// value is the maximum of all writes regardless of interleaving).
    pub fn set_max(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct AtomicHist {
    spec: HistSpec,
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    nonfinite: AtomicU64,
    count: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A shared atomic histogram handle.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHist>);

impl HistogramHandle {
    fn new(spec: HistSpec) -> HistogramHandle {
        let bounds = spec.bounds();
        let counts = (0..spec.buckets()).map(|_| AtomicU64::new(0)).collect();
        HistogramHandle(Arc::new(AtomicHist {
            spec,
            bounds,
            counts,
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            nonfinite: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }

    /// Record one value (same bucket semantics as
    /// [`Histogram::observe`]).
    pub fn observe(&self, v: f64) {
        let h = &*self.0;
        if !v.is_finite() {
            h.nonfinite.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if v < h.bounds[0] {
            h.underflow.fetch_add(1, Ordering::Relaxed);
        } else if v >= h.bounds[h.bounds.len() - 1] {
            h.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = h.bounds.partition_point(|b| *b <= v) - 1;
            h.counts[idx].fetch_add(1, Ordering::Relaxed);
        }
        h.count.fetch_add(1, Ordering::Relaxed);
        cas_extreme(&h.min_bits, v, |cur, v| v < cur);
        cas_extreme(&h.max_bits, v, |cur, v| v > cur);
    }

    /// Snapshot into a plain mergeable [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let h = &*self.0;
        let mut out = Histogram::new(h.spec);
        for (i, c) in h.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                // Geometric bucket midpoint keeps the value inside its
                // own bucket, so counts transfer exactly.
                let mid = (h.bounds[i] * h.bounds[i + 1]).sqrt();
                out.observe_n(mid, n);
            }
        }
        out.observe_n(h.bounds[0] / 2.0, h.underflow.load(Ordering::Relaxed));
        out.observe_n(
            h.bounds[h.bounds.len() - 1] * 2.0,
            h.overflow.load(Ordering::Relaxed),
        );
        let mut out = out.with_exact_extrema(
            f64::from_bits(h.min_bits.load(Ordering::Relaxed)),
            f64::from_bits(h.max_bits.load(Ordering::Relaxed)),
        );
        out.observe_n(f64::NAN, h.nonfinite.load(Ordering::Relaxed));
        out
    }
}

/// CAS loop updating an f64-bits cell toward an extremum.
fn cas_extreme(cell: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if !better(f64::from_bits(cur), v) {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Hist(HistogramHandle),
}

/// A thread-safe registry of named metric handles.
///
/// Cloning shares the underlying store; [`snapshot`](Registry::snapshot)
/// reads every handle into a plain [`Metrics`] for merging/export.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Handle>>>,
    conflicts: Arc<AtomicU64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn with_map<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Handle>) -> R) -> R {
        match self.inner.lock() {
            Ok(mut guard) => f(&mut guard),
            // A poisoned lock only means another thread panicked while
            // registering; the map itself is still a valid metric store.
            Err(poison) => f(&mut poison.into_inner()),
        }
    }

    /// The counter registered under `name` (created on first use).
    /// A kind mismatch returns a detached handle and bumps the
    /// `obs.kind_conflicts` counter in snapshots.
    pub fn counter(&self, name: &str) -> Counter {
        self.with_map(|map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| Handle::Counter(Counter(Arc::new(AtomicU64::new(0)))))
            {
                Handle::Counter(c) => c.clone(),
                _ => {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    Counter(Arc::new(AtomicU64::new(0)))
                }
            }
        })
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.with_map(|map| {
            match map.entry(name.to_string()).or_insert_with(|| {
                Handle::Gauge(Gauge(Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits()))))
            }) {
                Handle::Gauge(g) => g.clone(),
                _ => {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    Gauge(Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits())))
                }
            }
        })
    }

    /// The histogram registered under `name` (created with `spec` on
    /// first use; later `spec`s are ignored).
    pub fn histogram(&self, name: &str, spec: HistSpec) -> HistogramHandle {
        self.with_map(|map| {
            match map
                .entry(name.to_string())
                .or_insert_with(|| Handle::Hist(HistogramHandle::new(spec)))
            {
                Handle::Hist(h) => h.clone(),
                _ => {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    HistogramHandle::new(spec)
                }
            }
        })
    }

    /// Read every handle into a plain snapshot. Gauges that were never
    /// written are omitted.
    pub fn snapshot(&self) -> Metrics {
        let mut out = Metrics::new();
        self.with_map(|map| {
            for (name, handle) in map.iter() {
                match handle {
                    Handle::Counter(c) => out.insert(name, Metric::Counter(c.get())),
                    Handle::Gauge(g) => {
                        let v = g.get();
                        if v.is_finite() {
                            out.insert(name, Metric::Gauge(v));
                        }
                    }
                    Handle::Hist(h) => out.insert(name, Metric::Hist(h.snapshot())),
                }
            }
        });
        let conflicts = self.conflicts.load(Ordering::Relaxed);
        if conflicts > 0 {
            out.add("obs.kind_conflicts", conflicts);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        let g = reg.gauge("peak");
        crate::par::par_map(4, (0..8u64).collect(), |_, i| {
            for _ in 0..1000 {
                c.inc();
            }
            g.set_max(i as f64);
            i
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), 8000);
        assert_eq!(snap.gauge("peak"), Some(7.0));
    }

    #[test]
    fn histogram_snapshot_preserves_counts_and_extrema() {
        let reg = Registry::new();
        let h = reg.histogram("lat", HistSpec::time_ms());
        h.observe(0.5);
        h.observe(5.0);
        h.observe(1e12); // overflow
        h.observe(1e-9); // underflow
        h.observe(f64::NAN);
        let snap = reg.snapshot();
        let hist = snap.hist("lat").unwrap();
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.overflow(), 1);
        assert_eq!(hist.underflow(), 1);
        assert_eq!(hist.nonfinite(), 1);
        assert_eq!(hist.min(), Some(1e-9));
        assert_eq!(hist.max(), Some(1e12));
    }

    #[test]
    fn same_name_returns_same_handle() {
        let reg = Registry::new();
        reg.counter("x").add(2);
        reg.counter("x").add(3);
        assert_eq!(reg.snapshot().counter("x"), 5);
    }

    #[test]
    fn kind_conflict_is_detached_and_counted() {
        let reg = Registry::new();
        reg.counter("x").inc();
        let g = reg.gauge("x"); // wrong kind: detached
        g.set_max(9.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 1);
        assert_eq!(snap.counter("obs.kind_conflicts"), 1);
    }

    #[test]
    fn unwritten_gauge_is_omitted() {
        let reg = Registry::new();
        let _ = reg.gauge("never");
        assert!(reg.snapshot().gauge("never").is_none());
    }
}
