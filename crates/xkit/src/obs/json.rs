//! A minimal JSON value, parser, and canonical renderer.
//!
//! Just enough JSON to validate and compare the workspace's own reports:
//! `scripts/verify.sh` parses `OBS_repro.json` back through this module,
//! and the determinism tests compare the rendered `metrics` sections of
//! two runs byte-for-byte. Not a general-purpose JSON library — numbers
//! are `f64`, object key order is preserved as parsed (our emitters
//! always write name-sorted keys), and inputs deeper than 64 levels are
//! rejected.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order preserved as parsed.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Canonical compact rendering: no whitespace, shortest round-trip
    /// floats. Structurally equal values render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => out.push_str(&crate::bench::json_string(s)),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&crate::bench::json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Minimal surrogate handling: pair when the
                            // next escape is a low surrogate, otherwise
                            // substitute U+FFFD rather than erroring.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(&format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(chunk) => {
                            if let Some(c) = chunk.chars().next() {
                                out.push(c);
                                self.pos += c.len_utf8();
                            } else {
                                self.pos = end;
                            }
                        }
                        Err(_) => return Err(self.err("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse("{\"k\": [1, 2, {\"x\": null}]}").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("x"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Value::Str("😀".into()));
        assert_eq!(parse("\"caf\u{e9}\"").unwrap(), Value::Str("café".into()));
    }

    #[test]
    fn render_round_trips_canonically() {
        let doc = "{\"b\": 1, \"a\": [true, null, \"x\"], \"n\": 2.5}";
        let v = parse(doc).unwrap();
        let canon = v.render();
        assert_eq!(canon, "{\"b\":1,\"a\":[true,null,\"x\"],\"n\":2.5}");
        assert_eq!(parse(&canon).unwrap(), v, "render → parse is stable");
        assert_eq!(parse(&canon).unwrap().render(), canon);
    }

    #[test]
    fn metrics_json_parses_back() {
        use crate::obs::Metrics;
        let mut m = Metrics::new();
        m.add("pair.hit", 7);
        m.gauge_max("peak", 3.5);
        m.observe("gap_ms", 4.0);
        let v = parse(&m.to_json()).expect("metrics JSON is valid");
        assert_eq!(v.get("pair.hit").and_then(Value::as_f64), Some(7.0));
        assert_eq!(
            v.get("peak").and_then(|g| g.get("gauge")).and_then(Value::as_f64),
            Some(3.5)
        );
        let hist = v.get("gap_ms").and_then(|h| h.get("hist")).expect("hist object");
        assert_eq!(hist.get("count").and_then(Value::as_f64), Some(1.0));
    }
}
