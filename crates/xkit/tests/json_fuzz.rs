//! Fuzz-smoke coverage for `xkit::obs::json::parse`: adversarial inputs
//! must produce `Err`, never a panic, and everything that does parse must
//! survive a render → parse round trip. The generator is a tiny seeded
//! LCG, so every "random" case is reproducible from the source alone.

use xkit::obs::json::{parse, Value};

/// Deterministic byte soup: a multiplicative LCG over a fixed seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }
}

/// Every input in this suite either parses or errors; the assertion is
/// that nothing panics and successes re-render stably.
fn must_not_panic(input: &str) {
    if let Ok(v) = parse(input) {
        let canon = v.render();
        let back = parse(&canon).unwrap_or_else(|e| {
            panic!("canonical render of {input:?} failed to re-parse: {e}")
        });
        assert_eq!(back.render(), canon, "render must be a fixed point for {input:?}");
    }
}

#[test]
fn escape_sequences_edge_cases() {
    // Valid escapes round-trip to the right scalar.
    assert_eq!(parse(r#""\u0000""#).unwrap(), Value::Str("\u{0}".into()));
    assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
    // Lone surrogates substitute U+FFFD rather than erroring.
    assert_eq!(parse(r#""\ud800""#).unwrap(), Value::Str("\u{FFFD}".into()));
    assert_eq!(parse(r#""\udc00x""#).unwrap(), Value::Str("\u{FFFD}x".into()));
    // Malformed escapes are errors, not panics.
    for bad in [r#""\"#, r#""\u"#, r#""\u12"#, r#""\uZZZZ""#, r#""\x41""#, "\"\\"] {
        assert!(parse(bad).is_err(), "{bad:?} must not parse");
        must_not_panic(bad);
    }
}

#[test]
fn numeric_extremes_do_not_panic() {
    assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
    // Overflowing literals saturate to infinity in Rust's f64 parser; the
    // canonical renderer writes non-finite numbers as null, and that must
    // still round-trip.
    must_not_panic("1e309");
    must_not_panic("-1e309");
    must_not_panic(&format!("1{}", "0".repeat(400)));
    must_not_panic(&format!("0.{}1", "0".repeat(400)));
    assert_eq!(parse("-0.0").unwrap().as_f64(), Some(-0.0));
    // Incomplete numbers error cleanly.
    for bad in ["-", "1e", "1e+", ".", "1.", "0x10", "+1", "NaN", "Infinity"] {
        // "1." style inputs are rejected by f64::from_str? ("1." parses in
        // Rust) — either outcome is fine, the contract is no panic.
        must_not_panic(bad);
    }
    assert!(parse("-").is_err());
    assert!(parse("+1").is_err());
    assert!(parse("NaN").is_err());
}

#[test]
fn deep_nesting_is_rejected_not_overflowed() {
    // The parser admits 64 levels below the root; 66 brackets puts the
    // innermost value past the limit.
    for depth in [66, 100, 10_000] {
        let arrays = "[".repeat(depth) + &"]".repeat(depth);
        assert!(parse(&arrays).is_err(), "depth {depth} must be rejected");
        let objects = "{\"k\":".repeat(depth) + "1" + &"}".repeat(depth);
        assert!(parse(&objects).is_err(), "object depth {depth} must be rejected");
    }
    // Unclosed deep nesting (truncated input) is also an error.
    assert!(parse(&"[".repeat(10_000)).is_err());
}

#[test]
fn truncations_of_a_valid_document_error_cleanly() {
    let doc = r#"{"meta":{"seed":42},"metrics":{"zeek.frames_seen":12,"g":{"gauge":-1.5e-3},"h":{"hist":{"count":2,"counts":[1,1]}}},"spans":[{"name":"stage.zeek","notes":{"café":1}}]}"#;
    assert!(parse(doc).is_ok());
    for cut in 1..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let prefix = &doc[..cut];
        assert!(parse(prefix).is_err(), "prefix of len {cut} must not parse");
        must_not_panic(prefix);
    }
}

#[test]
fn seeded_byte_soup_never_panics() {
    let mut rng = Lcg(0x5eed_cafe_d00d_f00d);
    // Structured-ish alphabet: heavy on JSON syntax bytes so the soup
    // reaches deep into the parser instead of failing on byte one.
    let alphabet: &[u8] = b"{}[]\",:\\ud123456789eE.-+ truefalsn\n\t ";
    for _ in 0..2_000 {
        let len = (rng.next() % 64) as usize;
        let bytes: Vec<u8> =
            (0..len).map(|_| alphabet[(rng.next() % alphabet.len() as u64) as usize]).collect();
        let input = String::from_utf8(bytes).expect("alphabet is ASCII");
        must_not_panic(&input);
    }
}

#[test]
fn seeded_mutations_of_valid_documents_never_panic() {
    let seeds = [
        r#"{"a":1,"b":{"gauge":2.5},"c":{"hist":{"count":1,"counts":[1]}}}"#,
        r#"[{"name":"stage.pair","ph":"X","ts":1.5,"dur":0.25,"args":{"hits":7}}]"#,
        r#"{"events":[{"seq":0,"t_ns":12,"kind":"epoch.release","detail":"ok","value":3}]}"#,
    ];
    let mut rng = Lcg(0xdead_beef_1234_5678);
    for doc in seeds {
        assert!(parse(doc).is_ok());
        for _ in 0..500 {
            let mut bytes = doc.as_bytes().to_vec();
            // One to three point mutations: overwrite, delete, or insert.
            for _ in 0..=(rng.next() % 3) {
                let at = (rng.next() % bytes.len() as u64) as usize;
                match rng.next() % 3 {
                    0 => bytes[at] = (rng.next() % 128) as u8,
                    1 => {
                        bytes.remove(at);
                    }
                    _ => bytes.insert(at, (rng.next() % 128) as u8),
                }
                if bytes.is_empty() {
                    break;
                }
            }
            if let Ok(input) = String::from_utf8(bytes) {
                must_not_panic(&input);
            }
        }
    }
}
