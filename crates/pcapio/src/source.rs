//! The ingestion seam: a pull-based abstraction over "where packets
//! come from".
//!
//! Every consumer of capture data — the zeek-lite monitor, the streaming
//! analysis engine, the repro CLI — drives a [`RecordSource`] instead of
//! constructing a [`PcapReader`] directly. Three backends implement the
//! trait:
//!
//! * **file** — [`PcapReader`], constructed through [`file`]; unchanged
//!   semantics, byte-identical output to the pre-seam pipeline;
//! * **in-memory ring** — [`crate::ring::RingSource`], the consumer end
//!   of a fixed-capacity SPSC ring, so a simulator (or any producer)
//!   pipes frames straight to the monitor with no serialize/parse round
//!   trip;
//! * **raw socket** — [`crate::raw::RawSource`] (feature `raw-socket`),
//!   a zero-dependency Linux `AF_PACKET` reader watching a real
//!   interface.
//!
//! The contract mirrors [`PcapReader::next_record`] exactly: each call
//! yields a borrowed [`RecordRef`] valid until the next call (backends
//! reuse an internal read buffer), `Ok(None)` is end of stream, and a
//! malformed record is a typed error that leaves the source usable for
//! the caller to decide whether to continue.

use std::io::Read;

use crate::{PcapError, PcapReader, RecordRef, LINKTYPE_ETHERNET};

/// The per-stream invariants a backend advertises up front — the moral
/// equivalent of the pcap global header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceHeader {
    /// Link-layer type of every record (`LINKTYPE_*`; all in-tree
    /// backends produce Ethernet).
    pub link_type: u32,
    /// Maximum stored bytes per record; `orig_len` may exceed this.
    pub snaplen: u32,
}

/// A pull-based stream of capture records.
///
/// Implementations hand out records borrowed from an internal reusable
/// buffer: a [`RecordRef`] is valid until the next call to
/// [`RecordSource::next`]. This keeps every backend on the zero-copy
/// discipline the file reader established (`RecordRef::to_owned` remains
/// the sanctioned owned exit).
pub trait RecordSource {
    /// Stream-level header: link type and snaplen.
    fn header(&self) -> SourceHeader;

    /// Pull the next record. `Ok(None)` means the stream is exhausted
    /// (end of file, producer closed the ring, or a configured frame
    /// limit was reached).
    fn next(&mut self) -> Result<Option<RecordRef<'_>>, PcapError>;

    /// Source-side counters as an obs snapshot, using the same
    /// `capture.frames_read` / `capture.bytes_read` /
    /// `capture.frames_rejected` names for every backend so downstream
    /// accounting identities hold regardless of where frames came from.
    fn metrics(&self) -> xkit::obs::Metrics;
}

impl<R: Read> RecordSource for PcapReader<R> {
    fn header(&self) -> SourceHeader {
        SourceHeader { link_type: LINKTYPE_ETHERNET, snaplen: self.snaplen() }
    }

    fn next(&mut self) -> Result<Option<RecordRef<'_>>, PcapError> {
        self.next_record()
    }

    fn metrics(&self) -> xkit::obs::Metrics {
        PcapReader::metrics(self)
    }
}

/// Open the file backend: parse a pcap global header from `input` and
/// return the reader as a [`RecordSource`].
///
/// This is the one sanctioned constructor for file-backed ingestion
/// outside this crate — `verify.sh` deny-greps direct `PcapReader::new`
/// calls in non-test code so every consumer stays behind the seam.
pub fn file<R: Read>(input: R) -> Result<PcapReader<R>, PcapError> {
    PcapReader::new(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PcapWriter, TsPrecision};

    #[test]
    fn file_backend_matches_reader_semantics() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
        w.write_packet(7, b"abc", None).unwrap();
        w.write_packet(9, b"defg", None).unwrap();
        drop(w);

        let mut src = file(&buf[..]).unwrap();
        assert_eq!(src.header(), SourceHeader { link_type: LINKTYPE_ETHERNET, snaplen: 96 });
        let r = src.next().unwrap().unwrap();
        assert_eq!((r.ts_nanos, r.orig_len, r.data), (7, 3, &b"abc"[..]));
        let r = src.next().unwrap().unwrap();
        assert_eq!((r.ts_nanos, r.orig_len, r.data), (9, 4, &b"defg"[..]));
        assert!(src.next().unwrap().is_none());

        let m = RecordSource::metrics(&src);
        assert_eq!(m.counter("capture.frames_read"), 2);
        assert_eq!(m.counter("capture.bytes_read"), 7);
        assert_eq!(m.counter("capture.frames_rejected"), 0);
    }
}
