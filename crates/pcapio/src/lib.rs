//! Reader and writer for the classic libpcap capture file format.
//!
//! Supports both byte orders and both timestamp precisions (microsecond
//! magic `0xA1B2C3D4`, nanosecond magic `0xA1B23C4D`), Ethernet link type,
//! and snaplen truncation on write — everything needed to serialise a
//! simulated capture and read it back as a production monitor would.
//!
//! The format is the original fixed 24-byte global header followed by
//! 16-byte per-packet record headers; see the Wireshark wiki's
//! "Development/LibpcapFileFormat" page.
//!
//! Beyond the file format, the crate owns the monitor's **ingestion
//! seam**: [`RecordSource`] abstracts "where packets come from" behind a
//! pull-based one-record-at-a-time contract, with three backends — the
//! file reader ([`PcapReader`], via [`source::file`]), a fixed-capacity
//! SPSC in-memory ring ([`ring::channel`]) that lets a producer hand
//! frames to the monitor with no serialize/parse round trip, and (behind
//! the `raw-socket` feature) a zero-dependency Linux `AF_PACKET` reader
//! for live interfaces.
//!
//! # Example
//!
//! ```
//! use pcapio::{PcapWriter, PcapReader, TsPrecision};
//!
//! let mut buf = Vec::new();
//! let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
//! w.write_packet(1_549_497_600_000_000_123, b"frame bytes", None).unwrap();
//! drop(w);
//!
//! let mut r = PcapReader::new(&buf[..]).unwrap();
//! let rec = r.next_packet().unwrap().unwrap();
//! assert_eq!(rec.ts_nanos, 1_549_497_600_000_000_123);
//! assert_eq!(rec.data, b"frame bytes");
//! ```

// The raw-socket backend needs direct syscalls (the workspace carries no
// libc), so `forbid` relaxes to `deny` + a module-scoped allow when that
// feature is on; every other configuration stays forbid-clean.
#![cfg_attr(not(feature = "raw-socket"), forbid(unsafe_code))]
#![cfg_attr(feature = "raw-socket", deny(unsafe_code))]
#![warn(missing_docs)]

use std::fmt;
use std::io::{self, Read, Write};

pub mod ring;
#[cfg(feature = "raw-socket")]
pub mod raw;
pub mod source;

pub use ring::{Backpressure, RingSink, RingSource};
pub use source::{RecordSource, SourceHeader};

/// Magic number for microsecond-precision captures.
pub const MAGIC_MICRO: u32 = 0xA1B2_C3D4;
/// Magic number for nanosecond-precision captures.
pub const MAGIC_NANO: u32 = 0xA1B2_3C4D;
/// Link type for Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Size of the global file header.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Size of each per-packet record header.
pub const RECORD_HEADER_LEN: usize = 16;

/// Timestamp precision of a capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsPrecision {
    /// Microseconds (the common default).
    Micro,
    /// Nanoseconds.
    Nano,
}

/// Errors from reading a capture file.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number was not a known pcap magic.
    BadMagic(u32),
    /// Unsupported major/minor version.
    BadVersion(u16, u16),
    /// A record claimed more captured bytes than its original length,
    /// or exceeded the file's snaplen by an implausible margin.
    BadRecord {
        /// Captured length from the record header.
        incl_len: u32,
        /// Original length from the record header.
        orig_len: u32,
    },
    /// File ended in the middle of a structure.
    TruncatedFile,
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "unknown pcap magic {m:#010x}"),
            PcapError::BadVersion(maj, min) => write!(f, "unsupported pcap version {maj}.{min}"),
            PcapError::BadRecord { incl_len, orig_len } => {
                write!(f, "implausible record: incl_len {incl_len}, orig_len {orig_len}")
            }
            PcapError::TruncatedFile => write!(f, "capture file truncated"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// One captured packet as stored in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Timestamp in nanoseconds since the epoch (converted from the file's
    /// native precision).
    pub ts_nanos: u64,
    /// Length the packet had on the wire.
    pub orig_len: u32,
    /// Bytes actually stored (at most snaplen).
    pub data: Vec<u8>,
}

/// A borrowed view of one captured packet.
///
/// Returned by [`PcapReader::next_record`]: `data` points into the
/// reader's internal buffer, which is overwritten by the next read. This
/// is the zero-copy hot path — one buffer serves the whole capture instead
/// of one `Vec` per frame. Call [`RecordRef::to_owned`] only where a
/// record must outlive the next read (e.g. the fault-rewrite seam).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef<'a> {
    /// Timestamp in nanoseconds since the epoch.
    pub ts_nanos: u64,
    /// Length the packet had on the wire.
    pub orig_len: u32,
    /// Bytes actually stored (at most snaplen), valid until the next read.
    pub data: &'a [u8],
}

impl RecordRef<'_> {
    /// Copy into an owned [`PcapRecord`] (the owned fallback for
    /// consumers that must hold records across reads).
    pub fn to_owned(&self) -> PcapRecord {
        PcapRecord {
            ts_nanos: self.ts_nanos,
            orig_len: self.orig_len,
            data: self.data.to_vec(), // owned-fallback: leaves the zero-copy path by design
        }
    }
}

/// Streaming pcap writer.
///
/// Writes the global header on construction and one record per
/// [`write_packet`](PcapWriter::write_packet) call, truncating stored bytes
/// at the configured snaplen (the recorded `orig_len` is preserved).
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    precision: TsPrecision,
    packets_written: u64,
    bytes_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer with the given snaplen and timestamp precision and
    /// emit the global header. Always writes native little-endian captures
    /// (the reader handles both orders).
    pub fn new(mut out: W, snaplen: u32, precision: TsPrecision) -> io::Result<PcapWriter<W>> {
        let magic = match precision {
            TsPrecision::Micro => MAGIC_MICRO,
            TsPrecision::Nano => MAGIC_NANO,
        };
        out.write_all(&magic.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, snaplen, precision, packets_written: 0, bytes_written: 0 })
    }

    /// Append one packet. `ts_nanos` is nanoseconds since the epoch;
    /// `frame` holds the bytes available for storage; `orig_len` overrides
    /// the on-wire length when the frame is already a partial view (pass
    /// `None` when `frame` is the complete packet).
    pub fn write_packet(&mut self, ts_nanos: u64, frame: &[u8], orig_len: Option<u32>) -> io::Result<()> {
        let stored = frame.len().min(self.snaplen as usize);
        let orig = orig_len.unwrap_or(frame.len() as u32);
        debug_assert!(orig as usize >= frame.len());
        let (secs, subsec) = match self.precision {
            TsPrecision::Micro => (ts_nanos / 1_000_000_000, (ts_nanos % 1_000_000_000) / 1_000),
            TsPrecision::Nano => (ts_nanos / 1_000_000_000, ts_nanos % 1_000_000_000),
        };
        self.out.write_all(&(secs as u32).to_le_bytes())?;
        self.out.write_all(&(subsec as u32).to_le_bytes())?;
        self.out.write_all(&(stored as u32).to_le_bytes())?;
        self.out.write_all(&orig.to_le_bytes())?;
        self.out.write_all(&frame[..stored])?;
        self.packets_written += 1;
        self.bytes_written += stored as u64;
        Ok(())
    }

    /// Number of records written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Total record payload bytes written so far (excluding headers).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Writer-side counters as an obs snapshot (`capture.frames_written`,
    /// `capture.bytes_written`).
    pub fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        m.add("capture.frames_written", self.packets_written);
        m.add("capture.bytes_written", self.bytes_written);
        m
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming pcap reader.
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    precision: TsPrecision,
    snaplen: u32,
    records_read: u64,
    bytes_read: u64,
    records_rejected: u64,
    /// Reusable record body buffer backing [`PcapReader::next_record`];
    /// grows to the largest record seen and is never shrunk.
    buf: Vec<u8>,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header, auto-detecting byte order and
    /// timestamp precision from the magic number.
    pub fn new(mut input: R) -> Result<PcapReader<R>, PcapError> {
        let mut header = [0u8; GLOBAL_HEADER_LEN];
        input.read_exact(&mut header).map_err(|_| PcapError::TruncatedFile)?;
        let magic_raw = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let (swapped, precision) = match magic_raw {
            MAGIC_MICRO => (false, TsPrecision::Micro),
            MAGIC_NANO => (false, TsPrecision::Nano),
            m if m.swap_bytes() == MAGIC_MICRO => (true, TsPrecision::Micro),
            m if m.swap_bytes() == MAGIC_NANO => (true, TsPrecision::Nano),
            other => return Err(PcapError::BadMagic(other)),
        };
        let rd16 = |i: usize| {
            let v = u16::from_le_bytes([header[i], header[i + 1]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let rd32 = |i: usize| {
            let v = u32::from_le_bytes([header[i], header[i + 1], header[i + 2], header[i + 3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let (major, minor) = (rd16(4), rd16(6));
        if major != 2 {
            return Err(PcapError::BadVersion(major, minor));
        }
        Ok(PcapReader {
            input,
            swapped,
            precision,
            snaplen: rd32(16),
            records_read: 0,
            bytes_read: 0,
            records_rejected: 0,
            buf: Vec::new(),
        })
    }

    /// The file's snaplen.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Records successfully read so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Record payload bytes successfully read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Records rejected so far (implausible header or truncated body).
    pub fn records_rejected(&self) -> u64 {
        self.records_rejected
    }

    /// Reader-side counters as an obs snapshot (`capture.frames_read`,
    /// `capture.bytes_read`, `capture.frames_rejected`).
    pub fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        m.add("capture.frames_read", self.records_read);
        m.add("capture.bytes_read", self.bytes_read);
        m.add("capture.frames_rejected", self.records_rejected);
        m
    }

    /// The file's timestamp precision.
    pub fn precision(&self) -> TsPrecision {
        self.precision
    }

    /// Read the next record as a borrowed view over the reader's internal
    /// buffer, or `Ok(None)` at a clean end of file.
    ///
    /// The returned slice is valid until the next call on this reader;
    /// use [`RecordRef::to_owned`] (or [`PcapReader::next_packet`]) when a
    /// record must be kept across reads.
    pub fn next_record(&mut self) -> Result<Option<RecordRef<'_>>, PcapError> {
        let mut rh = [0u8; RECORD_HEADER_LEN];
        match self.input.read_exact(&mut rh) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        let rd32 = |i: usize| {
            let v = u32::from_le_bytes([rh[i], rh[i + 1], rh[i + 2], rh[i + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let secs = rd32(0) as u64;
        let subsec = rd32(4) as u64;
        let incl_len = rd32(8);
        let orig_len = rd32(12);
        if incl_len > orig_len || incl_len > self.snaplen.saturating_add(65535) {
            self.records_rejected += 1;
            return Err(PcapError::BadRecord { incl_len, orig_len });
        }
        let ts_nanos = match self.precision {
            TsPrecision::Micro => secs * 1_000_000_000 + subsec * 1_000,
            TsPrecision::Nano => secs * 1_000_000_000 + subsec,
        };
        let n = incl_len as usize;
        if self.buf.len() < n {
            // Zero-fill only on growth; steady state re-reads in place.
            self.buf.resize(n, 0);
        }
        self.input.read_exact(&mut self.buf[..n]).map_err(|_| {
            self.records_rejected += 1;
            PcapError::TruncatedFile
        })?;
        self.records_read += 1;
        self.bytes_read += n as u64;
        Ok(Some(RecordRef { ts_nanos, orig_len, data: &self.buf[..n] }))
    }

    /// Read the next record into an owned [`PcapRecord`], or `Ok(None)` at
    /// a clean end of file. Allocates per record; prefer
    /// [`PcapReader::next_record`] on hot paths.
    pub fn next_packet(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        Ok(self.next_record()?.map(|r| r.to_owned()))
    }

    /// Iterate over all remaining records.
    pub fn records(self) -> Records<R> {
        Records { reader: self }
    }
}

/// Iterator adapter over a [`PcapReader`].
pub struct Records<R: Read> {
    reader: PcapReader<R>,
}

impl<R: Read> Records<R> {
    /// The wrapped reader (for its counters).
    pub fn reader(&self) -> &PcapReader<R> {
        &self.reader
    }
}

impl<R: Read> Iterator for Records<R> {
    type Item = Result<PcapRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_packet().transpose()
    }
}

/// Iterator adapter that groups a record stream into fixed time windows
/// ("epochs") so downstream consumers can process a capture in bounded
/// memory: only one window's records are materialised at a time.
///
/// Epoch `k` covers timestamps `[k * window, (k + 1) * window)` nanoseconds.
/// The epoch index is clamped monotone — a record whose timestamp falls
/// before the current epoch (out-of-order input) is kept in the current
/// epoch rather than opening an earlier one, so epochs are always yielded
/// in increasing order even on disordered captures. A `window` of zero
/// means "no windowing": the whole capture becomes a single epoch.
///
/// Read errors end the stream: the failing record is dropped (it is
/// already counted in the reader's `capture.frames_rejected`) and the
/// records buffered so far are yielded as the final epoch.
pub struct Epochs<R: Read> {
    records: Records<R>,
    window_nanos: u64,
    /// Lookahead: the first record of the *next* epoch, read while closing
    /// the current one.
    pending: Option<PcapRecord>,
    current_epoch: u64,
    started: bool,
    done: bool,
}

/// One time window's worth of records, with its epoch index.
#[derive(Debug)]
pub struct Epoch {
    /// Window index: covers `[index * window, (index + 1) * window)` ns.
    pub index: u64,
    /// Records whose (monotone-clamped) timestamps fall in this window,
    /// in capture order.
    pub records: Vec<PcapRecord>,
}

impl Epoch {
    /// Exclusive upper bound of this window in nanoseconds, or `None` for
    /// the unwindowed (window = 0) single epoch.
    pub fn end_nanos(&self, window_nanos: u64) -> Option<u64> {
        if window_nanos == 0 {
            None
        } else {
            Some((self.index + 1).saturating_mul(window_nanos))
        }
    }
}

impl<R: Read> Epochs<R> {
    /// Group `records` into windows of `window_nanos` nanoseconds
    /// (0 = single epoch).
    pub fn new(records: Records<R>, window_nanos: u64) -> Epochs<R> {
        Epochs {
            records,
            window_nanos,
            pending: None,
            current_epoch: 0,
            started: false,
            done: false,
        }
    }

    /// The wrapped reader (for its counters).
    pub fn reader(&self) -> &PcapReader<R> {
        self.records.reader()
    }

    /// The window size this chunker was built with.
    pub fn window_nanos(&self) -> u64 {
        self.window_nanos
    }

    fn epoch_of(&self, ts_nanos: u64) -> u64 {
        if self.window_nanos == 0 {
            0
        } else {
            // Clamp monotone: never step backwards on disordered input.
            (ts_nanos / self.window_nanos).max(self.current_epoch)
        }
    }
}

impl<R: Read> Iterator for Epochs<R> {
    type Item = Epoch;

    fn next(&mut self) -> Option<Epoch> {
        if self.done {
            return None;
        }
        let mut batch = Vec::new();
        if let Some(first) = self.pending.take() {
            self.current_epoch = self.epoch_of(first.ts_nanos);
            batch.push(first);
        }
        loop {
            match self.records.next() {
                Some(Ok(rec)) => {
                    let e = self.epoch_of(rec.ts_nanos);
                    if !self.started && batch.is_empty() {
                        // First record of the capture opens its own epoch.
                        self.current_epoch = e;
                        self.started = true;
                        batch.push(rec);
                    } else if e == self.current_epoch {
                        batch.push(rec);
                    } else {
                        self.pending = Some(rec);
                        return Some(Epoch { index: self.current_epoch, records: batch });
                    }
                    self.started = true;
                }
                Some(Err(_)) | None => {
                    self.done = true;
                    if batch.is_empty() && !self.started {
                        return None;
                    }
                    return Some(Epoch { index: self.current_epoch, records: batch });
                }
            }
        }
    }
}

/// Merge two time-sorted captures into one (the `mergecap` operation):
/// records are interleaved by timestamp, ties favouring the first input.
/// The output uses nanosecond precision and the larger of the two
/// snaplens. Inputs must themselves be time-sorted; out-of-order inputs
/// produce an out-of-order output rather than an error (as mergecap does).
pub fn merge<R1: Read, R2: Read, W: Write>(a: R1, b: R2, out: W) -> Result<u64, PcapError> {
    let ra = PcapReader::new(a)?;
    let rb = PcapReader::new(b)?;
    let snaplen = ra.snaplen().max(rb.snaplen());
    let mut w = PcapWriter::new(out, snaplen, TsPrecision::Nano)?;
    let mut ia = ra.records();
    let mut ib = rb.records();
    let mut next_a = ia.next().transpose()?;
    let mut next_b = ib.next().transpose()?;
    loop {
        let take_a = match (&next_a, &next_b) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(x), Some(y)) => x.ts_nanos <= y.ts_nanos,
        };
        let rec = if take_a {
            std::mem::replace(&mut next_a, ia.next().transpose()?).unwrap()
        } else {
            std::mem::replace(&mut next_b, ib.next().transpose()?).unwrap()
        };
        w.write_packet(rec.ts_nanos, &rec.data, Some(rec.orig_len))?;
    }
    let n = w.packets_written();
    w.into_inner()?;
    Ok(n)
}

/// A stateful record-to-records transform for [`rewrite`].
///
/// Implemented for any `FnMut(PcapRecord) -> Vec<PcapRecord>` when no
/// end-of-stream state needs draining.
pub trait RecordTransform {
    /// Map one input record to zero or more output records.
    fn apply(&mut self, rec: PcapRecord) -> Vec<PcapRecord>;

    /// Called once after the last input record so stateful transforms
    /// (e.g. a reorder holdback) can drain.
    fn flush(&mut self) -> Vec<PcapRecord> {
        Vec::new()
    }
}

impl<F: FnMut(PcapRecord) -> Vec<PcapRecord>> RecordTransform for F {
    fn apply(&mut self, rec: PcapRecord) -> Vec<PcapRecord> {
        self(rec)
    }
}

/// Copy a capture record-by-record through a caller-supplied transform.
///
/// Each input record maps to zero or more output records (drop, modify,
/// duplicate); [`RecordTransform::flush`] runs once after the last input
/// record. The output keeps the input's snaplen and is written at
/// nanosecond precision. Returns the number of records written.
///
/// This is the streaming seam the fault-injection harness plugs into: the
/// capture never has to be fully materialised to be corrupted.
pub fn rewrite<R, W, T>(input: R, out: W, transform: &mut T) -> Result<u64, PcapError>
where
    R: Read,
    W: Write,
    T: RecordTransform + ?Sized,
{
    rewrite_observed(input, out, transform, &mut xkit::obs::Metrics::new())
}

/// [`rewrite`], additionally folding the reader/writer counters into
/// `obs` (`capture.frames_read`, `capture.bytes_read`,
/// `capture.frames_rejected`, `capture.frames_written`,
/// `capture.bytes_written`). On error the counters observed up to the
/// failure are still merged.
pub fn rewrite_observed<R, W, T>(
    input: R,
    out: W,
    transform: &mut T,
    obs: &mut xkit::obs::Metrics,
) -> Result<u64, PcapError>
where
    R: Read,
    W: Write,
    T: RecordTransform + ?Sized,
{
    let mut reader = PcapReader::new(input)?;
    let mut w = PcapWriter::new(out, reader.snaplen(), TsPrecision::Nano)?;
    let mut run = |reader: &mut PcapReader<R>, w: &mut PcapWriter<W>| -> Result<(), PcapError> {
        while let Some(rec) = reader.next_packet()? {
            for r in transform.apply(rec) {
                w.write_packet(r.ts_nanos, &r.data, Some(r.orig_len))?;
            }
        }
        for r in transform.flush() {
            w.write_packet(r.ts_nanos, &r.data, Some(r.orig_len))?;
        }
        Ok(())
    };
    let result = run(&mut reader, &mut w);
    obs.merge(&reader.metrics());
    obs.merge(&w.metrics());
    result?;
    let n = w.packets_written();
    w.into_inner()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_capture(precision: TsPrecision, snaplen: u32, frames: &[(&[u8], Option<u32>)]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, snaplen, precision).unwrap();
        for (i, (frame, orig)) in frames.iter().enumerate() {
            w.write_packet(1_000_000_000 + i as u64 * 1_000, frame, *orig).unwrap();
        }
        assert_eq!(w.packets_written(), frames.len() as u64);
        buf
    }

    #[test]
    fn round_trip_nano() {
        let buf = write_capture(TsPrecision::Nano, 65535, &[(b"abc", None), (b"defgh", None)]);
        let r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.precision(), TsPrecision::Nano);
        let recs: Vec<_> = r.records().map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].data, b"abc");
        assert_eq!(recs[0].ts_nanos, 1_000_000_000);
        assert_eq!(recs[1].ts_nanos, 1_000_001_000);
    }

    #[test]
    fn micro_precision_rounds_down() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65535, TsPrecision::Micro).unwrap();
        w.write_packet(1_000_000_999, b"x", None).unwrap();
        drop(w);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let rec = r.next_packet().unwrap().unwrap();
        // 999 ns rounds down to 0 µs.
        assert_eq!(rec.ts_nanos, 1_000_000_000);
    }

    #[test]
    fn snaplen_truncates_but_preserves_orig_len() {
        let buf = write_capture(TsPrecision::Nano, 4, &[(b"0123456789", None)]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let rec = r.next_packet().unwrap().unwrap();
        assert_eq!(rec.data, b"0123");
        assert_eq!(rec.orig_len, 10);
    }

    #[test]
    fn explicit_orig_len_for_virtual_payload() {
        let buf = write_capture(TsPrecision::Nano, 96, &[(b"hdrs", Some(1500))]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let rec = r.next_packet().unwrap().unwrap();
        assert_eq!(rec.data, b"hdrs");
        assert_eq!(rec.orig_len, 1500);
    }

    #[test]
    fn byte_swapped_capture_reads_back() {
        // Hand-build a big-endian header + one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICRO.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&96u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // secs
        buf.extend_from_slice(&5u32.to_be_bytes()); // usecs
        buf.extend_from_slice(&3u32.to_be_bytes()); // incl
        buf.extend_from_slice(&3u32.to_be_bytes()); // orig
        buf.extend_from_slice(b"xyz");
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.snaplen(), 96);
        let rec = r.next_packet().unwrap().unwrap();
        assert_eq!(rec.ts_nanos, 7_000_005_000);
        assert_eq!(rec.data, b"xyz");
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; GLOBAL_HEADER_LEN];
        assert!(matches!(PcapReader::new(&buf[..]), Err(PcapError::BadMagic(0))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = write_capture(TsPrecision::Micro, 96, &[]);
        buf[4] = 9; // version major
        assert!(matches!(PcapReader::new(&buf[..]), Err(PcapError::BadVersion(9, 4))));
    }

    #[test]
    fn truncated_global_header_rejected() {
        let buf = [0u8; 10];
        assert!(matches!(PcapReader::new(&buf[..]), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn truncated_record_body_rejected() {
        let mut buf = write_capture(TsPrecision::Nano, 96, &[(b"abcdef", None)]);
        buf.truncate(buf.len() - 2);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::TruncatedFile)));
    }

    #[test]
    fn record_with_incl_exceeding_orig_rejected() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
        w.write_packet(0, b"abc", None).unwrap();
        drop(w);
        // Corrupt orig_len (last 4 bytes of the record header) to 1.
        let off = GLOBAL_HEADER_LEN + 12;
        buf[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::BadRecord { .. })));
    }

    #[test]
    fn empty_capture_yields_no_records() {
        let buf = write_capture(TsPrecision::Micro, 96, &[]);
        let r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.records().count(), 0);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mk = |stamps: &[u64], tag: u8| {
            let mut buf = Vec::new();
            let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
            for ts in stamps {
                w.write_packet(*ts, &[tag, *ts as u8], None).unwrap();
            }
            buf
        };
        let a = mk(&[10, 30, 50], 0xAA);
        let b = mk(&[20, 30, 60, 70], 0xBB);
        let mut merged = Vec::new();
        let n = merge(&a[..], &b[..], &mut merged).unwrap();
        assert_eq!(n, 7);
        let recs: Vec<_> = PcapReader::new(&merged[..]).unwrap().records().map(|r| r.unwrap()).collect();
        let stamps: Vec<u64> = recs.iter().map(|r| r.ts_nanos).collect();
        assert_eq!(stamps, vec![10, 20, 30, 30, 50, 60, 70]);
        // The tie at 30 favours input A.
        assert_eq!(recs[2].data[0], 0xAA);
        assert_eq!(recs[3].data[0], 0xBB);
    }

    #[test]
    fn merge_with_empty_capture_is_identity() {
        let mut a = Vec::new();
        let mut w = PcapWriter::new(&mut a, 96, TsPrecision::Nano).unwrap();
        w.write_packet(5, b"x", None).unwrap();
        drop(w);
        let empty = {
            let mut e = Vec::new();
            PcapWriter::new(&mut e, 96, TsPrecision::Nano).unwrap();
            e
        };
        let mut merged = Vec::new();
        assert_eq!(merge(&a[..], &empty[..], &mut merged).unwrap(), 1);
        let recs: Vec<_> = PcapReader::new(&merged[..]).unwrap().records().map(|r| r.unwrap()).collect();
        assert_eq!(recs[0].data, b"x");
    }

    #[test]
    fn rewrite_identity_preserves_records() {
        let buf = write_capture(TsPrecision::Nano, 96, &[(b"abc", None), (b"defgh", Some(1500))]);
        let mut out = Vec::new();
        let n = rewrite(&buf[..], &mut out, &mut |r: PcapRecord| vec![r]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(out, buf, "identity rewrite of a nano capture is byte-identical");
    }

    #[test]
    fn rewrite_can_drop_duplicate_and_flush() {
        struct Holdback(Option<PcapRecord>);
        impl RecordTransform for Holdback {
            fn apply(&mut self, r: PcapRecord) -> Vec<PcapRecord> {
                match r.data[0] {
                    b'a' => Vec::new(),         // drop
                    b'b' => vec![r.clone(), r], // duplicate
                    _ => {
                        self.0 = Some(r); // hold to flush
                        Vec::new()
                    }
                }
            }
            fn flush(&mut self) -> Vec<PcapRecord> {
                self.0.take().into_iter().collect()
            }
        }
        let buf = write_capture(TsPrecision::Nano, 96, &[(b"a", None), (b"b", None), (b"c", None)]);
        let mut out = Vec::new();
        let n = rewrite(&buf[..], &mut out, &mut Holdback(None)).unwrap();
        assert_eq!(n, 3);
        let recs: Vec<_> = PcapReader::new(&out[..]).unwrap().records().map(|r| r.unwrap()).collect();
        let bytes: Vec<u8> = recs.iter().map(|r| r.data[0]).collect();
        assert_eq!(bytes, vec![b'b', b'b', b'c']);
    }

    #[test]
    fn read_write_counters_account_for_every_byte() {
        let buf = write_capture(TsPrecision::Nano, 96, &[(b"abc", None), (b"defgh", None)]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        while let Some(_) = r.next_packet().unwrap() {}
        assert_eq!(r.records_read(), 2);
        assert_eq!(r.bytes_read(), 8);
        assert_eq!(r.records_rejected(), 0);
        let m = r.metrics();
        assert_eq!(m.counter("capture.frames_read"), 2);
        assert_eq!(m.counter("capture.bytes_read"), 8);

        let mut obs = xkit::obs::Metrics::new();
        let mut out = Vec::new();
        let n = rewrite_observed(&buf[..], &mut out, &mut |r: PcapRecord| vec![r], &mut obs)
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(obs.counter("capture.frames_read"), 2);
        assert_eq!(obs.counter("capture.frames_written"), 2);
        assert_eq!(obs.counter("capture.bytes_written"), 8);
    }

    #[test]
    fn rejected_records_are_counted() {
        let mut buf = write_capture(TsPrecision::Nano, 96, &[(b"abcdef", None)]);
        buf.truncate(buf.len() - 2);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(r.next_packet().is_err());
        assert_eq!(r.records_rejected(), 1);
        assert_eq!(r.metrics().counter("capture.frames_rejected"), 1);
    }

    fn capture_with_stamps(stamps: &[u64]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
        for ts in stamps {
            w.write_packet(*ts, &[*ts as u8], None).unwrap();
        }
        buf
    }

    #[test]
    fn epochs_split_on_window_boundaries() {
        // Window of 10 ns: [0,10), [10,20), ...
        let buf = capture_with_stamps(&[1, 5, 9, 10, 19, 35]);
        let epochs: Vec<_> =
            Epochs::new(PcapReader::new(&buf[..]).unwrap().records(), 10).collect();
        let shape: Vec<(u64, usize)> = epochs.iter().map(|e| (e.index, e.records.len())).collect();
        assert_eq!(shape, vec![(0, 3), (1, 2), (3, 1)]);
        assert_eq!(epochs[1].records[0].ts_nanos, 10);
        assert_eq!(epochs[0].end_nanos(10), Some(10));
    }

    #[test]
    fn epochs_zero_window_is_single_epoch() {
        let buf = capture_with_stamps(&[1, 500, 1_000_000]);
        let epochs: Vec<_> =
            Epochs::new(PcapReader::new(&buf[..]).unwrap().records(), 0).collect();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].index, 0);
        assert_eq!(epochs[0].records.len(), 3);
        assert_eq!(epochs[0].end_nanos(0), None);
    }

    #[test]
    fn epochs_clamp_monotone_on_disordered_input() {
        // 25 opens epoch 2; the out-of-order 4 stays in epoch 2 rather
        // than reopening epoch 0.
        let buf = capture_with_stamps(&[25, 4, 31]);
        let epochs: Vec<_> =
            Epochs::new(PcapReader::new(&buf[..]).unwrap().records(), 10).collect();
        let shape: Vec<(u64, usize)> = epochs.iter().map(|e| (e.index, e.records.len())).collect();
        assert_eq!(shape, vec![(2, 2), (3, 1)]);
    }

    #[test]
    fn epochs_empty_capture_yields_nothing() {
        let buf = capture_with_stamps(&[]);
        let mut epochs = Epochs::new(PcapReader::new(&buf[..]).unwrap().records(), 10);
        assert!(epochs.next().is_none());
        assert_eq!(epochs.reader().records_read(), 0);
    }

    #[test]
    fn epochs_concatenation_is_lossless() {
        let stamps: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let buf = capture_with_stamps(&stamps);
        let all: Vec<u64> = Epochs::new(PcapReader::new(&buf[..]).unwrap().records(), 64)
            .flat_map(|e| e.records.into_iter().map(|r| r.ts_nanos))
            .collect();
        assert_eq!(all, stamps);
    }

    #[test]
    fn next_record_borrows_and_agrees_with_next_packet() {
        let frames: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; (i as usize % 17) + 1]).collect();
        let refs: Vec<(&[u8], Option<u32>)> = frames.iter().map(|f| (f.as_slice(), None)).collect();
        let buf = write_capture(TsPrecision::Nano, 65535, &refs);
        let mut borrowed = PcapReader::new(&buf[..]).unwrap();
        let mut owned = PcapReader::new(&buf[..]).unwrap();
        loop {
            let o = owned.next_packet().unwrap();
            match borrowed.next_record().unwrap() {
                Some(r) => {
                    let o = o.expect("owned reader must agree");
                    assert_eq!(r.ts_nanos, o.ts_nanos);
                    assert_eq!(r.orig_len, o.orig_len);
                    assert_eq!(r.data, &o.data[..]);
                    assert_eq!(r.to_owned(), o);
                }
                None => {
                    assert!(o.is_none());
                    break;
                }
            }
        }
        assert_eq!(borrowed.records_read(), 40);
        assert_eq!(borrowed.bytes_read(), owned.bytes_read());
    }

    #[test]
    fn next_record_shorter_frame_after_longer_is_exact() {
        // The internal buffer only grows; a short record after a long one
        // must still be sliced to its own length.
        let buf = write_capture(TsPrecision::Nano, 65535, &[(b"0123456789", None), (b"ab", None)]);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().data, b"0123456789");
        assert_eq!(r.next_record().unwrap().unwrap().data, b"ab");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn iterator_collects_all() {
        let frames: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; (i as usize % 32) + 1]).collect();
        let refs: Vec<(&[u8], Option<u32>)> = frames.iter().map(|f| (f.as_slice(), None)).collect();
        let buf = write_capture(TsPrecision::Nano, 65535, &refs);
        let recs: Vec<_> = PcapReader::new(&buf[..]).unwrap().records().map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 100);
        for (rec, f) in recs.iter().zip(&frames) {
            assert_eq!(&rec.data, f);
        }
    }
}
