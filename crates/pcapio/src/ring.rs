//! Fixed-capacity SPSC in-memory ring: the zero-round-trip backend of
//! the ingestion seam.
//!
//! [`channel`] returns a producer half ([`RingSink`]) and a consumer
//! half ([`RingSource`], a [`RecordSource`]). The producer frames each
//! record as a 16-byte header (timestamp, on-wire length, stored length)
//! plus its payload — snaplen-truncated exactly like
//! [`crate::PcapWriter::write_packet`] — into a circular byte buffer of
//! fixed capacity. Records wrap around the buffer edge at byte
//! granularity; the consumer reassembles split records into its own
//! reusable read buffer, so a [`RecordRef`] borrowed from the ring obeys
//! the same "valid until the next read" contract as the file reader's.
//!
//! **Backpressure** is explicit and chosen at construction:
//!
//! * [`Backpressure::Block`] — a full ring parks the producer until the
//!   consumer frees space. Nothing is dropped, so the consumed sequence
//!   equals the produced sequence *regardless of thread scheduling*:
//!   a seeded producer yields bit-identical downstream output every run.
//! * [`Backpressure::DropNewest`] — a full ring rejects the incoming
//!   record and counts it in `dropped`. Which records drop depends on
//!   the producer/consumer interleaving, so this mode is deterministic
//!   exactly when the interleaving is (e.g. the single-threaded seeded
//!   schedules the property suite drives); across free-running threads
//!   only the conservation law below is guaranteed.
//!
//! **Conservation**: every record offered to the ring is counted exactly
//! once — `produced = consumed + dropped + pending`, where `pending` is
//! what currently sits in the buffer. After the producer closes and the
//! consumer drains to `Ok(None)`, `produced = consumed + dropped` holds
//! exactly. A record that can never fit (framed size exceeds the ring
//! capacity) is dropped under either policy rather than deadlocking a
//! blocking producer.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::source::{RecordSource, SourceHeader};
use crate::{PcapError, RecordRef, LINKTYPE_ETHERNET};

/// Bytes of framing per record in the ring: timestamp (8) + on-wire
/// length (4) + stored length (4).
pub const FRAME_HEADER_LEN: usize = 16;

/// What a full ring does to the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Park the producer until space frees up; nothing is ever dropped.
    Block,
    /// Reject the incoming record and count it in `dropped`.
    DropNewest,
}

/// Outcome of a non-blocking [`RingSink::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The record is in the ring (counted in `produced`).
    Enqueued,
    /// The record was rejected — ring full under
    /// [`Backpressure::DropNewest`], oversized for the capacity, or the
    /// consumer is gone (counted in `produced` and `dropped`).
    Dropped,
    /// Ring full under [`Backpressure::Block`]: nothing was counted; the
    /// caller should retry after the consumer makes progress.
    WouldBlock,
}

struct State {
    /// Circular byte storage; `head` is the read offset, `len` the bytes
    /// in use. Frames may wrap the buffer edge at byte granularity.
    buf: Box<[u8]>,
    head: usize,
    len: usize,
    produced: u64,
    consumed: u64,
    dropped: u64,
    tx_closed: bool,
    rx_closed: bool,
}

impl State {
    fn free(&self) -> usize {
        self.buf.len() - self.len
    }

    /// Copy `src` in at the tail, wrapping at the edge.
    fn write_bytes(&mut self, src: &[u8]) {
        let cap = self.buf.len();
        let tail = (self.head + self.len) % cap;
        let first = src.len().min(cap - tail);
        self.buf[tail..tail + first].copy_from_slice(&src[..first]);
        self.buf[..src.len() - first].copy_from_slice(&src[first..]);
        self.len += src.len();
    }

    /// Copy `dst.len()` bytes out from the head, wrapping at the edge.
    fn read_bytes(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        let cap = self.buf.len();
        let first = n.min(cap - self.head);
        dst[..first].copy_from_slice(&self.buf[self.head..self.head + first]);
        dst[first..].copy_from_slice(&self.buf[..n - first]);
        self.head = (self.head + n) % cap;
        self.len -= n;
    }
}

struct Shared {
    state: Mutex<State>,
    /// Producer waits here for free space (Block policy).
    space: Condvar,
    /// Consumer waits here for data.
    data: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking peer must not cascade: the state itself is always
        // consistent (mutations happen fully inside the lock).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Build a ring of `capacity` bytes with the given snaplen and
/// backpressure policy, returning the producer and consumer halves.
///
/// `capacity` bounds the framed bytes in flight (each record costs
/// [`FRAME_HEADER_LEN`] + its stored length); a record whose framed size
/// exceeds `capacity` outright is dropped-with-counter under either
/// policy.
pub fn channel(capacity: usize, snaplen: u32, policy: Backpressure) -> (RingSink, RingSource) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: vec![0u8; capacity.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
            produced: 0,
            consumed: 0,
            dropped: 0,
            tx_closed: false,
            rx_closed: false,
        }),
        space: Condvar::new(),
        data: Condvar::new(),
    });
    let sink = RingSink { shared: Arc::clone(&shared), policy, snaplen, flight: None };
    let source = RingSource {
        shared,
        buf: Vec::new(),
        snaplen,
        frames_read: 0,
        bytes_read: 0,
    };
    (sink, source)
}

/// Producer half of the ring.
///
/// Dropping the sink closes the stream: once the consumer drains what
/// remains, [`RingSource::next`] returns `Ok(None)`.
pub struct RingSink {
    shared: Arc<Shared>,
    policy: Backpressure,
    snaplen: u32,
    flight: Option<xkit::obs::FlightRecorder>,
}

impl RingSink {
    /// The snaplen every stored record is truncated to.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Attach a flight recorder; each producer park episode (a full ring
    /// under [`Backpressure::Block`]) records one `backpressure.stall`
    /// event. Recording happens on the already-parked path only, so the
    /// uncontended push stays recorder-free.
    pub fn set_flight(&mut self, flight: xkit::obs::FlightRecorder) {
        self.flight = Some(flight);
    }

    /// Offer one record without blocking. Counters move only on
    /// [`PushOutcome::Enqueued`] / [`PushOutcome::Dropped`];
    /// [`PushOutcome::WouldBlock`] leaves the record unaccounted for the
    /// caller to retry.
    pub fn try_push(&mut self, ts_nanos: u64, orig_len: u32, data: &[u8]) -> PushOutcome {
        let stored = data.len().min(self.snaplen as usize);
        let needed = FRAME_HEADER_LEN + stored;
        let mut st = self.shared.lock();
        if needed > st.buf.len() || st.rx_closed {
            st.produced += 1;
            st.dropped += 1;
            return PushOutcome::Dropped;
        }
        if st.free() < needed {
            match self.policy {
                Backpressure::Block => return PushOutcome::WouldBlock,
                Backpressure::DropNewest => {
                    st.produced += 1;
                    st.dropped += 1;
                    return PushOutcome::Dropped;
                }
            }
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[..8].copy_from_slice(&ts_nanos.to_le_bytes());
        header[8..12].copy_from_slice(&orig_len.to_le_bytes());
        header[12..16].copy_from_slice(&(stored as u32).to_le_bytes());
        st.write_bytes(&header);
        st.write_bytes(&data[..stored]);
        st.produced += 1;
        drop(st);
        self.shared.data.notify_one();
        PushOutcome::Enqueued
    }

    /// Offer one record, honouring the backpressure policy: under
    /// [`Backpressure::Block`] this parks until space frees up. Returns
    /// whether the record was enqueued (`false` means it was counted
    /// dropped: ring full under DropNewest, oversized, or consumer gone).
    pub fn push(&mut self, ts_nanos: u64, orig_len: u32, data: &[u8]) -> bool {
        loop {
            match self.try_push(ts_nanos, orig_len, data) {
                PushOutcome::Enqueued => return true,
                PushOutcome::Dropped => return false,
                PushOutcome::WouldBlock => {
                    let stored = data.len().min(self.snaplen as usize);
                    let needed = FRAME_HEADER_LEN + stored;
                    if let Some(flight) = &self.flight {
                        flight.record(
                            "backpressure.stall",
                            format!("ring full, need {needed} B"),
                            needed as f64,
                        );
                    }
                    let mut st = self.shared.lock();
                    while st.free() < needed && !st.rx_closed {
                        st = self.shared.space.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
    }

    /// Records offered so far (enqueued + dropped).
    pub fn produced(&self) -> u64 {
        self.shared.lock().produced
    }

    /// Records rejected so far (full ring under DropNewest, oversized,
    /// or consumer gone).
    pub fn dropped(&self) -> u64 {
        self.shared.lock().dropped
    }
}

impl Drop for RingSink {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.tx_closed = true;
        drop(st);
        self.shared.data.notify_all();
    }
}

/// Consumer half of the ring: a [`RecordSource`] whose records borrow
/// from a reusable read buffer, exactly like the file reader's.
pub struct RingSource {
    shared: Arc<Shared>,
    /// Reusable record body buffer; grows to the largest record seen.
    /// Wrapped (edge-split) records are reassembled here, so the
    /// borrowed view is always contiguous.
    buf: Vec<u8>,
    snaplen: u32,
    frames_read: u64,
    bytes_read: u64,
}

/// Pop one frame from the locked state into the consumer's reusable
/// buffer (a free function over disjoint fields so the guard can borrow
/// `shared` while `buf` is written). Returns `(ts_nanos, orig_len,
/// stored)`.
fn pop_frame(buf: &mut Vec<u8>, st: &mut State) -> (u64, u32, usize) {
    let mut header = [0u8; FRAME_HEADER_LEN];
    st.read_bytes(&mut header);
    let ts_nanos = u64::from_le_bytes([
        header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7],
    ]);
    let orig_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    let stored = u32::from_le_bytes([header[12], header[13], header[14], header[15]]) as usize;
    if buf.len() < stored {
        // Zero-fill only on growth; steady state re-reads in place.
        buf.resize(stored, 0);
    }
    st.read_bytes(&mut buf[..stored]);
    st.consumed += 1;
    (ts_nanos, orig_len, stored)
}

impl RingSource {
    /// Non-blocking pull: `None` when the ring is currently empty but the
    /// producer is still live (distinguish from end-of-stream via
    /// [`RingSource::is_closed`]).
    pub fn try_next(&mut self) -> Option<RecordRef<'_>> {
        let mut st = self.shared.lock();
        if st.len == 0 {
            return None;
        }
        let (ts_nanos, orig_len, stored) = pop_frame(&mut self.buf, &mut st);
        drop(st);
        self.shared.space.notify_one();
        self.frames_read += 1;
        self.bytes_read += stored as u64;
        Some(RecordRef { ts_nanos, orig_len, data: &self.buf[..stored] })
    }

    /// Whether the producer has closed its half (records may still be
    /// pending in the ring).
    pub fn is_closed(&self) -> bool {
        self.shared.lock().tx_closed
    }

    /// Records consumed so far.
    pub fn consumed(&self) -> u64 {
        self.shared.lock().consumed
    }

    /// Producer-side drop count, visible from the consumer for
    /// conservation checks.
    pub fn dropped(&self) -> u64 {
        self.shared.lock().dropped
    }

    /// Close the consumer half without dropping the source: a parked
    /// `Block`-policy producer unblocks and its subsequent pushes count
    /// as `Dropped`, so a serve daemon can abort a tenant's feed early
    /// while keeping the source around to read conservation counters.
    /// Idempotent; `Drop` does the same implicitly.
    pub fn close(&mut self) {
        let mut st = self.shared.lock();
        st.rx_closed = true;
        drop(st);
        self.shared.space.notify_all();
    }
}

impl RecordSource for RingSource {
    fn header(&self) -> SourceHeader {
        SourceHeader { link_type: LINKTYPE_ETHERNET, snaplen: self.snaplen }
    }

    /// Blocking pull: parks until a record arrives or the producer
    /// closes; `Ok(None)` once the ring is closed *and* drained.
    fn next(&mut self) -> Result<Option<RecordRef<'_>>, PcapError> {
        let mut st = self.shared.lock();
        while st.len == 0 {
            if st.tx_closed {
                return Ok(None);
            }
            st = self.shared.data.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let (ts_nanos, orig_len, stored) = pop_frame(&mut self.buf, &mut st);
        drop(st);
        self.shared.space.notify_one();
        self.frames_read += 1;
        self.bytes_read += stored as u64;
        Ok(Some(RecordRef { ts_nanos, orig_len, data: &self.buf[..stored] }))
    }

    fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        m.add("capture.frames_read", self.frames_read);
        m.add("capture.bytes_read", self.bytes_read);
        // The ring carries pre-validated records, so nothing is ever
        // rejected; the counter exists so backend snapshots stay
        // field-compatible with the file reader's.
        m.add("capture.frames_rejected", 0);
        m
    }
}

impl Drop for RingSource {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.rx_closed = true;
        drop(st);
        self.shared.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_eof_semantics() {
        let (mut tx, mut rx) = channel(1024, 65_535, Backpressure::Block);
        assert!(tx.push(1, 10, b"aaaa"));
        assert!(tx.push(2, 4, b"bb"));
        drop(tx);
        let r = rx.next().unwrap().unwrap();
        assert_eq!((r.ts_nanos, r.orig_len, r.data), (1, 10, &b"aaaa"[..]));
        let r = rx.next().unwrap().unwrap();
        assert_eq!((r.ts_nanos, r.orig_len, r.data), (2, 4, &b"bb"[..]));
        assert!(rx.next().unwrap().is_none());
        assert_eq!(rx.consumed(), 2);
        assert_eq!(rx.dropped(), 0);
    }

    #[test]
    fn snaplen_truncates_stored_bytes_only() {
        let (mut tx, mut rx) = channel(1024, 3, Backpressure::Block);
        assert!(tx.push(5, 9, b"abcdefghi"));
        drop(tx);
        let r = rx.next().unwrap().unwrap();
        assert_eq!((r.ts_nanos, r.orig_len, r.data), (5, 9, &b"abc"[..]));
        let m = RecordSource::metrics(&rx);
        assert_eq!(m.counter("capture.bytes_read"), 3);
    }

    #[test]
    fn blocked_producer_records_stall_events() {
        // Frame = 16-byte header + 16 bytes payload = 32 B; a 40 B ring
        // holds one frame, so the second push must park.
        let (mut tx, mut rx) = channel(40, 65_535, Backpressure::Block);
        let flight = xkit::obs::FlightRecorder::new(8);
        tx.set_flight(flight.clone());
        assert!(tx.push(1, 16, &[0u8; 16]));
        let producer = std::thread::spawn(move || tx.push(2, 16, &[0u8; 16]));
        // The stall event is recorded before the producer parks, so
        // waiting for it keeps the schedule deterministic.
        while flight.is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(rx.next().unwrap().unwrap().ts_nanos, 1);
        assert!(producer.join().unwrap_or(false));
        assert_eq!(rx.next().unwrap().unwrap().ts_nanos, 2);
        let events = flight.snapshot();
        assert_eq!(events[0].kind, "backpressure.stall");
        assert_eq!(events[0].value, 32.0);
    }

    #[test]
    fn oversized_record_drops_under_block_policy() {
        let (mut tx, mut rx) = channel(32, 65_535, Backpressure::Block);
        assert!(!tx.push(1, 100, &[0u8; 100]), "cannot ever fit: must drop, not deadlock");
        assert_eq!(tx.produced(), 1);
        assert_eq!(tx.dropped(), 1);
        drop(tx);
        assert!(rx.next().unwrap().is_none());
    }

    #[test]
    fn close_unblocks_the_producer_and_conserves_counts() {
        // Same one-frame geometry as the stall test: the second push
        // parks until the consumer closes its half.
        let (mut tx, mut rx) = channel(40, 65_535, Backpressure::Block);
        let flight = xkit::obs::FlightRecorder::new(8);
        tx.set_flight(flight.clone());
        assert!(tx.push(1, 16, &[0u8; 16]));
        let producer = std::thread::spawn(move || {
            let parked = tx.push(2, 16, &[0u8; 16]);
            let after_close = tx.push(3, 16, &[0u8; 16]);
            (parked, after_close, tx.produced(), tx.dropped())
        });
        while flight.is_empty() {
            std::thread::yield_now();
        }
        rx.close();
        rx.close(); // idempotent
        let (parked, after_close, produced, dropped) = producer.join().unwrap();
        assert!(!parked, "the parked push unblocks as a drop, not a deadlock");
        assert!(!after_close, "every push after close drops");
        // Conservation: produced = consumed + dropped + pending.
        assert_eq!(produced, 3);
        assert_eq!(dropped, 2);
        assert_eq!(rx.consumed() + dropped, produced - 1, "frame 1 still pending");
    }
}
