//! Live-interface backend: a zero-dependency Linux `AF_PACKET` reader
//! (feature `raw-socket`).
//!
//! The workspace carries no libc, so the four syscalls this backend
//! needs (`socket`, `bind`, `recvfrom`, `close`) are issued directly via
//! inline assembly on x86-64 and aarch64. The interface index comes from
//! sysfs (`/sys/class/net/<iface>/ifindex`), which avoids `ioctl`
//! entirely. Opening the socket requires `CAP_NET_RAW`;
//! [`RawSource::open`] surfaces the `EPERM` as a normal
//! [`PcapError::Io`] so callers (and the loopback smoke test) can skip
//! gracefully.
//!
//! Records are timestamped with [`std::time::SystemTime`] at receive
//! time — a live capture is inherently wall-clock — and truncated to the
//! configured snaplen while `orig_len` reports the full on-wire length
//! (the kernel tells us via `MSG_TRUNC`). This backend is, by nature,
//! the one non-deterministic [`RecordSource`]; everything downstream of
//! the seam treats its records identically to the other backends'.
#![allow(unsafe_code)]

use std::io;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::source::{RecordSource, SourceHeader};
use crate::{PcapError, RecordRef, LINKTYPE_ETHERNET};

#[cfg(not(target_os = "linux"))]
compile_error!("the raw-socket feature is Linux-only (AF_PACKET)");

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("the raw-socket feature supports x86_64 and aarch64 only");

/// Syscall numbers for the two supported architectures.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const SOCKET: usize = 41;
    pub const RECVFROM: usize = 45;
    pub const BIND: usize = 49;
}
#[cfg(target_arch = "aarch64")]
mod nr {
    pub const CLOSE: usize = 57;
    pub const SOCKET: usize = 198;
    pub const BIND: usize = 200;
    pub const RECVFROM: usize = 207;
}

const AF_PACKET: usize = 17;
const SOCK_RAW: usize = 3;
const SOCK_CLOEXEC: usize = 0o2000000;
/// `ETH_P_ALL` in network byte order, as `socket(2)` expects it.
const ETH_P_ALL_BE: usize = 0x0003u16.to_be() as usize;
const MSG_TRUNC: usize = 0x20;
const EINTR: i32 = 4;

/// Raw syscall entry. Returns the kernel's raw result; negative values
/// in `[-4095, -1]` are `-errno`.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: the caller passes valid pointers/lengths for the specific
    // syscall; the asm clobbers follow the x86-64 syscall ABI (rcx/r11
    // destroyed, result in rax).
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Raw syscall entry (aarch64 `svc 0` ABI: number in x8, result in x0).
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: as above; aarch64 preserves everything but x0.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

/// Fold a raw syscall return into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// Interface index from sysfs — the ioctl-free spelling of
/// `if_nametoindex(3)`.
fn ifindex(iface: &str) -> io::Result<i32> {
    if iface.is_empty() || iface.contains(['/', '\0']) {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "bad interface name"));
    }
    let raw = std::fs::read_to_string(format!("/sys/class/net/{iface}/ifindex"))?;
    raw.trim().parse::<i32>().map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "unparseable ifindex in sysfs")
    })
}

/// A live `AF_PACKET` capture on one interface, pulled record-by-record
/// through the same [`RecordSource`] contract as the file and ring
/// backends.
pub struct RawSource {
    fd: i32,
    /// Reusable receive buffer, sized to the snaplen.
    buf: Vec<u8>,
    snaplen: u32,
    /// Stop after this many records (`u64::MAX` = run forever); gives
    /// smoke tests and `repro ingest --source iface` a bounded run.
    limit: u64,
    frames_read: u64,
    bytes_read: u64,
}

impl RawSource {
    /// Open `iface` for promiscuous-free capture of all protocols.
    /// Requires `CAP_NET_RAW` (the `EPERM` comes back as
    /// [`PcapError::Io`]).
    pub fn open(iface: &str, snaplen: u32) -> Result<RawSource, PcapError> {
        let idx = ifindex(iface)?;
        // SAFETY: no pointers involved.
        let fd = check(unsafe {
            syscall6(nr::SOCKET, AF_PACKET, SOCK_RAW | SOCK_CLOEXEC, ETH_P_ALL_BE, 0, 0, 0)
        })? as i32;

        // struct sockaddr_ll, zero-padded: family, protocol (big-endian),
        // ifindex, then hatype/pkttype/halen/addr which bind ignores.
        let mut sll = [0u8; 20];
        sll[0..2].copy_from_slice(&(AF_PACKET as u16).to_ne_bytes());
        sll[2..4].copy_from_slice(&(ETH_P_ALL_BE as u16).to_ne_bytes());
        sll[4..8].copy_from_slice(&idx.to_ne_bytes());
        // SAFETY: `sll` outlives the call and its length is passed.
        let bound = check(unsafe {
            syscall6(nr::BIND, fd as usize, sll.as_ptr() as usize, sll.len(), 0, 0, 0)
        });
        if let Err(e) = bound {
            // SAFETY: fd came from socket() above and is not used again.
            let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
            return Err(e.into());
        }
        Ok(RawSource {
            fd,
            buf: vec![0u8; (snaplen as usize).max(1)],
            snaplen,
            limit: u64::MAX,
            frames_read: 0,
            bytes_read: 0,
        })
    }

    /// Stop the stream (return `Ok(None)`) after `limit` records.
    pub fn with_limit(mut self, limit: u64) -> RawSource {
        self.limit = limit;
        self
    }
}

impl RecordSource for RawSource {
    fn header(&self) -> SourceHeader {
        SourceHeader { link_type: LINKTYPE_ETHERNET, snaplen: self.snaplen }
    }

    fn next(&mut self) -> Result<Option<RecordRef<'_>>, PcapError> {
        if self.frames_read >= self.limit {
            return Ok(None);
        }
        let wire_len = loop {
            // SAFETY: `buf` is a live mutable allocation of the passed
            // length; MSG_TRUNC makes the kernel report the full on-wire
            // length even when it exceeds the buffer.
            let ret = unsafe {
                syscall6(
                    nr::RECVFROM,
                    self.fd as usize,
                    self.buf.as_mut_ptr() as usize,
                    self.buf.len(),
                    MSG_TRUNC,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(n) => break n,
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e.into()),
            }
        };
        // lint: allow(no-wallclock): capture timestamps are wall-clock by
        // definition — this is the one live-capture stamping seam.
        let ts_nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let stored = wire_len.min(self.buf.len());
        self.frames_read += 1;
        self.bytes_read += stored as u64;
        Ok(Some(RecordRef {
            ts_nanos,
            orig_len: wire_len as u32,
            data: &self.buf[..stored],
        }))
    }

    fn metrics(&self) -> xkit::obs::Metrics {
        let mut m = xkit::obs::Metrics::new();
        m.add("capture.frames_read", self.frames_read);
        m.add("capture.bytes_read", self.bytes_read);
        m.add("capture.frames_rejected", 0);
        m
    }
}

impl Drop for RawSource {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this value and closed exactly once.
        let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
    }
}
