//! Randomized tests: capture files round-trip and the reader survives
//! fuzz, driven by a fixed `xkit::rng` stream.

use pcapio::{PcapReader, PcapWriter, TsPrecision, GLOBAL_HEADER_LEN};
use xkit::rng::{RngExt, SeedableRng, StdRng};

const CASES: usize = 128;

fn rng(label: u64) -> StdRng {
    StdRng::seed_from_u64(0x9CA9_10 ^ label)
}

#[derive(Debug, Clone)]
struct Rec {
    ts_nanos: u64,
    data: Vec<u8>,
    extra_wire: u16,
}

fn gen_rec(r: &mut StdRng) -> Rec {
    Rec {
        ts_nanos: r.random_range(0..u32::MAX as u64 * 1_000_000_000),
        data: (0..r.random_range(0..200usize)).map(|_| r.random::<u8>()).collect(),
        extra_wire: r.random::<u16>(),
    }
}

fn gen_recs(r: &mut StdRng, min: usize, max: usize) -> Vec<Rec> {
    (0..r.random_range(min..max)).map(|_| gen_rec(r)).collect()
}

/// Write-then-read returns every record exactly (nanosecond files).
#[test]
fn nano_round_trip() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let recs = gen_recs(&mut r, 0, 40);
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535, TsPrecision::Nano).unwrap();
        for rec in &recs {
            let orig = (rec.data.len() + rec.extra_wire as usize) as u32;
            w.write_packet(rec.ts_nanos, &rec.data, Some(orig)).unwrap();
        }
        drop(w);
        let got: Vec<_> =
            PcapReader::new(&buf[..]).unwrap().records().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), recs.len());
        for (g, rec) in got.iter().zip(&recs) {
            assert_eq!(g.ts_nanos, rec.ts_nanos);
            assert_eq!(&g.data, &rec.data);
            assert_eq!(g.orig_len as usize, rec.data.len() + rec.extra_wire as usize);
        }
    }
}

/// Microsecond files lose only sub-microsecond precision.
#[test]
fn micro_rounds_to_microseconds() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let recs = gen_recs(&mut r, 1, 20);
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535, TsPrecision::Micro).unwrap();
        for rec in &recs {
            w.write_packet(rec.ts_nanos, &rec.data, None).unwrap();
        }
        drop(w);
        let got: Vec<_> =
            PcapReader::new(&buf[..]).unwrap().records().map(|r| r.unwrap()).collect();
        for (g, rec) in got.iter().zip(&recs) {
            assert_eq!(g.ts_nanos, rec.ts_nanos / 1_000 * 1_000);
        }
    }
}

/// Snaplen truncation keeps the prefix and the true wire length.
#[test]
fn snaplen_truncation() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let data: Vec<u8> = (0..r.random_range(0..300usize)).map(|_| r.random::<u8>()).collect();
        let snaplen = r.random_range(1u32..128);
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, snaplen, TsPrecision::Nano).unwrap();
        w.write_packet(7, &data, None).unwrap();
        drop(w);
        let rec = PcapReader::new(&buf[..]).unwrap().next_packet().unwrap().unwrap();
        let expect = data.len().min(snaplen as usize);
        assert_eq!(&rec.data, &data[..expect]);
        assert_eq!(rec.orig_len as usize, data.len());
    }
}

/// The reader never panics on arbitrary bytes.
#[test]
fn reader_never_panics() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let bytes: Vec<u8> = (0..r.random_range(0..400usize)).map(|_| r.random::<u8>()).collect();
        if let Ok(rd) = PcapReader::new(&bytes[..]) {
            // Bounded: each iteration consumes ≥16 bytes or errors.
            for rec in rd.records().take(64) {
                if rec.is_err() {
                    break;
                }
            }
        }
    }
}

/// A capture truncated anywhere reads back a prefix of the records,
/// then errors or ends — never panics, never fabricates data.
#[test]
fn truncated_capture_degrades_cleanly() {
    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
    for i in 0..20u64 {
        w.write_packet(i, &[i as u8; 32], None).unwrap();
    }
    drop(w);
    for cut in 0..=buf.len() {
        if cut < GLOBAL_HEADER_LEN {
            assert!(PcapReader::new(&buf[..cut]).is_err());
            continue;
        }
        let r = PcapReader::new(&buf[..cut]).unwrap();
        let mut i = 0u64;
        for rec in r.records() {
            match rec {
                Ok(rec) => {
                    assert_eq!(rec.ts_nanos, i);
                    assert_eq!(rec.data, vec![i as u8; 32]);
                    i += 1;
                }
                Err(_) => break,
            }
        }
        assert!(i <= 20);
    }
}
