//! Property tests: capture files round-trip and the reader survives fuzz.

use pcapio::{PcapReader, PcapWriter, TsPrecision, GLOBAL_HEADER_LEN};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Rec {
    ts_nanos: u64,
    data: Vec<u8>,
    extra_wire: u16,
}

fn arb_rec() -> impl Strategy<Value = Rec> {
    (
        0u64..u32::MAX as u64 * 1_000_000_000,
        proptest::collection::vec(any::<u8>(), 0..200),
        any::<u16>(),
    )
        .prop_map(|(ts_nanos, data, extra_wire)| Rec { ts_nanos, data, extra_wire })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Write-then-read returns every record exactly (nanosecond files).
    #[test]
    fn nano_round_trip(recs in proptest::collection::vec(arb_rec(), 0..40)) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535, TsPrecision::Nano).unwrap();
        for r in &recs {
            let orig = (r.data.len() + r.extra_wire as usize) as u32;
            w.write_packet(r.ts_nanos, &r.data, Some(orig)).unwrap();
        }
        drop(w);
        let got: Vec<_> = PcapReader::new(&buf[..]).unwrap().records().map(|r| r.unwrap()).collect();
        prop_assert_eq!(got.len(), recs.len());
        for (g, r) in got.iter().zip(&recs) {
            prop_assert_eq!(g.ts_nanos, r.ts_nanos);
            prop_assert_eq!(&g.data, &r.data);
            prop_assert_eq!(g.orig_len as usize, r.data.len() + r.extra_wire as usize);
        }
    }

    /// Microsecond files lose only sub-microsecond precision.
    #[test]
    fn micro_rounds_to_microseconds(recs in proptest::collection::vec(arb_rec(), 1..20)) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535, TsPrecision::Micro).unwrap();
        for r in &recs {
            w.write_packet(r.ts_nanos, &r.data, None).unwrap();
        }
        drop(w);
        let got: Vec<_> = PcapReader::new(&buf[..]).unwrap().records().map(|r| r.unwrap()).collect();
        for (g, r) in got.iter().zip(&recs) {
            prop_assert_eq!(g.ts_nanos, r.ts_nanos / 1_000 * 1_000);
        }
    }

    /// Snaplen truncation keeps the prefix and the true wire length.
    #[test]
    fn snaplen_truncation(data in proptest::collection::vec(any::<u8>(), 0..300), snaplen in 1u32..128) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, snaplen, TsPrecision::Nano).unwrap();
        w.write_packet(7, &data, None).unwrap();
        drop(w);
        let rec = PcapReader::new(&buf[..]).unwrap().next_packet().unwrap().unwrap();
        let expect = data.len().min(snaplen as usize);
        prop_assert_eq!(&rec.data, &data[..expect]);
        prop_assert_eq!(rec.orig_len as usize, data.len());
    }

    /// The reader never panics on arbitrary bytes.
    #[test]
    fn reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(r) = PcapReader::new(&bytes[..]) {
            // Bounded: each iteration consumes ≥16 bytes or errors.
            for rec in r.records().take(64) {
                if rec.is_err() {
                    break;
                }
            }
        }
    }

    /// A capture truncated anywhere reads back a prefix of the records,
    /// then errors or ends — never panics, never fabricates data.
    #[test]
    fn truncated_capture_degrades_cleanly(cut in 0usize..2_000) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
        for i in 0..20u64 {
            w.write_packet(i, &[i as u8; 32], None).unwrap();
        }
        drop(w);
        let cut = cut.min(buf.len());
        if cut < GLOBAL_HEADER_LEN {
            prop_assert!(PcapReader::new(&buf[..cut]).is_err());
            return Ok(());
        }
        let r = PcapReader::new(&buf[..cut]).unwrap();
        let mut i = 0u64;
        for rec in r.records() {
            match rec {
                Ok(rec) => {
                    prop_assert_eq!(rec.ts_nanos, i);
                    prop_assert_eq!(rec.data, vec![i as u8; 32]);
                    i += 1;
                }
                Err(_) => break,
            }
        }
        prop_assert!(i <= 20);
    }
}
