//! Loopback smoke test for the `AF_PACKET` backend.
//!
//! Ignored by default: opening a raw packet socket needs CAP_NET_RAW (or
//! root), which most dev sandboxes and CI runners don't grant. Run it
//! explicitly with
//!
//! ```sh
//! cargo test -p pcapio --features raw-socket -- --ignored
//! ```
//!
//! `verify.sh` does exactly that when the capability probe succeeds. If
//! the socket cannot be opened the test reports the reason and passes,
//! so an unprivileged `--ignored` sweep stays green.
#![cfg(feature = "raw-socket")]

use std::net::UdpSocket;
use std::time::Duration;

use pcapio::raw::RawSource;
use pcapio::{PcapError, RecordSource};

/// A payload no other loopback traffic will plausibly carry.
const MAGIC: &[u8] = b"pcapio-raw-loopback-9f2c41d8";

#[test]
#[ignore = "needs CAP_NET_RAW; run via cargo test -- --ignored"]
fn loopback_capture_sees_injected_datagrams() {
    let mut source = match RawSource::open("lo", 65_535) {
        Ok(s) => s.with_limit(4_096),
        Err(PcapError::Io(e)) => {
            eprintln!("skipping: cannot open AF_PACKET socket on lo: {e}");
            return;
        }
        Err(e) => panic!("unexpected open failure: {e:?}"),
    };
    assert_eq!(source.header().snaplen, 65_535);

    // Inject traffic from a plain UDP socket; the raw reader on the
    // other side must see those frames among whatever else crosses lo.
    let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
    let receiver = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
    let dest = receiver.local_addr().expect("receiver addr");
    let injector = std::thread::spawn(move || {
        for _ in 0..64 {
            sender.send_to(MAGIC, dest).expect("loopback send");
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    let mut magic_seen = 0u64;
    while let Some(rec) = source.next().expect("raw read") {
        assert!(rec.orig_len as usize >= rec.data.len(), "orig_len covers the wire frame");
        if rec.data.windows(MAGIC.len()).any(|w| w == MAGIC) {
            magic_seen += 1;
            if magic_seen >= 8 {
                break;
            }
        }
    }
    injector.join().expect("injector thread");

    assert!(magic_seen >= 8, "expected the injected datagrams on lo, saw {magic_seen}");
    let metrics = source.metrics();
    assert!(metrics.counter("capture.frames_read") >= magic_seen);
    assert!(metrics.counter("capture.bytes_read") > 0);
}
