//! Seeded property suite for the in-memory SPSC ring.
//!
//! Every schedule here is derived from `xkit::rng` split streams, so a
//! failure reproduces bit for bit. The invariants under test:
//!
//! * FIFO: records come out in offer order with exact timestamps,
//!   original lengths, and snaplen-truncated payloads, across byte-level
//!   wraparound and frames split at the buffer edge.
//! * Conservation: at all times `produced = consumed + dropped +
//!   pending`, and after close + drain, `produced = consumed + dropped`
//!   exactly.
//! * No panics at degenerate capacities (1, 2, 7 bytes — too small for
//!   even a frame header) where every record is an oversize drop.

use std::collections::VecDeque;

use pcapio::ring::{self, Backpressure, PushOutcome};
use pcapio::RecordSource;
use xkit::rng::{RngExt, SeedableRng, StdRng};

const SNAPLEN: u32 = 256;
const FRAME_HEADER_LEN: usize = 16;

/// Deterministic patterned payload for record `seq`: content checks never
/// depend on rng draws, only lengths and schedules do.
fn payload(seq: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seq as usize + i) as u8).collect()
}

/// What the consumer must observe for an enqueued record: the stored
/// slice is the payload truncated to snaplen, the rest passes through.
fn expected(seq: u64, ts: u64, orig_len: u32, body: &[u8]) -> (u64, u32, Vec<u8>) {
    let stored = body.len().min(SNAPLEN as usize);
    let _ = seq;
    (ts, orig_len, body[..stored].to_vec())
}

#[test]
fn seeded_wraparound_at_every_capacity() {
    // Capacities in bytes. 1/2/7 cannot hold even a frame header, so
    // every offer is an oversize drop; 4096 wraps constantly at these
    // record sizes.
    for &capacity in &[1usize, 2, 7, 4096] {
        let mut rng = StdRng::seed_from_u64(0xD15C).split(capacity as u64);
        let (mut tx, mut rx) = ring::channel(capacity, SNAPLEN, Backpressure::Block);
        let mut model: VecDeque<(u64, u32, Vec<u8>)> = VecDeque::new();

        let mut seq = 0u64;
        while seq < 500 {
            let len = rng.random_range(0usize..=300);
            let ts = rng.random::<u64>();
            let body = payload(seq, len);
            match tx.try_push(ts, len as u32, &body) {
                PushOutcome::Enqueued => {
                    model.push_back(expected(seq, ts, len as u32, &body));
                    seq += 1;
                }
                PushOutcome::Dropped => {
                    // Oversize (tiny capacities) — never re-offered.
                    seq += 1;
                }
                PushOutcome::WouldBlock => {
                    // Single-threaded backpressure: drain one and retry.
                    let want = model.pop_front().expect("WouldBlock implies pending records");
                    let got = rx.try_next().expect("pending record");
                    assert_eq!((got.ts_nanos, got.orig_len, got.data.to_vec()), want);
                }
            }
        }

        drop(tx);
        while let Some(want) = model.pop_front() {
            let got = rx.next().expect("ring io").expect("model says records remain");
            assert_eq!(
                (got.ts_nanos, got.orig_len, got.data.to_vec()),
                want,
                "capacity {capacity}: FIFO order or content violated"
            );
        }
        assert!(
            rx.next().expect("ring io").is_none(),
            "capacity {capacity}: drained ring must report end of stream"
        );
        assert_eq!(
            500,
            rx.consumed() + rx.dropped(),
            "capacity {capacity}: produced = consumed + dropped after drain"
        );
    }
}

#[test]
fn record_larger_than_remaining_contiguous_space_splits_cleanly() {
    // Capacity 48: one 24-byte record needs 40 bytes framed. After the
    // first push/pop the write head sits at offset 40 with only 8
    // contiguous bytes before the edge, so the second record *must*
    // split across the wraparound — and so must every one after it, at a
    // different offset each time.
    let (mut tx, mut rx) = ring::channel(48, SNAPLEN, Backpressure::Block);
    for seq in 0..64u64 {
        let body = payload(seq, 24);
        assert_eq!(tx.try_push(seq, 24, &body), PushOutcome::Enqueued);
        let got = rx.try_next().expect("just pushed");
        assert_eq!(got.ts_nanos, seq);
        assert_eq!(got.orig_len, 24);
        assert_eq!(got.data, &body[..], "record {seq} corrupted across the buffer edge");
    }
    assert_eq!(rx.consumed(), 64);
    assert_eq!(rx.dropped(), 0);
}

#[test]
fn seeded_interleavings_preserve_fifo_under_drop_newest() {
    // Eight independent schedules, each a random walk of pushes and pops
    // against a model queue. DropNewest means a full ring sheds the
    // offered record instead of blocking, so the single-threaded schedule
    // is fully deterministic and the model can track drops exactly.
    let root = StdRng::seed_from_u64(0x51D3);
    for label in 0..8u64 {
        let mut rng = root.split(label);
        let capacity = *rng.choose(&[64usize, 256, 1024, 4096]).expect("non-empty");
        let (mut tx, mut rx) = ring::channel(capacity, SNAPLEN, Backpressure::DropNewest);
        let mut model: VecDeque<(u64, u32, Vec<u8>)> = VecDeque::new();
        let mut offered = 0u64;
        let mut model_dropped = 0u64;

        for step in 0..2_000u64 {
            if rng.random_bool(0.6) {
                let len = rng.random_range(0usize..=300);
                let ts = step;
                let body = payload(offered, len);
                match tx.try_push(ts, len as u32, &body) {
                    PushOutcome::Enqueued => {
                        model.push_back(expected(offered, ts, len as u32, &body));
                    }
                    PushOutcome::Dropped => model_dropped += 1,
                    PushOutcome::WouldBlock => {
                        unreachable!("DropNewest never reports WouldBlock")
                    }
                }
                offered += 1;
            } else {
                match rx.try_next() {
                    Some(got) => {
                        let want = model.pop_front().expect("ring has a record the model lacks");
                        assert_eq!(
                            (got.ts_nanos, got.orig_len, got.data.to_vec()),
                            want,
                            "schedule {label}: FIFO violated"
                        );
                    }
                    None => assert!(model.is_empty(), "schedule {label}: model out of sync"),
                }
            }
            // Conservation with pending records still in flight.
            assert_eq!(
                tx.produced(),
                rx.consumed() + rx.dropped() + model.len() as u64,
                "schedule {label}: produced = consumed + dropped + pending"
            );
        }

        drop(tx);
        while let Some(want) = model.pop_front() {
            let got = rx.next().expect("ring io").expect("pending record");
            assert_eq!((got.ts_nanos, got.orig_len, got.data.to_vec()), want);
        }
        assert!(rx.next().expect("ring io").is_none());
        assert_eq!(offered, rx.consumed() + rx.dropped(), "schedule {label}: exact conservation");
        assert_eq!(model_dropped, rx.dropped(), "schedule {label}: drop accounting");
    }
}

#[test]
fn forced_backpressure_counts_every_dropped_record() {
    // Room for exactly 4 framed 16-byte records, then 12 more offers with
    // no consumer: all 12 must be counted dropped, none silently lost.
    let body_len = 16usize;
    let capacity = 4 * (FRAME_HEADER_LEN + body_len);
    let (mut tx, mut rx) = ring::channel(capacity, SNAPLEN, Backpressure::DropNewest);
    for seq in 0..16u64 {
        let body = payload(seq, body_len);
        let outcome = tx.try_push(seq, body_len as u32, &body);
        let want = if seq < 4 { PushOutcome::Enqueued } else { PushOutcome::Dropped };
        assert_eq!(outcome, want, "offer {seq}");
    }
    assert_eq!(tx.produced(), 16);
    assert_eq!(tx.dropped(), 12);

    drop(tx);
    let mut drained = 0u64;
    while let Some(got) = rx.next().expect("ring io") {
        assert_eq!(got.ts_nanos, drained, "survivors are the oldest four, in order");
        drained += 1;
    }
    assert_eq!(drained, 4);
    assert_eq!(rx.consumed() + rx.dropped(), 16, "produced = consumed + dropped");
}

#[test]
fn threaded_block_policy_delivers_everything_in_order() {
    // A real producer thread against a deliberately tiny ring: the
    // producer parks on the full ring thousands of times, and none of
    // that scheduling may be visible — Block never drops, so the
    // consumed sequence is exactly the produced sequence.
    const RECORDS: u64 = 10_000;
    let (mut tx, mut rx) = ring::channel(96, SNAPLEN, Backpressure::Block);
    let producer = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for seq in 0..RECORDS {
            let len = rng.random_range(0usize..=40);
            let body = payload(seq, len);
            assert!(tx.push(seq, len as u32, &body), "Block policy must never drop");
        }
        (tx.produced(), tx.dropped())
    });

    let mut rng = StdRng::seed_from_u64(0xB10C);
    let mut next_seq = 0u64;
    while let Some(got) = rx.next().expect("ring io") {
        let len = rng.random_range(0usize..=40);
        assert_eq!(got.ts_nanos, next_seq, "delivery order");
        assert_eq!(got.orig_len, len as u32);
        assert_eq!(got.data, &payload(next_seq, len)[..], "payload integrity");
        next_seq += 1;
    }
    let (produced, dropped) = producer.join().expect("producer thread");
    assert_eq!(produced, RECORDS);
    assert_eq!(dropped, 0);
    assert_eq!(next_seq, RECORDS, "every record delivered exactly once");
}

#[test]
fn snaplen_truncation_is_visible_only_in_stored_bytes() {
    let (mut tx, mut rx) = ring::channel(4096, 64, Backpressure::Block);
    let body = payload(0, 200);
    assert_eq!(tx.try_push(7, 200, &body), PushOutcome::Enqueued);
    let got = rx.try_next().expect("pushed record");
    assert_eq!(got.ts_nanos, 7);
    assert_eq!(got.orig_len, 200, "original length survives truncation");
    assert_eq!(got.data, &body[..64], "stored bytes cut at snaplen");
}
