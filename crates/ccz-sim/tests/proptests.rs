//! Property tests for the simulator: determinism, config robustness, and
//! structural invariants of the generated logs for arbitrary seeds.

use ccz_sim::{ConnClass, ScaleKnobs, Simulation, WorkloadConfig};
use proptest::prelude::*;

fn tiny(houses: usize, days: f64) -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity: 1.0 },
        services: 150,
        shared_services: 25,
        ..WorkloadConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed: same seed twice gives identical logs; different seeds
    /// give different logs.
    #[test]
    fn deterministic_per_seed(seed in any::<u64>()) {
        let sim = Simulation::new(tiny(3, 0.02), seed).unwrap();
        let a = sim.run();
        let b = sim.run();
        prop_assert_eq!(&a.logs.conns, &b.logs.conns);
        prop_assert_eq!(&a.logs.dns, &b.logs.dns);
        let other = Simulation::new(tiny(3, 0.02), seed.wrapping_add(1)).unwrap().run();
        prop_assert!(a.logs.conns != other.logs.conns || a.logs.dns != other.logs.dns);
    }

    /// Structural invariants hold for arbitrary seeds: truth aligns with
    /// logs, timestamps ordered, DNS-using conns reference valid lookups
    /// that completed before the conn and contain the destination.
    #[test]
    fn structural_invariants(seed in any::<u64>()) {
        let out = Simulation::new(tiny(4, 0.03), seed).unwrap().run();
        prop_assert_eq!(out.truth.conns.len(), out.logs.conns.len());
        prop_assert_eq!(out.truth.dns.len(), out.logs.dns.len());
        // Logs sorted.
        prop_assert!(out.logs.conns.windows(2).all(|w| w[0].ts <= w[1].ts));
        prop_assert!(out.logs.dns.windows(2).all(|w| w[0].ts <= w[1].ts));
        for conn in &out.logs.conns {
            let t = &out.truth.conns[conn.uid as usize];
            prop_assert_eq!(t.resp_addr, conn.id.resp_addr);
            match t.class {
                ConnClass::NoDns => prop_assert!(t.dns_index.is_none()),
                _ => {
                    let di = t.dns_index.unwrap();
                    let txn = &out.logs.dns[..]; // index space check
                    prop_assert!(di < txn.len());
                    let txn = &out.logs.dns[di];
                    prop_assert!(txn.completed_at().unwrap() <= conn.ts);
                    prop_assert!(txn.addrs().any(|a| a == conn.id.resp_addr));
                    // Blocked classes start within the app-delay budget.
                    if matches!(t.class, ConnClass::SharedCache | ConnClass::Resolution) {
                        let gap = conn.ts.since(txn.completed_at().unwrap());
                        prop_assert!(gap.as_millis_f64() <= 450.0, "blocked gap {gap}");
                    }
                }
            }
        }
        // Platform stats account for every lookup.
        let total: u64 = out.platform_stats.iter().map(|(_, q, _)| *q).sum();
        prop_assert_eq!(total as usize, out.logs.dns.len());
    }

    /// Volume scales roughly linearly with houses. Per-house variance is
    /// heavy-tailed (device counts, P2P flags), so the bounds are generous
    /// and the sample sizes large enough to average over it.
    #[test]
    fn volume_scales_with_houses(seed in 0u64..100) {
        let small = Simulation::new(tiny(4, 0.05), seed).unwrap().run();
        let large = Simulation::new(tiny(16, 0.05), seed).unwrap().run();
        let ratio = large.logs.conns.len() as f64 / small.logs.conns.len().max(1) as f64;
        prop_assert!(ratio > 1.4 && ratio < 12.0, "ratio {ratio}");
    }
}

#[test]
fn invalid_configs_are_rejected() {
    let mut c = tiny(1, 0.01);
    c.scale.activity = 0.0;
    assert!(Simulation::new(c, 1).is_err());

    let mut c = tiny(1, 0.01);
    c.cohost_fraction = -0.5;
    assert!(Simulation::new(c, 1).is_err());

    let mut c = tiny(1, 0.01);
    c.ttl_classes = vec![(0, 1.0)];
    assert!(Simulation::new(c, 1).is_err());
}
