//! Randomized tests for the simulator: determinism, config robustness,
//! and structural invariants of the generated logs across many seeds.
//!
//! Cases come from a fixed `xkit::rng` stream, so every run exercises
//! the same inputs. Seeds 0 and 47 are pinned explicitly: both were
//! shrunk failure cases in earlier development and must stay covered.

use ccz_sim::{ConnClass, ScaleKnobs, Simulation, WorkloadConfig};
use xkit::rng::{Rng, RngExt, SeedableRng, StdRng};

const CASES: usize = 16;

/// Regression seeds from past failures, always re-run first.
const REGRESSION_SEEDS: [u64; 2] = [0, 47];

/// The pinned regressions followed by `CASES` seeds from a fixed stream.
fn case_seeds(label: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(0xCC2_51A1 ^ label);
    REGRESSION_SEEDS
        .into_iter()
        .chain((0..CASES).map(|_| rng.next_u64()))
        .collect()
}

fn tiny(houses: usize, days: f64) -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity: 1.0 },
        services: 150,
        shared_services: 25,
        ..WorkloadConfig::default()
    }
}

/// Any seed: same seed twice gives identical logs; different seeds
/// give different logs.
#[test]
fn deterministic_per_seed() {
    for seed in case_seeds(1) {
        let sim = Simulation::new(tiny(3, 0.02), seed).unwrap();
        let a = sim.run();
        let b = sim.run();
        assert_eq!(a.logs.conns, b.logs.conns, "seed {seed}");
        assert_eq!(a.logs.dns, b.logs.dns, "seed {seed}");
        let other = Simulation::new(tiny(3, 0.02), seed.wrapping_add(1)).unwrap().run();
        assert!(
            a.logs.conns != other.logs.conns || a.logs.dns != other.logs.dns,
            "seed {seed} and {} produced identical logs",
            seed.wrapping_add(1)
        );
    }
}

/// Structural invariants hold for arbitrary seeds: truth aligns with
/// logs, timestamps ordered, DNS-using conns reference valid lookups
/// that completed before the conn and contain the destination.
#[test]
fn structural_invariants() {
    for seed in case_seeds(2) {
        let out = Simulation::new(tiny(4, 0.03), seed).unwrap().run();
        assert_eq!(out.truth.conns.len(), out.logs.conns.len());
        assert_eq!(out.truth.dns.len(), out.logs.dns.len());
        // Logs sorted.
        assert!(out.logs.conns.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(out.logs.dns.windows(2).all(|w| w[0].ts <= w[1].ts));
        for conn in &out.logs.conns {
            let t = &out.truth.conns[conn.uid as usize];
            assert_eq!(t.resp_addr, conn.id.resp_addr);
            match t.class {
                ConnClass::NoDns => assert!(t.dns_index.is_none()),
                _ => {
                    let di = t.dns_index.unwrap();
                    assert!(di < out.logs.dns.len(), "seed {seed}: dns_index out of range");
                    let txn = &out.logs.dns[di];
                    assert!(txn.completed_at().unwrap() <= conn.ts);
                    assert!(txn.addrs().any(|a| a == conn.id.resp_addr));
                    // Blocked classes start within the app-delay budget.
                    if matches!(t.class, ConnClass::SharedCache | ConnClass::Resolution) {
                        let gap = conn.ts.since(txn.completed_at().unwrap());
                        assert!(gap.as_millis_f64() <= 450.0, "seed {seed}: blocked gap {gap}");
                    }
                }
            }
        }
        // Platform stats account for every lookup.
        let total: u64 = out.platform_stats.iter().map(|(_, q, _)| *q).sum();
        assert_eq!(total as usize, out.logs.dns.len(), "seed {seed}");
    }
}

/// Volume scales roughly linearly with houses. Per-house variance is
/// heavy-tailed (device counts, P2P flags), so the bounds are generous
/// and the sample sizes large enough to average over it.
#[test]
fn volume_scales_with_houses() {
    let mut rng = StdRng::seed_from_u64(0xCC2_51A1 ^ 3);
    let seeds = REGRESSION_SEEDS
        .into_iter()
        .chain((0..CASES).map(|_| rng.random_range(0u64..100)));
    for seed in seeds {
        let small = Simulation::new(tiny(4, 0.05), seed).unwrap().run();
        let large = Simulation::new(tiny(16, 0.05), seed).unwrap().run();
        let ratio = large.logs.conns.len() as f64 / small.logs.conns.len().max(1) as f64;
        assert!(ratio > 1.4 && ratio < 12.0, "seed {seed}: ratio {ratio}");
    }
}

#[test]
fn invalid_configs_are_rejected() {
    let mut c = tiny(1, 0.01);
    c.scale.activity = 0.0;
    assert!(Simulation::new(c, 1).is_err());

    let mut c = tiny(1, 0.01);
    c.cohost_fraction = -0.5;
    assert!(Simulation::new(c, 1).is_err());

    let mut c = tiny(1, 0.01);
    c.ttl_classes = vec![(0, 1.0)];
    assert!(Simulation::new(c, 1).is_err());
}
