//! Output backends: direct log emission and packet/pcap emission.
//!
//! The engine describes what happened (one DNS transaction, one
//! connection) and a sink turns that into either finished
//! [`zeek_lite::Logs`] records (fast path) or a time-ordered sequence of
//! real frames (faithful path, to be re-parsed by the monitor).

use std::io::{self, Write};
use std::net::Ipv4Addr;

use dns_wire::{Message, Name, Rcode, Record, RrType};
use netpkt::{Frame, MacAddr, TcpFlags, TcpHeader};
use zeek_lite::{
    Answer, AnswerData, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple, History, Logs,
    Proto, Timestamp,
};

/// One DNS transaction as the engine describes it.
///
/// The name and answer fields *borrow* from the engine's name universe and
/// scratch buffers: an emission is a transient view handed to the sink,
/// which copies only what it actually keeps. This keeps the simulator's
/// hot path free of per-lookup heap allocations.
#[derive(Debug, Clone, Copy)]
pub struct DnsEmission<'a> {
    /// Query departure time.
    pub ts: Timestamp,
    /// House (NAT) address.
    pub client: Ipv4Addr,
    /// Resolver address queried.
    pub resolver: Ipv4Addr,
    /// Transaction id.
    pub trans_id: u16,
    /// Ephemeral client port.
    pub client_port: u16,
    /// Query name.
    pub query: &'a str,
    /// Lookup duration.
    pub rtt: Duration,
    /// Response code.
    pub rcode: Rcode,
    /// Optional CNAME ahead of the address records.
    pub cname: Option<&'a str>,
    /// Address answers.
    pub addrs: &'a [Ipv4Addr],
    /// TTL on the answer records.
    pub ttl: u32,
}

/// One connection as the engine describes it.
#[derive(Debug, Clone)]
pub struct ConnEmission {
    /// First-packet time.
    pub ts: Timestamp,
    /// House (NAT) address.
    pub house: Ipv4Addr,
    /// Originator (ephemeral) port.
    pub orig_port: u16,
    /// Server address.
    pub dst: Ipv4Addr,
    /// Server port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// Total lifetime (first packet to last).
    pub duration: Duration,
    /// Payload bytes house → server.
    pub orig_bytes: u64,
    /// Payload bytes server → house.
    pub resp_bytes: u64,
    /// Network RTT to the server (packet pacing in pcap mode).
    pub rtt: Duration,
    /// How the connection ended.
    pub fate: ConnFate,
}

/// Connection outcomes the simulator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFate {
    /// Established and closed cleanly.
    Established,
    /// No answer from the peer (hard-coded dead servers, gone P2P peers).
    NoAnswer,
    /// Actively refused (RST to the SYN).
    Refused,
}

/// Where engine emissions go.
pub trait Sink {
    /// Record one DNS transaction.
    fn dns(&mut self, e: &DnsEmission<'_>);
    /// Record one connection.
    fn conn(&mut self, e: &ConnEmission);
}

/// Builds `zeek_lite::Logs` directly, bypassing packets. Connection uids
/// equal the ground-truth index of the connection, which survives the
/// final time-sort and lets tests join logs back to truth exactly.
pub struct LogSink {
    conns: Vec<ConnRecord>,
    dns: Vec<DnsTransaction>,
}

impl LogSink {
    /// An empty sink.
    pub fn new() -> LogSink {
        LogSink { conns: Vec::new(), dns: Vec::new() }
    }

    /// Finish into sorted logs.
    pub fn into_logs(self) -> Logs {
        self.into_logs_and_dns_perm().0
    }

    /// Append another sink's emissions after this one's, keeping the
    /// uid = emission-index invariant by offsetting the absorbed uids.
    /// This is how per-shard sinks from a parallel run are merged back
    /// into one emission stream (in shard order, which is fixed by the
    /// house partition, not by worker scheduling).
    pub fn absorb(&mut self, other: LogSink) {
        let off = self.conns.len() as u64;
        if off == 0 {
            // First shard: take the buffer wholesale — uids are already
            // 0-based, so the remap below would be `+= 0` on every record.
            self.conns = other.conns;
        } else {
            self.conns.extend(other.conns.into_iter().map(|mut c| {
                c.uid += off;
                c
            }));
        }
        if self.dns.is_empty() {
            self.dns = other.dns;
        } else {
            self.dns.extend(other.dns);
        }
    }

    /// Finish into sorted logs, also returning the DNS permutation:
    /// `perm[emission_index] = sorted_index`. Emission order is only
    /// approximately time-ordered (the engine emits future-offset actions
    /// eagerly), so ground-truth indices must be remapped through this.
    /// Connection identity survives the sort via `uid`; DNS records have
    /// no uid field, hence the explicit permutation.
    pub fn into_logs_and_dns_perm(self) -> (Logs, Vec<usize>) {
        let mut order: Vec<usize> = (0..self.dns.len()).collect();
        // Unstable sort with the emission index as tiebreaker == stable
        // sort by ts (order starts ascending), minus the merge buffer.
        order.sort_unstable_by_key(|i| (self.dns[*i].ts, *i));
        let mut perm = vec![0usize; order.len()];
        for (sorted_pos, emission_idx) in order.iter().enumerate() {
            perm[*emission_idx] = sorted_pos;
        }
        let mut dns_sorted: Vec<Option<DnsTransaction>> = self.dns.into_iter().map(Some).collect();
        let dns: Vec<DnsTransaction> = order
            .iter()
            .map(|i| dns_sorted[*i].take().expect("permutation is a bijection"))
            .collect();
        let mut logs = Logs {
            conns: self.conns,
            dns,
            ..Default::default()
        };
        // uid == emission index, so (ts, uid) unstable == stable by ts.
        logs.conns.sort_unstable_by_key(|c| (c.ts, c.uid));
        (logs, perm)
    }
}

impl Default for LogSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for LogSink {
    fn dns(&mut self, e: &DnsEmission<'_>) {
        let mut answers = Vec::with_capacity(e.addrs.len() + 1);
        if let Some(c) = e.cname {
            answers.push(Answer { data: AnswerData::Cname(c.to_string()), ttl: e.ttl });
        }
        for a in e.addrs {
            answers.push(Answer { data: AnswerData::Addr(*a), ttl: e.ttl });
        }
        self.dns.push(DnsTransaction {
            ts: e.ts,
            client: e.client,
            resolver: e.resolver,
            trans_id: e.trans_id,
            query: e.query.to_string(),
            qtype: RrType::A,
            rcode: Some(e.rcode),
            rtt: Some(e.rtt),
            answers,
        });
    }

    fn conn(&mut self, e: &ConnEmission) {
        let (state, resp_pkts, orig_pkts, history) = match e.fate {
            ConnFate::Established => {
                let op = 4 + e.orig_bytes / 1448;
                let rp = 3 + e.resp_bytes / 1448;
                (ConnState::SF, rp, op, History::from("ShAaFf"))
            }
            ConnFate::NoAnswer => (ConnState::S0, 0, 3, History::from("S")),
            ConnFate::Refused => (ConnState::Rej, 1, 1, History::from("Sr")),
        };
        let success = e.fate == ConnFate::Established;
        // Failure semantics mirror what a monitor recovers from packets:
        // a failed UDP "connection" still carried the originator's
        // datagrams; a failed TCP handshake carried no payload at all.
        let (orig_bytes, resp_bytes) = match (success, e.proto) {
            (true, _) => (e.orig_bytes, e.resp_bytes),
            (false, Proto::Udp) => (e.orig_bytes, 0),
            (false, Proto::Tcp) => (0, 0),
        };
        self.conns.push(ConnRecord {
            uid: self.conns.len() as u64,
            ts: e.ts,
            id: FiveTuple {
                orig_addr: e.house,
                orig_port: e.orig_port,
                resp_addr: e.dst,
                resp_port: e.dst_port,
                proto: e.proto,
            },
            duration: e.duration,
            orig_bytes,
            resp_bytes,
            orig_pkts,
            resp_pkts,
            state,
            history,
            service: zeek_lite_service(e.proto, e.dst_port),
        });
    }
}

fn zeek_lite_service(proto: Proto, port: u16) -> Option<&'static str> {
    // Mirror of zeek-lite's port map for records built without packets.
    match (proto, port) {
        (_, 53) => Some("dns"),
        (_, 853) => Some("dot"),
        (Proto::Tcp, 80) => Some("http"),
        (Proto::Tcp, 443) => Some("ssl"),
        (Proto::Udp, 443) => Some("quic"),
        (Proto::Udp, 123) => Some("ntp"),
        (Proto::Tcp, 25) | (Proto::Tcp, 465) | (Proto::Tcp, 587) => Some("smtp"),
        (Proto::Tcp, 993) => Some("imap"),
        (Proto::Udp, 5353) => Some("mdns"),
        _ => None,
    }
}

/// A frame waiting to be written in time order.
struct PendingFrame {
    ts: Timestamp,
    seq: u64,
    frame: Frame,
}

/// Expands emissions into real frames and writes a pcap stream.
///
/// Frames are buffered and time-sorted before writing (connections
/// overlap, so emission order is not capture order); memory is
/// proportional to packet count, so this backend is intended for the
/// validation scale, not for full-week sweeps.
pub struct PcapSink {
    frames: Vec<PendingFrame>,
    seq: u64,
}

impl PcapSink {
    /// An empty sink.
    pub fn new() -> PcapSink {
        PcapSink { frames: Vec::new(), seq: 0 }
    }

    fn push(&mut self, ts: Timestamp, frame: Frame) {
        self.seq += 1;
        self.frames.push(PendingFrame { ts, seq: self.seq, frame });
    }

    /// Number of frames buffered.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Append another sink's frames after this one's. Sequence numbers
    /// are offset past ours so the final `(ts, seq)` write order stays a
    /// total order that depends only on shard order, never on worker
    /// scheduling.
    pub fn absorb(&mut self, other: PcapSink) {
        let off = self.seq;
        if off == 0 {
            self.frames = other.frames;
        } else {
            self.frames.extend(other.frames.into_iter().map(|mut f| {
                f.seq += off;
                f
            }));
        }
        self.seq += other.seq;
    }

    /// Sort by time and hand every record to `emit` as
    /// `(ts_nanos, orig_len, stored_bytes)`, truncated to `snaplen`
    /// exactly as [`PcapSink::write_pcap`] would store it. This is the
    /// serialization-free tap the in-memory ring backend feeds from;
    /// returns the record count.
    pub fn emit_records<F: FnMut(u64, u32, &[u8])>(mut self, snaplen: u32, mut emit: F) -> u64 {
        // `(ts, seq)` is a strict total order, so the unstable sort is
        // deterministic (and skips the stable sort's merge buffer).
        self.frames.sort_unstable_by_key(|f| (f.ts, f.seq));
        let mut n = 0u64;
        for f in &self.frames {
            let bytes = f.frame.encode();
            let stored = bytes.len().min(snaplen as usize);
            emit(f.ts.nanos(), f.frame.wire_len() as u32, &bytes[..stored]);
            n += 1;
        }
        n
    }

    /// Sort by time and write the capture (the file-format spelling of
    /// [`PcapSink::emit_records`], so both backends share one expansion
    /// path and stay byte-identical by construction).
    pub fn write_pcap<W: Write>(self, out: W, snaplen: u32) -> io::Result<u64> {
        let mut w = pcapio::PcapWriter::new(out, snaplen, pcapio::TsPrecision::Nano)?;
        let mut err = None;
        let n = self.emit_records(snaplen, |ts_nanos, orig_len, data| {
            if err.is_none() {
                if let Err(e) = w.write_packet(ts_nanos, data, Some(orig_len)) {
                    err = Some(e);
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        debug_assert_eq!(n, w.packets_written());
        w.into_inner()?;
        Ok(n)
    }
}

impl Default for PcapSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for PcapSink {
    fn dns(&mut self, e: &DnsEmission<'_>) {
        let name = Name::parse(e.query).expect("simulator names are valid");
        let query = Message::query(e.trans_id, name.clone(), RrType::A);
        self.push(
            e.ts,
            Frame::udp(
                MacAddr::LOCAL,
                MacAddr::UPSTREAM,
                e.client,
                e.resolver,
                e.client_port,
                dns_wire::DNS_PORT,
                &query.encode(),
            ),
        );
        if e.rcode == Rcode::NxDomain && e.addrs.is_empty() {
            // RFC 2308 negative response: SOA of the missing name's zone.
            let zone = name.base_domain();
            let soa = dns_wire::SoaData {
                mname: Name::parse("ns1.cdnint.net").expect("static name"),
                rname: Name::parse("hostmaster.cdnint.net").expect("static name"),
                serial: 2019_02_06,
                refresh: 7_200,
                retry: 3_600,
                expire: 1_209_600,
                minimum: e.ttl,
            };
            let resp = query.nxdomain_response(zone, soa);
            self.push(
                e.ts + e.rtt,
                Frame::udp(
                    MacAddr::UPSTREAM,
                    MacAddr::LOCAL,
                    e.resolver,
                    e.client,
                    dns_wire::DNS_PORT,
                    e.client_port,
                    &resp.encode(),
                ),
            );
            return;
        }
        let mut resp = query.answer_template();
        resp.flags.rcode = e.rcode;
        if let Some(c) = e.cname {
            let target = Name::parse(c).expect("valid cname");
            resp.answers.push(Record::cname(name.clone(), e.ttl, target.clone()));
            for a in e.addrs {
                resp.answers.push(Record::a(target.clone(), e.ttl, *a));
            }
        } else {
            for a in e.addrs {
                resp.answers.push(Record::a(name.clone(), e.ttl, *a));
            }
        }
        self.push(
            e.ts + e.rtt,
            Frame::udp(
                MacAddr::UPSTREAM,
                MacAddr::LOCAL,
                e.resolver,
                e.client,
                dns_wire::DNS_PORT,
                e.client_port,
                &resp.encode(),
            ),
        );
    }

    fn conn(&mut self, e: &ConnEmission) {
        match e.proto {
            Proto::Tcp => self.tcp_conn(e),
            Proto::Udp => self.udp_conn(e),
        }
    }
}

impl PcapSink {
    fn tcp_conn(&mut self, e: &ConnEmission) {
        // Initial sequence numbers derived from the flow so replays are
        // deterministic.
        let isn_o = (e.ts.nanos() as u32).wrapping_mul(2654435761);
        let isn_r = isn_o.wrapping_add(0x1234_5678);
        let half = Duration(e.rtt.nanos() / 2);
        let syn = |seq| TcpHeader::syn(e.orig_port, e.dst_port, seq);
        let out = |h: TcpHeader| {
            Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, e.house, e.dst, h, &[])
        };
        let back = |h: TcpHeader| {
            Frame::tcp(MacAddr::UPSTREAM, MacAddr::LOCAL, e.dst, e.house, h, &[])
        };
        match e.fate {
            ConnFate::NoAnswer => {
                // SYN + two retransmits, one second apart (classic backoff).
                for (i, dt) in [0u64, 1, 3].iter().enumerate() {
                    let _ = i;
                    self.push(e.ts + Duration::from_secs(*dt), out(syn(isn_o)));
                }
            }
            ConnFate::Refused => {
                self.push(e.ts, out(syn(isn_o)));
                self.push(
                    e.ts + e.rtt,
                    back(TcpHeader::segment(e.dst_port, e.orig_port, 0, isn_o + 1, TcpFlags::RST)),
                );
            }
            ConnFate::Established => {
                self.push(e.ts, out(syn(isn_o)));
                self.push(e.ts + half, back(TcpHeader {
                    flags: TcpFlags::SYN_ACK,
                    ..TcpHeader::syn(e.dst_port, e.orig_port, isn_r)
                }));
                self.push(e.ts + e.rtt, out(TcpHeader::segment(
                    e.orig_port, e.dst_port, isn_o.wrapping_add(1), isn_r.wrapping_add(1), TcpFlags::ACK,
                )));
                // Mid-connection sequence markers: enough to keep the
                // monitor's inactivity timers from splitting the flow, and
                // to spread byte progress across the lifetime. Byte counts
                // are carried purely in sequence space (payloads are not
                // materialised), exactly like a snaplen-limited capture.
                let end = e.ts + e.duration;
                let markers = (e.duration.as_secs() / 100).min(64) + 1;
                for k in 1..=markers {
                    let frac = k as f64 / markers as f64;
                    let at = e.ts + Duration((e.duration.nanos() as f64 * frac) as u64);
                    if at >= end {
                        break;
                    }
                    let o_prog = (e.orig_bytes as f64 * frac) as u32;
                    let r_prog = (e.resp_bytes as f64 * frac) as u32;
                    self.push(at, out(TcpHeader::segment(
                        e.orig_port, e.dst_port,
                        isn_o.wrapping_add(1).wrapping_add(o_prog),
                        isn_r.wrapping_add(1).wrapping_add(r_prog),
                        TcpFlags::PSH_ACK,
                    )));
                    self.push(at + half, back(TcpHeader::segment(
                        e.dst_port, e.orig_port,
                        isn_r.wrapping_add(1).wrapping_add(r_prog),
                        isn_o.wrapping_add(1).wrapping_add(o_prog),
                        TcpFlags::PSH_ACK,
                    )));
                }
                // Clean close carrying the final sequence positions.
                let fin_o = isn_o.wrapping_add(1).wrapping_add(e.orig_bytes as u32);
                let fin_r = isn_r.wrapping_add(1).wrapping_add(e.resp_bytes as u32);
                self.push(end, out(TcpHeader::segment(
                    e.orig_port, e.dst_port, fin_o, fin_r, TcpFlags::FIN_ACK,
                )));
                self.push(end + half, back(TcpHeader::segment(
                    e.dst_port, e.orig_port, fin_r, fin_o.wrapping_add(1), TcpFlags::FIN_ACK,
                )));
                self.push(end + e.rtt, out(TcpHeader::segment(
                    e.orig_port, e.dst_port, fin_o.wrapping_add(1), fin_r.wrapping_add(1), TcpFlags::ACK,
                )));
            }
        }
    }

    fn udp_conn(&mut self, e: &ConnEmission) {
        let half = Duration(e.rtt.nanos() / 2);
        // Enough datagrams that (i) no inter-packet gap exceeds the
        // monitor's 60 s flow timeout and (ii) no single datagram declares
        // more than the UDP maximum.
        let by_time = e.duration.as_secs() / 25 + 1;
        let by_size = (e.orig_bytes.max(e.resp_bytes) / 60_000) + 1;
        let steps = by_time.max(by_size).clamp(1, 4096);
        let per_o = split_bytes(e.orig_bytes, steps);
        let per_r = split_bytes(e.resp_bytes, steps);
        for k in 0..steps {
            let at = e.ts + Duration((e.duration.nanos() as f64 * k as f64 / steps as f64) as u64);
            self.push(at, Frame::udp_virtual(
                MacAddr::LOCAL, MacAddr::UPSTREAM, e.house, e.dst,
                e.orig_port, e.dst_port, per_o[k as usize] as usize,
            ));
            if e.fate == ConnFate::Established && per_r[k as usize] > 0 {
                self.push(at + half, Frame::udp_virtual(
                    MacAddr::UPSTREAM, MacAddr::LOCAL, e.dst, e.house,
                    e.dst_port, e.orig_port, per_r[k as usize] as usize,
                ));
            }
        }
    }
}

/// Split `total` bytes into `steps` chunks that sum exactly. A zero total
/// yields all-zero chunks: the datagrams are still emitted (a flow needs
/// packets to exist) but declare no payload, matching the log backend.
fn split_bytes(total: u64, steps: u64) -> Vec<u64> {
    let base = total / steps;
    let rem = total % steps;
    (0..steps).map(|k| base + if k < rem { 1 } else { 0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeek_lite::{Monitor, MonitorConfig};

    fn dns_emission() -> DnsEmission<'static> {
        DnsEmission {
            ts: Timestamp::from_secs(10),
            client: Ipv4Addr::new(10, 77, 0, 1),
            resolver: Ipv4Addr::new(198, 51, 100, 53),
            trans_id: 99,
            client_port: 54000,
            query: "www.s0001.com",
            rtt: Duration::from_millis(6),
            rcode: Rcode::NoError,
            cname: Some("edge-1.cdnint.net"),
            addrs: {
                const ADDRS: &[Ipv4Addr] = &[Ipv4Addr::new(104, 16, 0, 5)];
                ADDRS
            },
            ttl: 300,
        }
    }

    fn conn_emission(fate: ConnFate, proto: Proto) -> ConnEmission {
        ConnEmission {
            ts: Timestamp::from_secs(11),
            house: Ipv4Addr::new(10, 77, 0, 1),
            orig_port: 50001,
            dst: Ipv4Addr::new(104, 16, 0, 5),
            dst_port: 443,
            proto,
            duration: Duration::from_millis(800),
            orig_bytes: 1_200,
            resp_bytes: 250_000,
            rtt: Duration::from_millis(20),
            fate,
        }
    }

    #[test]
    fn log_sink_produces_matching_records() {
        let mut sink = LogSink::new();
        sink.dns(&dns_emission());
        sink.conn(&conn_emission(ConnFate::Established, Proto::Tcp));
        let logs = sink.into_logs();
        assert_eq!(logs.dns.len(), 1);
        assert_eq!(logs.conns.len(), 1);
        let d = &logs.dns[0];
        assert_eq!(d.answers.len(), 2); // cname + addr
        assert_eq!(d.min_ttl(), Some(300));
        let c = &logs.conns[0];
        assert_eq!(c.state, ConnState::SF);
        assert_eq!(c.resp_bytes, 250_000);
        assert_eq!(c.service, Some("ssl"));
    }

    #[test]
    fn log_sink_failed_conns_have_no_bytes() {
        let mut sink = LogSink::new();
        sink.conn(&conn_emission(ConnFate::NoAnswer, Proto::Tcp));
        sink.conn(&conn_emission(ConnFate::Refused, Proto::Tcp));
        let logs = sink.into_logs();
        assert_eq!(logs.conns[0].state, ConnState::S0);
        assert_eq!(logs.conns[0].resp_bytes, 0);
        assert_eq!(logs.conns[1].state, ConnState::Rej);
    }

    /// The crucial fidelity property: pcap emission re-parsed by the real
    /// monitor must reproduce the same transactions and byte counts the
    /// log sink produces directly.
    #[test]
    fn pcap_sink_agrees_with_log_sink() {
        let d = dns_emission();
        let ct = conn_emission(ConnFate::Established, Proto::Tcp);
        let cu = {
            let mut c = conn_emission(ConnFate::Established, Proto::Udp);
            c.orig_port = 50002;
            c.duration = Duration::from_secs(130); // forces multiple datagrams
            c
        };
        let failed = {
            let mut c = conn_emission(ConnFate::NoAnswer, Proto::Udp);
            c.orig_port = 50003;
            c.dst_port = 123;
            c.orig_bytes = 48;
            c.resp_bytes = 0;
            c.duration = Duration::ZERO;
            c
        };

        let mut pcap = PcapSink::new();
        pcap.dns(&d);
        pcap.conn(&ct);
        pcap.conn(&cu);
        pcap.conn(&failed);
        let mut buf = Vec::new();
        let frames = pcap.write_pcap(&mut buf, 128).unwrap();
        assert!(frames > 8);

        let logs = Monitor::process_pcap(&buf[..], MonitorConfig::default()).unwrap();
        // DNS side.
        assert_eq!(logs.dns.len(), 1);
        assert_eq!(logs.dns[0].query, d.query);
        assert_eq!(logs.dns[0].rtt, Some(d.rtt));
        assert_eq!(logs.dns[0].addrs().collect::<Vec<_>>(), d.addrs);
        // Connections: dns flow + tcp + udp + failed udp.
        let apps: Vec<_> = logs.app_conns().collect();
        assert_eq!(apps.len(), 3);
        let tcp = apps.iter().find(|c| c.id.proto == Proto::Tcp).unwrap();
        assert_eq!(tcp.state, ConnState::SF);
        assert_eq!(tcp.orig_bytes, ct.orig_bytes);
        assert_eq!(tcp.resp_bytes, ct.resp_bytes);
        assert_eq!(tcp.ts, ct.ts);
        assert_eq!(tcp.duration.as_secs(), ct.duration.as_secs() + 0); // close handshake adds < 1 s
        let udp_ok = apps
            .iter()
            .find(|c| c.id.proto == Proto::Udp && c.id.resp_port == 443)
            .unwrap();
        assert_eq!(udp_ok.orig_bytes, cu.orig_bytes);
        assert_eq!(udp_ok.resp_bytes, cu.resp_bytes);
        let ntp = apps
            .iter()
            .find(|c| c.id.resp_port == 123)
            .unwrap();
        assert_eq!(ntp.state, ConnState::S0);
        assert_eq!(ntp.resp_bytes, 0);
    }

    #[test]
    fn refused_tcp_parses_as_rej() {
        let mut pcap = PcapSink::new();
        pcap.conn(&conn_emission(ConnFate::Refused, Proto::Tcp));
        let mut buf = Vec::new();
        pcap.write_pcap(&mut buf, 128).unwrap();
        let logs = Monitor::process_pcap(&buf[..], MonitorConfig::default()).unwrap();
        assert_eq!(logs.conns[0].state, ConnState::Rej);
    }

    #[test]
    fn long_tcp_conn_survives_inactivity_timeout() {
        let mut e = conn_emission(ConnFate::Established, Proto::Tcp);
        e.duration = Duration::from_secs(1_200); // 20 minutes
        let mut pcap = PcapSink::new();
        pcap.conn(&e);
        let mut buf = Vec::new();
        pcap.write_pcap(&mut buf, 128).unwrap();
        let logs = Monitor::process_pcap(&buf[..], MonitorConfig::default()).unwrap();
        let apps: Vec<_> = logs.app_conns().collect();
        assert_eq!(apps.len(), 1, "flow must not be split by the tcp timeout");
        assert_eq!(apps[0].resp_bytes, e.resp_bytes);
    }

    #[test]
    fn split_bytes_sums_exactly() {
        for (total, steps) in [(0u64, 1u64), (10, 3), (60_001, 2), (1_000_000, 7)] {
            let v = split_bytes(total, steps);
            assert_eq!(v.len(), steps as usize);
            assert_eq!(v.iter().sum::<u64>(), total);
        }
    }
}
