//! Resolver platform model: shared caches, frontend fan-out, delays.
//!
//! Each platform (Local ISP, Google, OpenDNS, Cloudflare) is a set of
//! independent backend caches. A query lands on a uniformly-random backend
//! (anycast/ECMP fan-out — the mechanism behind Google's low effective
//! cache hit rate in the paper's §7). A backend answers from cache when
//!
//! * this network's own earlier queries left the name cached there, or
//! * background traffic from the platform's *other* users kept it warm —
//!   modelled as a Poisson process whose rate scales with the name's
//!   global popularity and the platform's `external_warmth`.
//!
//! Cache answers return *decremented* TTLs, as real resolvers do; misses
//! add an authoritative-resolution delay drawn from the platform's
//! log-normal (capped — Google's serve-stale behaviour gives it a short
//! tail, which is how the paper's Figure 3 crossover arises).

use crate::config::PlatformConfig;
use crate::dists::LogNormal;
use crate::names::NameId;
use xkit::collections::FastMap;
use xkit::rng::{Rng, RngExt};
use std::net::Ipv4Addr;
use zeek_lite::{Duration, Timestamp};

/// Result of one recursive query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupOutcome {
    /// Client-observed lookup duration.
    pub duration: Duration,
    /// Whether the shared cache answered (SC ground truth); false means
    /// authoritative servers were contacted (R ground truth).
    pub cache_hit: bool,
    /// TTL carried by the response (decremented on cache hits).
    pub response_ttl: u32,
}

/// One resolver platform's live state.
pub struct ResolverPlatform {
    /// Static parameters.
    pub cfg: PlatformConfig,
    rtt: LogNormal,
    auth: LogNormal,
    /// Per-backend cache: name → expiry instant. FxHash map: hit on
    /// every query, addressed by key; `retain` removal is the only
    /// traversal and is order-independent.
    backends: Vec<FastMap<NameId, Timestamp>>,
    /// Counters for the run summary.
    pub queries: u64,
    /// Cache hits among those queries.
    pub hits: u64,
}

impl ResolverPlatform {
    /// Build a platform from its config.
    pub fn new(cfg: PlatformConfig) -> ResolverPlatform {
        ResolverPlatform {
            rtt: LogNormal::from_median(cfg.rtt_ms, cfg.rtt_sigma),
            auth: LogNormal::from_median(cfg.auth_delay_ms, cfg.auth_sigma),
            backends: (0..cfg.backends).map(|_| FastMap::default()).collect(),
            cfg,
            queries: 0,
            hits: 0,
        }
    }

    /// One of the platform's service addresses (clients alternate).
    pub fn addr<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        let a = &self.cfg.addrs[rng.random_range(0..self.cfg.addrs.len())];
        Ipv4Addr::new(a[0], a[1], a[2], a[3])
    }

    /// Whether `addr` belongs to this platform.
    pub fn owns(&self, addr: Ipv4Addr) -> bool {
        self.cfg.addrs.iter().any(|a| Ipv4Addr::new(a[0], a[1], a[2], a[3]) == addr)
    }

    /// Process one recursive query for `name` with authoritative TTL
    /// `auth_ttl` and global popularity `pop` at time `now`.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        name: NameId,
        pop: f64,
        auth_ttl: u32,
        now: Timestamp,
        rng: &mut R,
    ) -> LookupOutcome {
        self.queries += 1;
        let b = rng.random_range(0..self.backends.len());
        let backend = &mut self.backends[b];
        let rtt = Duration::from_secs_f64(self.rtt.sample_clamped(rng, 0.3, 500.0) / 1e3);

        // Our own traffic's cache entry, if still valid.
        let own_expiry = backend.get(&name).copied().filter(|e| *e > now);
        if let Some(expiry) = own_expiry {
            self.hits += 1;
            let remaining = expiry.since(now).as_secs().max(1) as u32;
            return LookupOutcome { duration: rtt, cache_hit: true, response_ttl: remaining.min(auth_ttl) };
        }

        // External warmth: probability the platform's other users kept the
        // name cached on this backend within the last TTL window.
        let lambda = self.cfg.external_warmth * pop; // background queries/sec/backend
        let p_warm = 1.0 - (-lambda * auth_ttl as f64).exp();
        if rng.random_bool(p_warm.clamp(0.0, 1.0)) {
            self.hits += 1;
            // Uniform residual lifetime for a record cached at a uniformly
            // random point in its TTL window.
            let remaining = rng.random_range(1..=auth_ttl.max(1));
            backend.insert(name, now + Duration::from_secs(remaining as u64));
            return LookupOutcome { duration: rtt, cache_hit: true, response_ttl: remaining };
        }

        // Miss: contact authoritative servers.
        let auth_ms = self
            .auth
            .sample_clamped(rng, 12.0, self.cfg.auth_cap_ms);
        let duration = rtt + Duration::from_secs_f64(auth_ms / 1e3);
        backend.insert(name, now + Duration::from_secs(auth_ttl as u64));
        LookupOutcome { duration, cache_hit: false, response_ttl: auth_ttl }
    }

    /// Observed cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries as f64
        }
    }

    /// Drop expired entries (bounds memory on long runs).
    pub fn compact(&mut self, now: Timestamp) {
        for b in &mut self.backends {
            b.retain(|_, expiry| *expiry > now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use xkit::rng::StdRng;
    use xkit::rng::SeedableRng;

    fn platform(i: usize) -> ResolverPlatform {
        ResolverPlatform::new(WorkloadConfig::default().platforms[i].clone())
    }

    #[test]
    fn own_traffic_warms_the_cache() {
        let mut p = platform(crate::config::platform::LOCAL);
        let mut rng = StdRng::seed_from_u64(1);
        let t0 = Timestamp::from_secs(100);
        let first = p.query(NameId(1), 1e-9, 300, t0, &mut rng);
        assert!(!first.cache_hit, "cold cache must miss");
        assert_eq!(first.response_ttl, 300);
        let second = p.query(NameId(1), 1e-9, 300, t0 + Duration::from_secs(50), &mut rng);
        assert!(second.cache_hit);
        assert!(second.response_ttl <= 250, "ttl must be decremented: {}", second.response_ttl);
        assert!(second.duration < first.duration);
    }

    #[test]
    fn expired_entries_miss_again() {
        let mut p = platform(crate::config::platform::LOCAL);
        let mut rng = StdRng::seed_from_u64(2);
        let t0 = Timestamp::from_secs(100);
        p.query(NameId(1), 1e-9, 60, t0, &mut rng);
        let later = p.query(NameId(1), 1e-9, 60, t0 + Duration::from_secs(120), &mut rng);
        assert!(!later.cache_hit);
    }

    #[test]
    fn popular_names_are_externally_warm() {
        let mut cf = platform(crate::config::platform::CLOUDFLARE);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0;
        for i in 0..1000u32 {
            // Distinct names so our own cache never helps.
            let o = cf.query(NameId(1000 + i), 0.01, 300, Timestamp::from_secs(i as u64), &mut rng);
            if o.cache_hit {
                hits += 1;
            }
        }
        assert!(hits > 900, "popular name on warm platform: {hits}/1000");
    }

    #[test]
    fn unpopular_names_are_cold() {
        let mut g = platform(crate::config::platform::GOOGLE);
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = 0;
        for i in 0..1000u32 {
            let o = g.query(NameId(1000 + i), 1e-6, 300, Timestamp::from_secs(i as u64), &mut rng);
            if o.cache_hit {
                hits += 1;
            }
        }
        assert!(hits < 50, "unpopular names should miss: {hits}/1000");
    }

    #[test]
    fn fanout_lowers_effective_hit_rate() {
        // Same (moderate) name popularity; many-backend platform should
        // see fewer *own-traffic* hits than a single-backend one.
        let mut rng = StdRng::seed_from_u64(5);
        let mut rates = Vec::new();
        for backends in [1usize, 64] {
            let mut cfg = WorkloadConfig::default().platforms[crate::config::platform::LOCAL].clone();
            cfg.backends = backends;
            cfg.external_warmth = 0.0;
            let mut p = ResolverPlatform::new(cfg);
            for q in 0..2000u64 {
                // One name re-queried every 10 s with a 300 s TTL.
                p.query(NameId(7), 0.0, 300, Timestamp::from_secs(q * 10), &mut rng);
            }
            rates.push(p.hit_rate());
        }
        assert!(rates[0] > 0.9, "single backend should stay warm: {}", rates[0]);
        assert!(rates[1] < rates[0] - 0.2, "fan-out must cool the cache: {rates:?}");
    }

    #[test]
    fn auth_delay_respects_cap() {
        let mut g = platform(crate::config::platform::GOOGLE);
        let cap_ms = g.cfg.auth_cap_ms;
        let rtt_budget_ms = 550.0; // rtt clamp upper bound + slack
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..500u32 {
            let o = g.query(NameId(50_000 + i), 1e-12, 60, Timestamp::from_secs(i as u64 * 100), &mut rng);
            assert!(!o.cache_hit);
            assert!(o.duration.as_millis_f64() < cap_ms + rtt_budget_ms);
        }
    }

    #[test]
    fn compact_drops_expired() {
        let mut p = platform(crate::config::platform::LOCAL);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..100u32 {
            p.query(NameId(i), 0.0, 60, Timestamp::from_secs(0), &mut rng);
        }
        p.compact(Timestamp::from_secs(1_000));
        let total: usize = p.backends.iter().map(|b| b.len()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn owns_and_addr() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = platform(crate::config::platform::GOOGLE);
        let a = p.addr(&mut rng);
        assert!(p.owns(a));
        assert!(!p.owns(Ipv4Addr::new(9, 9, 9, 9)));
    }
}
