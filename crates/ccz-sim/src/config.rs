//! Simulation configuration.
//!
//! Defaults are calibrated (at seed 42) so the analysis pipeline measures
//! values near the paper's headline numbers; EXPERIMENTS.md records the
//! fidelity actually achieved. Every mechanism the paper observes has an
//! explicit knob here, so the benches can also ablate them.

/// Output size knobs, separated from behavioural parameters so sweeps can
/// vary volume without touching behaviour.
#[derive(Debug, Clone)]
pub struct ScaleKnobs {
    /// Number of houses (the CCZ had roughly 100).
    pub houses: usize,
    /// Trace length in days (the paper used 7).
    pub days: f64,
    /// Multiplier on per-device activity rates. 1.0 approximates the CCZ's
    /// ~11 M connections/week; the default 0.1 keeps harness runs fast
    /// while leaving distributions unchanged.
    pub activity: f64,
}

impl ScaleKnobs {
    /// Trace length in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.days * 86_400.0
    }
}

/// Per-resolver-platform model parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Human name ("Local", "Google", ...).
    pub name: &'static str,
    /// Anycast/service addresses of the platform.
    pub addrs: Vec<[u8; 4]>,
    /// Median client↔resolver RTT in milliseconds.
    pub rtt_ms: f64,
    /// RTT jitter shape (log-normal sigma).
    pub rtt_sigma: f64,
    /// Number of independent backend caches queries are spread over
    /// (models frontend fan-out; more backends = colder caches).
    pub backends: usize,
    /// External-traffic warmth multiplier: scales the Poisson rate of
    /// background queries (from the platform's other users) that keep
    /// popular names cached. Zero for a resolver serving only this network.
    pub external_warmth: f64,
    /// Median authoritative-resolution delay added on a cache miss, ms.
    pub auth_delay_ms: f64,
    /// Authoritative delay shape (log-normal sigma).
    pub auth_sigma: f64,
    /// Hard cap on authoritative delay, ms (Google's serve-stale behaviour
    /// gives it a short tail; others are allowed longer).
    pub auth_cap_ms: f64,
}

/// The full workload model.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Volume knobs.
    pub scale: ScaleKnobs,

    // ---- name universe ----
    /// Number of distinct web services (each with a handful of hostnames).
    pub services: usize,
    /// Number of shared third-party services (ads/analytics/CDN hostnames
    /// embedded across many sites).
    pub shared_services: usize,
    /// Zipf exponent of service popularity.
    pub zipf_exponent: f64,
    /// TTL mixture: (seconds, weight).
    pub ttl_classes: Vec<(u32, f64)>,
    /// Fraction of services hosted on shared CDN addresses (several names
    /// resolving to one IP — the pairing-ambiguity mechanism).
    pub cohost_fraction: f64,
    /// Fraction of lookups answered with a CNAME chain ahead of the A records.
    pub cname_fraction: f64,

    // ---- house / device composition ----
    /// Probability a house routes every device through the ISP resolvers
    /// (the paper's hypothesised DNS-forwarder houses, ~16%).
    pub p_house_forwarder_only: f64,
    /// Probability a (non-forwarder) house has devices using OpenDNS.
    pub p_house_opendns: f64,
    /// Probability a (non-forwarder) house has devices using Cloudflare.
    pub p_house_cloudflare: f64,
    /// Probability a house runs a peer-to-peer client.
    pub p_house_p2p: f64,
    /// Probability a house contains a TP-Link-style device with a
    /// hard-coded (and retired) NTP server address.
    pub p_house_tplink_ntp: f64,
    /// Probability a house has an Ooma VoIP box (hard-coded NTP servers).
    pub p_house_ooma: f64,
    /// Probability a house has an AlarmNet-style security panel
    /// (hard-coded HTTPS endpoints).
    pub p_house_alarmnet: f64,

    // ---- stub-cache / TTL-violation model ----
    /// Probability a device reuses an expired cache entry instead of
    /// re-resolving (drives the paper's §5.2 violation rates).
    pub p_stale_reuse: f64,
    /// Maximum staleness a violating device tolerates, seconds.
    pub max_stale_secs: f64,
    /// Probability a page view also fires a lookup for a non-existent
    /// name (typos, dead links, software probing retired hostnames).
    /// NXDOMAIN responses carry no addresses, so these lookups never pair
    /// with a connection. Default 0 (the paper does not separate them);
    /// the `typo_traffic` scenario turns them on.
    pub p_nxdomain: f64,
    /// Probability a name use bypasses the device's stub cache entirely
    /// (a different process/browser with its own empty cache): the same
    /// house then re-queries a record within its TTL — exactly the
    /// duplication the paper's whole-house cache (§8) absorbs.
    pub p_stub_bypass: f64,

    // ---- browsing model ----
    /// Mean think time between browsing sessions per device, seconds
    /// (before diurnal modulation and the activity knob).
    pub session_gap_secs: f64,
    /// Mean pages per browsing session (geometric).
    pub pages_per_session: f64,
    /// Page dwell time: median seconds (log-normal).
    pub dwell_median_secs: f64,
    /// Embedded third-party/site object names per page (uniform range).
    pub embedded_names_per_page: (usize, usize),
    /// Links speculatively resolved per page (uniform range).
    pub prefetch_links_per_page: (usize, usize),
    /// Probability a prefetched link is clicked (paper: ~22 % of
    /// speculative lookups end up used).
    pub p_prefetch_click: f64,
    /// Probability an embedded name-use opens a second parallel connection.
    pub p_second_conn: f64,

    // ---- other apps ----
    /// Mean gap between background app polls per device, seconds.
    pub poll_gap_secs: f64,
    /// Mean gap between streaming sessions per streaming device, seconds.
    pub stream_gap_secs: f64,
    /// Mean streaming session length, seconds.
    pub stream_len_secs: f64,
    /// Gap between video segment fetches, seconds.
    pub stream_segment_gap_secs: f64,
    /// Mean gap between Android connectivity checks, seconds.
    pub connectivity_check_gap_secs: f64,
    /// Mean gap between P2P bursts (per P2P house), seconds.
    pub p2p_burst_gap_secs: f64,
    /// Connections per P2P burst (uniform range).
    pub p2p_burst_conns: (usize, usize),

    // ---- timing detail ----
    /// Application processing delay between a DNS answer arriving and the
    /// SYN leaving, milliseconds (log-normal median; keeps most blocked
    /// connections inside the paper's 20 ms knee).
    pub app_start_delay_ms: f64,
    /// Shape of the app start delay (its tail creates the 20–100 ms
    /// stragglers the paper's conservative threshold absorbs).
    pub app_start_sigma: f64,

    /// Resolver platform table: index 0 = Local ISP, 1 = Google,
    /// 2 = OpenDNS, 3 = Cloudflare (Table 1's rows).
    pub platforms: Vec<PlatformConfig>,
}

/// Platform table indices (fixed by convention).
pub mod platform {
    /// Local ISP resolvers.
    pub const LOCAL: usize = 0;
    /// Google Public DNS.
    pub const GOOGLE: usize = 1;
    /// OpenDNS.
    pub const OPENDNS: usize = 2;
    /// Cloudflare.
    pub const CLOUDFLARE: usize = 3;
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            scale: ScaleKnobs { houses: 100, days: 7.0, activity: 0.1 },

            services: 3_000,
            shared_services: 120,
            zipf_exponent: 0.95,
            // Weighted toward the short TTLs CDNs use; drives both cache
            // efficacy and the TTL-violation delay distribution.
            ttl_classes: vec![
                (30, 0.06),
                (60, 0.14),
                (300, 0.35),
                (3_600, 0.32),
                (86_400, 0.13),
            ],
            cohost_fraction: 0.35,
            cname_fraction: 0.30,

            p_house_forwarder_only: 0.16,
            p_house_opendns: 0.33,
            p_house_cloudflare: 0.045,
            p_house_p2p: 0.20,
            p_house_tplink_ntp: 0.25,
            p_house_ooma: 0.04,
            p_house_alarmnet: 0.10,

            p_stale_reuse: 0.70,
            max_stale_secs: 26_000.0,
            p_nxdomain: 0.0,
            p_stub_bypass: 0.05,

            session_gap_secs: 2_400.0,
            pages_per_session: 8.0,
            dwell_median_secs: 240.0,
            embedded_names_per_page: (4, 9),
            prefetch_links_per_page: (2, 4),
            p_prefetch_click: 0.62,
            p_second_conn: 0.25,

            poll_gap_secs: 1_200.0,
            stream_gap_secs: 8_400.0,
            stream_len_secs: 2_400.0,
            stream_segment_gap_secs: 35.0,
            connectivity_check_gap_secs: 1_500.0,
            p2p_burst_gap_secs: 1_700.0,
            p2p_burst_conns: (12, 55),

            app_start_delay_ms: 1.5,
            app_start_sigma: 1.0,

            platforms: vec![
                PlatformConfig {
                    name: "Local",
                    addrs: vec![[198, 51, 100, 53], [198, 51, 100, 54]],
                    rtt_ms: 2.0,
                    rtt_sigma: 0.08,
                    backends: 2,
                    // The two ISP resolvers also serve the rest of the
                    // ISP's customers; warmth beyond intra-CCZ sharing
                    // models that base (scale-independent calibration).
                    external_warmth: 3.6,
                    auth_delay_ms: 22.0,
                    auth_sigma: 0.7,
                    auth_cap_ms: 4_000.0,
                },
                PlatformConfig {
                    name: "Google",
                    addrs: vec![[8, 8, 8, 8], [8, 8, 4, 4]],
                    rtt_ms: 20.0,
                    rtt_sigma: 0.08,
                    // Heavy frontend fan-out: queries rarely land on a
                    // backend the name is warm in (paper: 23 % hit rate).
                    backends: 1_024,
                    external_warmth: 0.008,
                    auth_delay_ms: 55.0,
                    auth_sigma: 0.5,
                    // Serve-stale-style short tail (paper: Google's R
                    // distribution crosses below the others at p75).
                    auth_cap_ms: 350.0,
                    },
                PlatformConfig {
                    name: "OpenDNS",
                    addrs: vec![[208, 67, 222, 222], [208, 67, 220, 220]],
                    rtt_ms: 20.0,
                    rtt_sigma: 0.08,
                    backends: 6,
                    external_warmth: 1.0,
                    auth_delay_ms: 38.0,
                    auth_sigma: 0.7,
                    auth_cap_ms: 4_000.0,
                },
                PlatformConfig {
                    name: "Cloudflare",
                    addrs: vec![[1, 1, 1, 1], [1, 0, 0, 1]],
                    rtt_ms: 9.0,
                    rtt_sigma: 0.08,
                    backends: 2,
                    external_warmth: 60.0,
                    auth_delay_ms: 36.0,
                    auth_sigma: 0.7,
                    auth_cap_ms: 4_000.0,
                },
            ],
        }
    }
}

impl WorkloadConfig {
    /// A configuration sized for unit/integration tests: a handful of
    /// houses over a few hours, full activity so behaviours still occur.
    pub fn test_small() -> WorkloadConfig {
        WorkloadConfig {
            scale: ScaleKnobs { houses: 8, days: 0.25, activity: 1.0 },
            ..WorkloadConfig::default()
        }
    }

    /// Validate internal consistency (weights positive, probabilities in
    /// range, platform table shaped as the `platform` module expects).
    pub fn validate(&self) -> Result<(), String> {
        if self.scale.houses == 0 {
            return Err("houses must be positive".into());
        }
        if self.scale.days <= 0.0 || self.scale.activity <= 0.0 {
            return Err("days and activity must be positive".into());
        }
        if self.services == 0 || self.shared_services == 0 {
            return Err("name universe must be non-empty".into());
        }
        if self.ttl_classes.is_empty() || self.ttl_classes.iter().any(|(t, w)| *t == 0 || *w <= 0.0) {
            return Err("ttl_classes must be non-empty with positive entries".into());
        }
        for p in [
            self.cohost_fraction,
            self.cname_fraction,
            self.p_house_forwarder_only,
            self.p_house_opendns,
            self.p_house_cloudflare,
            self.p_house_p2p,
            self.p_stale_reuse,
            self.p_prefetch_click,
            self.p_second_conn,
            self.p_nxdomain,
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0,1]"));
            }
        }
        if self.platforms.len() != 4 {
            return Err("platform table must have the 4 canonical entries".into());
        }
        for p in &self.platforms {
            if p.addrs.is_empty() || p.backends == 0 {
                return Err(format!("platform {} malformed", p.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        WorkloadConfig::default().validate().unwrap();
        WorkloadConfig::test_small().validate().unwrap();
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = WorkloadConfig::default();
        c.scale.houses = 0;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::default();
        c.p_prefetch_click = 1.5;
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::default();
        c.platforms.pop();
        assert!(c.validate().is_err());

        let mut c = WorkloadConfig::default();
        c.ttl_classes.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn duration() {
        let s = ScaleKnobs { houses: 1, days: 2.0, activity: 1.0 };
        assert_eq!(s.duration_secs(), 172_800.0);
    }

    #[test]
    fn platform_indices_match_table() {
        let c = WorkloadConfig::default();
        assert_eq!(c.platforms[platform::LOCAL].name, "Local");
        assert_eq!(c.platforms[platform::GOOGLE].name, "Google");
        assert_eq!(c.platforms[platform::OPENDNS].name, "OpenDNS");
        assert_eq!(c.platforms[platform::CLOUDFLARE].name, "Cloudflare");
    }
}
