//! Ground-truth labels the simulator records alongside its observable
//! output.
//!
//! The analysis crate classifies connections using only what a passive
//! monitor can see (the paper's methodology). The simulator *knows* the
//! truth — which cache served each mapping, whether a record was stale,
//! which lookups were speculative — so integration tests can measure how
//! well the paper's heuristics recover reality, and the §8 cache
//! simulations can be validated.

use std::net::Ipv4Addr;
use zeek_lite::Timestamp;

/// Where a connection's DNS information actually came from — the
/// simulator's ground truth for the paper's five classes (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnClass {
    /// No DNS was involved (peer-to-peer, hard-coded addresses).
    NoDns,
    /// Served from the device's local cache, previously used.
    LocalCache,
    /// Served from a speculative (prefetched, not yet used) lookup.
    Prefetched,
    /// Blocked on a lookup answered from the shared resolver's cache.
    SharedCache,
    /// Blocked on a lookup that required authoritative resolution.
    Resolution,
}

impl ConnClass {
    /// The paper's symbol for the class.
    pub fn symbol(self) -> &'static str {
        match self {
            ConnClass::NoDns => "N",
            ConnClass::LocalCache => "LC",
            ConnClass::Prefetched => "P",
            ConnClass::SharedCache => "SC",
            ConnClass::Resolution => "R",
        }
    }
}

/// Ground truth for one connection, aligned by index with the emitted
/// connection records.
#[derive(Debug, Clone)]
pub struct TruthConn {
    /// Start time (matches the connection record's `ts`).
    pub ts: Timestamp,
    /// Originator (house) address.
    pub orig_addr: Ipv4Addr,
    /// Responder address.
    pub resp_addr: Ipv4Addr,
    /// Responder port.
    pub resp_port: u16,
    /// True class.
    pub class: ConnClass,
    /// The mapping used was past its TTL (only meaningful for
    /// `LocalCache`/`Prefetched`).
    pub stale: bool,
    /// Index into the DNS truth vector of the lookup this connection used,
    /// if any.
    pub dns_index: Option<usize>,
}

/// Ground truth for one DNS transaction, aligned by index with the emitted
/// DNS log.
#[derive(Debug, Clone)]
pub struct TruthDns {
    /// Query time.
    pub ts: Timestamp,
    /// Whether the *shared resolver* answered from its cache (SC) rather
    /// than contacting authoritative servers (R).
    pub shared_cache_hit: bool,
    /// Whether the lookup was speculative (issued ahead of need).
    pub speculative: bool,
    /// Resolver platform index (into the platform table) the query went to.
    pub platform: usize,
}

/// All ground truth from one run.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Per-connection truth, in emission order (pre-sort; match by
    /// timestamp + endpoints when comparing against sorted logs).
    pub conns: Vec<TruthConn>,
    /// Per-DNS-transaction truth, in emission order.
    pub dns: Vec<TruthDns>,
}

impl GroundTruth {
    /// Count of connections with the given true class.
    pub fn class_count(&self, class: ConnClass) -> usize {
        self.conns.iter().filter(|c| c.class == class).count()
    }

    /// Share (0..1) of connections with the given true class.
    pub fn class_share(&self, class: ConnClass) -> f64 {
        if self.conns.is_empty() {
            return 0.0;
        }
        self.class_count(class) as f64 / self.conns.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols() {
        assert_eq!(ConnClass::NoDns.symbol(), "N");
        assert_eq!(ConnClass::LocalCache.symbol(), "LC");
        assert_eq!(ConnClass::Prefetched.symbol(), "P");
        assert_eq!(ConnClass::SharedCache.symbol(), "SC");
        assert_eq!(ConnClass::Resolution.symbol(), "R");
    }

    #[test]
    fn shares() {
        let mut gt = GroundTruth::default();
        assert_eq!(gt.class_share(ConnClass::NoDns), 0.0);
        for class in [ConnClass::NoDns, ConnClass::NoDns, ConnClass::LocalCache, ConnClass::Resolution] {
            gt.conns.push(TruthConn {
                ts: Timestamp::ZERO,
                orig_addr: Ipv4Addr::UNSPECIFIED,
                resp_addr: Ipv4Addr::UNSPECIFIED,
                resp_port: 0,
                class,
                stale: false,
                dns_index: None,
            });
        }
        assert_eq!(gt.class_count(ConnClass::NoDns), 2);
        assert!((gt.class_share(ConnClass::NoDns) - 0.5).abs() < 1e-12);
    }
}
