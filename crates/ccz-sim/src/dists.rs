//! Random distributions the workload model needs, implemented from scratch
//! on top of `xkit::rng`'s uniform primitives (no external distribution
//! crate is a dependency of this workspace).

use xkit::rng::{Rng, RngExt};

/// Log-normal distribution parameterised by the *median* and the shape
/// `sigma` (standard deviation of the underlying normal). Medians are how
/// measurement papers report skewed delays, so this parameterisation keeps
/// the config readable.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// ln(median).
    mu: f64,
    /// Shape.
    sigma: f64,
}

impl LogNormal {
    /// A log-normal with the given median and shape.
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0 && sigma >= 0.0);
        LogNormal { mu: median.ln(), sigma }
    }

    /// Draw a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Draw a sample clamped to `[lo, hi]` (delay models need bounded
    /// tails so one outlier cannot dominate a small run).
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

/// One draw from the standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Bounded Pareto distribution — heavy-tailed sizes with a hard cap.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    /// Shape (smaller = heavier tail). Typical traffic models use 1.0–1.5.
    alpha: f64,
    /// Minimum value.
    lo: f64,
    /// Maximum value.
    hi: f64,
}

impl BoundedPareto {
    /// A bounded Pareto on `[lo, hi]` with shape `alpha`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> BoundedPareto {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        BoundedPareto { alpha, lo, hi }
    }

    /// Draw a sample (inverse-CDF method).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the truncated Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Exponential distribution with the given mean (inter-arrival times).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// An exponential with the given mean.
    pub fn new(mean: f64) -> Exponential {
        assert!(mean > 0.0);
        Exponential { mean }
    }

    /// Draw a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -self.mean * u.ln()
    }
}

/// Zipf-like sampler over ranks `0..n` using the rejection-inversion-free
/// approximate inverse-CDF for the Zipf–Mandelbrot family. Exact enough
/// for popularity modelling and O(1) per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    s: f64,
    /// Precomputed normalising integral H(n).
    h_n: f64,
}

impl Zipf {
    /// A Zipf sampler over `n` items with exponent `s` (s ≠ 1 handled via
    /// the generalised harmonic integral; s near 1 is fine).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0 && s > 0.0);
        Zipf { n, s, h_n: Self::h(n as f64 + 0.5, s) }
    }

    /// The continuous approximation of the generalised harmonic number:
    /// ∫ x^-s dx from 0.5 to x.
    fn h(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            (x / 0.5).ln()
        } else {
            (x.powf(1.0 - s) - 0.5f64.powf(1.0 - s)) / (1.0 - s)
        }
    }

    fn h_inv(&self, y: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            0.5 * y.exp()
        } else {
            ((1.0 - self.s) * y + 0.5f64.powf(1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        let x = self.h_inv(u * self.h_n);
        (x.round() as usize).clamp(1, self.n) - 1
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the rank space is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Weighted choice over a small static set.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use xkit::rng::StdRng;
    use xkit::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn lognormal_median_is_close() {
        let d = LogNormal::from_median(8.0, 0.8);
        let mut r = rng();
        let mut v: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let median = v[v.len() / 2];
        assert!((median - 8.0).abs() < 0.5, "median = {median}");
        assert!(v.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn lognormal_clamped_respects_bounds() {
        let d = LogNormal::from_median(10.0, 2.0);
        let mut r = rng();
        for _ in 0..5_000 {
            let x = d.sample_clamped(&mut r, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds_and_is_skewed() {
        let d = BoundedPareto::new(1.2, 1_000.0, 1e9);
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|x| (1_000.0..=1e9).contains(x)));
        let mut v = samples.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        let median = v[v.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean > 2.0 * median, "heavy tail expected: mean {mean}, median {median}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(30.0);
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(1_000, 0.95);
        let mut r = rng();
        let mut counts = vec![0usize; 1_000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Head heaviness: top-10 ranks should hold a large share.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 15_000, "head = {head}");
    }

    #[test]
    fn zipf_covers_full_range() {
        let z = Zipf::new(50, 0.9);
        let mut r = rng();
        let mut seen = vec![false; 50];
        for _ in 0..50_000 {
            seen[z.sample(&mut r)] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 45);
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [7.0, 2.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / 50_000.0 - 0.7).abs() < 0.02);
        assert!((counts[2] as f64 / 50_000.0 - 0.1).abs() < 0.01);
    }
}
