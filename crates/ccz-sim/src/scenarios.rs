//! Prebuilt workload scenarios.
//!
//! The default [`WorkloadConfig`] is calibrated against the paper's CCZ
//! measurements; these presets bend single mechanisms to explore how the
//! paper's conclusions shift under different populations — the kind of
//! what-if a downstream user reaches for first.

use crate::config::{ScaleKnobs, WorkloadConfig};

/// The paper's setting: 100 houses, one week, at the given activity
/// fraction (1.0 ≈ the CCZ's ~11 M connections; heavy).
pub fn paper_week(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 100, days: 7.0, activity },
        ..WorkloadConfig::default()
    }
}

/// A neighbourhood of cord-cutters: streaming dominates, little P2P.
/// Expect the LC share to grow (segment fetches re-use cached names) and
/// the blocked share to shrink.
pub fn streaming_heavy(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        stream_gap_secs: 3_000.0,
        stream_len_secs: 4_800.0,
        p_house_p2p: 0.05,
        ..paper_week(activity)
    }
}

/// A P2P-heavy population: the N class balloons, and DNS matters for a
/// smaller slice of traffic.
pub fn p2p_heavy(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        p_house_p2p: 0.6,
        p2p_burst_gap_secs: 700.0,
        p2p_burst_conns: (20, 80),
        ..paper_week(activity)
    }
}

/// Every house pinned to the ISP resolvers (the paper's hypothesised
/// forwarder-intercept configuration, network-wide). Isolates the local
/// platform's behaviour.
pub fn local_only(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        p_house_forwarder_only: 1.0,
        p_house_opendns: 0.0,
        p_house_cloudflare: 0.0,
        ..paper_week(activity)
    }
}

/// A low-TTL world (CDNs pushing 30–60 s TTLs everywhere): caching decays
/// and the blocked share climbs — the counterfactual behind the paper's
/// §8 refresh costs.
pub fn short_ttl_world(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        ttl_classes: vec![(30, 0.45), (60, 0.35), (300, 0.20)],
        ..paper_week(activity)
    }
}

/// Devices that perfectly honour TTLs (no stale reuse): the §5.2
/// violation rates drop to zero and the blocked share rises.
pub fn ttl_honest(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        p_stale_reuse: 0.0,
        ..paper_week(activity)
    }
}

/// Two percent of page views also fire a dead-name lookup (typos, dead
/// links): exercises NXDOMAIN handling end to end without changing the
/// paper-calibrated mechanisms.
pub fn typo_traffic(activity: f64) -> WorkloadConfig {
    WorkloadConfig {
        p_nxdomain: 0.02,
        ..paper_week(activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    fn shrink(mut cfg: WorkloadConfig) -> WorkloadConfig {
        cfg.scale = ScaleKnobs { houses: 6, days: 0.08, activity: 1.0 };
        cfg.services = 250;
        cfg.shared_services = 40;
        cfg
    }

    #[test]
    fn all_scenarios_validate_and_run() {
        for cfg in [
            paper_week(0.1),
            streaming_heavy(0.1),
            p2p_heavy(0.1),
            local_only(0.1),
            short_ttl_world(0.1),
            ttl_honest(0.1),
            typo_traffic(0.1),
        ] {
            cfg.validate().unwrap();
            let out = Simulation::new(shrink(cfg), 3).unwrap().run();
            assert!(!out.logs.conns.is_empty());
        }
    }

    #[test]
    fn p2p_heavy_raises_no_dns_share() {
        let base = Simulation::new(shrink(paper_week(1.0)), 9).unwrap().run();
        let p2p = Simulation::new(shrink(p2p_heavy(1.0)), 9).unwrap().run();
        let share = |o: &crate::SimOutput| o.truth.class_share(crate::ConnClass::NoDns);
        assert!(
            share(&p2p) > 2.0 * share(&base),
            "p2p scenario should balloon N: {:.3} vs {:.3}",
            share(&p2p),
            share(&base)
        );
    }

    #[test]
    fn local_only_uses_single_platform() {
        let out = Simulation::new(shrink(local_only(1.0)), 5).unwrap().run();
        for (name, queries, _) in &out.platform_stats {
            if name != "Local" {
                assert_eq!(*queries, 0, "{name} should be unused");
            }
        }
    }

    #[test]
    fn ttl_honest_has_no_stale_conns() {
        let out = Simulation::new(shrink(ttl_honest(1.0)), 5).unwrap().run();
        assert!(out.truth.conns.iter().all(|c| !c.stale));
    }

    #[test]
    fn typo_traffic_produces_unpaired_nxdomain() {
        let out = Simulation::new(shrink(typo_traffic(1.0)), 5).unwrap().run();
        let nx: Vec<_> = out
            .logs
            .dns
            .iter()
            .filter(|t| t.rcode == Some(dns_wire::Rcode::NxDomain))
            .collect();
        assert!(!nx.is_empty(), "typo scenario must emit NXDOMAIN lookups");
        for t in nx {
            assert!(t.answers.is_empty());
            assert!(t.rtt.is_some());
        }
    }

    #[test]
    fn short_ttl_world_blocks_more() {
        let base = Simulation::new(shrink(paper_week(1.0)), 11).unwrap().run();
        let short = Simulation::new(shrink(short_ttl_world(1.0)), 11).unwrap().run();
        let blocked = |o: &crate::SimOutput| {
            o.truth.class_share(crate::ConnClass::SharedCache)
                + o.truth.class_share(crate::ConnClass::Resolution)
        };
        assert!(
            blocked(&short) > blocked(&base),
            "short TTLs should force more blocking: {:.3} vs {:.3}",
            blocked(&short),
            blocked(&base)
        );
    }
}
