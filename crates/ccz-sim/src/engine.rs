//! The discrete-event engine tying the workload model together.

use crate::config::{platform, WorkloadConfig};
use crate::dists::{BoundedPareto, Exponential, LogNormal};
use crate::names::{NameId, NameUniverse, ServiceId};
use crate::output::{ConnEmission, ConnFate, DnsEmission, LogSink, PcapSink, Sink};
use crate::resolvers::ResolverPlatform;
use crate::truth::{ConnClass, GroundTruth, TruthConn, TruthDns};
use xkit::obs::Metrics;
use xkit::rng::StdRng;
use xkit::rng::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xkit::collections::FastMap;
use std::io::{self, Write};
use std::net::Ipv4Addr;
use zeek_lite::{Duration, Logs, Proto, Timestamp};

/// Capture epoch: 2019-02-06 00:00:00 UTC, the start of the paper's week.
pub const EPOCH_UNIX: u64 = 1_549_411_200;

/// Hard-coded server addresses (the paper's §5.1 examples).
mod hardcoded {
    use std::net::Ipv4Addr;
    /// The retired public NTP server TP-Link devices keep contacting.
    pub const TPLINK_NTP: Ipv4Addr = Ipv4Addr::new(192, 0, 32, 10);
    /// Ooma's two hard-coded NTP servers.
    pub const OOMA_NTP: [Ipv4Addr; 2] = [Ipv4Addr::new(208, 83, 246, 20), Ipv4Addr::new(208, 83, 246, 21)];
    /// AlarmNet's two monitoring endpoints.
    pub const ALARMNET: [Ipv4Addr; 2] = [Ipv4Addr::new(204, 141, 57, 10), Ipv4Addr::new(204, 141, 57, 11)];
}

/// What one simulation run produced.
pub struct SimOutput {
    /// Observable logs (direct mode) — what the monitor would have seen.
    pub logs: Logs,
    /// Ground truth aligned with the logs (conn uid = truth index).
    pub truth: GroundTruth,
    /// Per-platform (name, queries, cache hits) counters.
    pub platform_stats: Vec<(String, u64, u64)>,
    /// Workload-side obs snapshot: `sim.*` event/emission counters and
    /// `resolver.<platform>.*` query/hit counters, merged in shard order
    /// so the snapshot is identical for any thread count.
    pub metrics: Metrics,
}

/// Houses per simulation shard — the unit of parallelism. The partition
/// is a pure function of the house count (never of the thread count), so
/// a run's output is bit-identical however many workers execute it; small
/// test configs collapse to a single shard.
const HOUSES_PER_SHARD: usize = 25;

/// Balanced contiguous house ranges, one per shard.
fn shard_spans(houses: usize) -> Vec<std::ops::Range<usize>> {
    let shards = houses.div_ceil(HOUSES_PER_SHARD).max(1);
    let base = houses / shards;
    let rem = houses % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut lo = 0;
    for k in 0..shards {
        let len = base + usize::from(k < rem);
        spans.push(lo..lo + len);
        lo += len;
    }
    spans
}

/// Immutable world state shared read-only by every shard: the name
/// universe and the P2P peer pool, generated once from the master seed.
/// The master RNG's post-generation state is the base each shard's
/// independent stream is split from.
struct SharedWorld {
    names: NameUniverse,
    p2p_peers: Vec<Ipv4Addr>,
    base_rng: StdRng,
}

impl SharedWorld {
    fn prepare(cfg: &WorkloadConfig, seed: u64) -> SharedWorld {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = NameUniverse::generate(cfg, &mut rng);
        let p2p_peers = (0..2_000)
            .map(|_| {
                // Random "public" peers well away from our other ranges.
                Ipv4Addr::from(0x3A00_0000u32 + rng.random_range(0..0x00FF_FFFFu32))
            })
            .collect();
        SharedWorld { names, p2p_peers, base_rng: rng }
    }
}

/// A configured simulation; [`run`](Simulation::run) is a pure function of
/// (config, seed). The thread count only changes wall-clock time, never
/// the output: houses are partitioned into fixed shards with independent
/// RNG streams, and shard outputs merge in partition order.
pub struct Simulation {
    cfg: WorkloadConfig,
    seed: u64,
    threads: usize,
}

impl Simulation {
    /// Validate the config and build a simulation.
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Result<Simulation, String> {
        cfg.validate()?;
        Ok(Simulation { cfg, seed, threads: 0 })
    }

    /// Set the worker-thread count for sharded runs (0 = one per core).
    /// Output is bit-identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Simulation {
        self.threads = threads;
        self
    }

    /// Drive every shard (in parallel when threads allow) and merge the
    /// ground truth in shard order. Returns the per-shard sinks in that
    /// same order, plus merged truth and summed platform stats. The
    /// merged truth's dns indices point into the concatenated emission
    /// order.
    fn drive_all<S, F>(&self, make_sink: F) -> (Vec<S>, GroundTruth, Vec<(String, u64, u64)>, Metrics)
    where
        S: Sink + Send,
        F: Fn() -> S + Sync,
    {
        let shared = SharedWorld::prepare(&self.cfg, self.seed);
        let spans = shard_spans(self.cfg.scale.houses);
        let parts = xkit::par::par_indexed(self.threads, spans.len(), |k| {
            let mut sink = make_sink();
            let (truth, stats, metrics) =
                Engine::drive_shard(&self.cfg, &shared, k as u64, spans[k].clone(), &mut sink);
            (sink, truth, stats, metrics)
        });
        let mut sinks = Vec::with_capacity(parts.len());
        let mut truth = GroundTruth::default();
        let mut platform_stats: Vec<(String, u64, u64)> = Vec::new();
        let mut metrics = Metrics::new();
        for (sink, mut shard_truth, stats, shard_metrics) in parts {
            metrics.merge(&shard_metrics);
            let dns_off = truth.dns.len();
            for tc in &mut shard_truth.conns {
                if let Some(di) = tc.dns_index {
                    tc.dns_index = Some(di + dns_off);
                }
            }
            truth.conns.extend(shard_truth.conns);
            truth.dns.extend(shard_truth.dns);
            if platform_stats.is_empty() {
                platform_stats = stats;
            } else {
                for (acc, s) in platform_stats.iter_mut().zip(stats) {
                    acc.1 += s.1;
                    acc.2 += s.2;
                }
            }
            sinks.push(sink);
        }
        (sinks, truth, platform_stats, metrics)
    }

    /// Run in direct-log mode.
    pub fn run(&self) -> SimOutput {
        let (sinks, mut truth, platform_stats, metrics) = self.drive_all(LogSink::new);
        let mut merged = LogSink::new();
        for s in sinks {
            merged.absorb(s);
        }
        let (logs, dns_perm) = merged.into_logs_and_dns_perm();
        // Emission order is only approximately time-ordered; remap the
        // ground truth through the sort so truth.dns[i] corresponds to
        // logs.dns[i] and every dns_index points into the sorted log.
        let mut remapped: Vec<Option<crate::truth::TruthDns>> = vec![None; truth.dns.len()];
        for (emission_idx, td) in truth.dns.into_iter().enumerate() {
            remapped[dns_perm[emission_idx]] = Some(td);
        }
        truth.dns = remapped.into_iter().map(|t| t.expect("bijection")).collect();
        for tc in &mut truth.conns {
            if let Some(di) = tc.dns_index {
                tc.dns_index = Some(dns_perm[di]);
            }
        }
        SimOutput { logs, truth, platform_stats, metrics }
    }

    /// Run in packet mode: write a pcap capture of the whole trace to
    /// `out` and return the ground truth plus the frame count. Feed the
    /// bytes to [`zeek_lite::Monitor::process_pcap`] to obtain logs the
    /// hard way.
    pub fn run_pcap<W: Write>(&self, out: W, snaplen: u32) -> io::Result<(GroundTruth, u64)> {
        self.run_pcap_observed(out, snaplen).map(|(truth, frames, _)| (truth, frames))
    }

    /// Packet mode with the workload-side obs snapshot alongside: the
    /// shard-merged `sim.*`/`resolver.*` counters plus
    /// `sim.frames_written` for the capture itself.
    pub fn run_pcap_observed<W: Write>(
        &self,
        out: W,
        snaplen: u32,
    ) -> io::Result<(GroundTruth, u64, Metrics)> {
        let (sinks, truth, _, mut metrics) = self.drive_all(PcapSink::new);
        let mut merged = PcapSink::new();
        for s in sinks {
            merged.absorb(s);
        }
        let frames = merged.write_pcap(out, snaplen)?;
        metrics.add("sim.frames_written", frames);
        Ok((truth, frames, metrics))
    }

    /// Packet mode over the in-memory ring: expand and time-sort the
    /// frames exactly like [`Simulation::run_pcap`], then push each
    /// record straight into `sink` — no pcap serialization, no parse on
    /// the other side. Blocks on a full ring when the sink's policy says
    /// to, so run the consumer concurrently; records rejected by the
    /// ring (drop policy / oversize) are counted in the sink's `dropped`.
    ///
    /// Returns the ground truth, the record count offered to the ring,
    /// and the same metrics snapshot as [`Simulation::run_pcap_observed`]
    /// (`sim.frames_written` counts offered records, so a lossless run is
    /// metric-identical to the file backend).
    pub fn run_ring(
        &self,
        sink: &mut pcapio::RingSink,
    ) -> (GroundTruth, u64, Metrics) {
        let (sinks, truth, _, mut metrics) = self.drive_all(PcapSink::new);
        let mut merged = PcapSink::new();
        for s in sinks {
            merged.absorb(s);
        }
        let snaplen = sink.snaplen();
        let frames = merged.emit_records(snaplen, |ts_nanos, orig_len, data| {
            sink.push(ts_nanos, orig_len, data);
        });
        metrics.add("sim.frames_written", frames);
        (truth, frames, metrics)
    }
}

// ---------------------------------------------------------------------
// Internal model state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct StubEntry {
    completed: Timestamp,
    expires: Timestamp,
    used: bool,
    dns_index: usize,
    platform: usize,
    addr: Ipv4Addr,
    cdn_hosted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceKind {
    /// Laptop/desktop: browsing, polling, streaming.
    Computer,
    /// Android phone: browsing (via Google DNS) and connectivity checks.
    Android,
    /// DNS-using IoT gadget phoning home.
    Iot,
}

struct Device {
    kind: DeviceKind,
    /// Resolver platform index for this device's lookups.
    platform: usize,
    /// Multiplier on the browsing session gap (phones browse less).
    browse_gap: f64,
    /// Per-device stub cache. `FastMap` (FxHash) because this map
    /// is hit several times per name use and is only ever addressed
    /// by key — never iterated (`xkit::collections` determinism rule).
    stub: FastMap<NameId, StubEntry>,
    violates_ttl: bool,
    poll_names: Vec<NameId>,
    iot_name: Option<NameId>,
    streams: bool,
}

struct House {
    addr: Ipv4Addr,
    devices: Vec<Device>,
    /// Services the household frequents — shared across its devices.
    /// Different devices resolving the same favourite within one TTL is
    /// the duplication a whole-house cache (paper §8) would absorb.
    favorites: Vec<ServiceId>,
    next_port: u16,
    next_dns_id: u16,
}

impl House {
    fn port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if p >= 59_999 { 10_000 } else { p + 1 };
        p
    }

    fn dns_id(&mut self) -> u16 {
        let id = self.next_dns_id;
        self.next_dns_id = self.next_dns_id.wrapping_add(1);
        id
    }
}

/// Events driving the model. Cheap to copy except for prefetch lists.
enum Ev {
    BrowseSession { h: u32, d: u32 },
    /// Resolve-and-connect for one name at this instant.
    NameUse { h: u32, d: u32, name: NameId, profile: Profile },
    /// Speculative resolution only.
    Prefetch { h: u32, d: u32, name: NameId },
    PageView { h: u32, d: u32, svc: ServiceId, pages_left: u32, via_prefetch: Option<NameId> },
    Poll { h: u32, d: u32 },
    StreamStart { h: u32, d: u32 },
    StreamSegment { h: u32, d: u32, name: NameId, until: Timestamp },
    ConnCheck { h: u32, d: u32 },
    P2pBurst { h: u32 },
    IotBeat { h: u32, d: u32 },
    NtpProbe { h: u32, dst: Ipv4Addr, mean_gap: f64 },
    AlarmBeat { h: u32 },
    Compact,
}

struct HeapEntry {
    ts: Timestamp,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

/// Profile of a connection to be created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Profile {
    PageMain,
    WebObject,
    StreamSegment,
    Poll,
    ConnCheck,
    IotBeat,
    P2pTcp,
    P2pUdp,
}

struct Engine<'a, S: Sink> {
    cfg: &'a WorkloadConfig,
    rng: StdRng,
    names: &'a NameUniverse,
    /// This shard's resolver platform instances. Semantically each shard's
    /// houses land on a distinct anycast frontend group of the platform;
    /// sharing with the platform's users outside the shard rides on the
    /// external-warmth model.
    platforms: Vec<ResolverPlatform>,
    houses: Vec<House>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    sink: &'a mut S,
    truth: GroundTruth,
    end: Timestamp,
    seq: u64,
    /// Events actually processed (popped within the trace window); plain
    /// u64s here, folded into an obs snapshot once per shard.
    events: u64,
    nxdomains: u64,
    /// Reusable answer-address buffer: every lookup borrows this slice
    /// into its [`DnsEmission`] instead of allocating a fresh `Vec`.
    addr_scratch: Vec<Ipv4Addr>,
    /// Reusable embedded-name buffer for page views (same idea).
    name_scratch: Vec<NameId>,
    // Cached distributions.
    dwell: LogNormal,
    app_delay: LogNormal,
    server_rtt: LogNormal,
    web_bytes: BoundedPareto,
    rate: LogNormal,
    p2p_peers: &'a [Ipv4Addr],
}

impl<'a, S: Sink> Engine<'a, S> {
    /// Drive one shard: the houses in `span` (global indices — addresses,
    /// ports and DNS ids stay partition-invariant), on an RNG stream split
    /// off the master state by shard index.
    fn drive_shard(
        cfg: &'a WorkloadConfig,
        shared: &'a SharedWorld,
        shard: u64,
        span: std::ops::Range<usize>,
        sink: &'a mut S,
    ) -> (GroundTruth, Vec<(String, u64, u64)>, Metrics) {
        let houses_in_span = span.len() as u64;
        let rng = shared.base_rng.split(shard);
        let platforms: Vec<ResolverPlatform> =
            cfg.platforms.iter().cloned().map(ResolverPlatform::new).collect();
        let end = Timestamp::from_secs(EPOCH_UNIX) + Duration::from_secs_f64(cfg.scale.duration_secs());
        let mut e = Engine {
            cfg,
            names: &shared.names,
            platforms,
            houses: Vec::new(),
            heap: BinaryHeap::new(),
            sink,
            truth: GroundTruth::default(),
            end,
            seq: 0,
            events: 0,
            nxdomains: 0,
            addr_scratch: Vec::new(),
            name_scratch: Vec::new(),
            dwell: LogNormal::from_median(cfg.dwell_median_secs, 1.1),
            app_delay: LogNormal::from_median(cfg.app_start_delay_ms, cfg.app_start_sigma),
            server_rtt: LogNormal::from_median(25.0, 0.5),
            web_bytes: BoundedPareto::new(1.15, 2_000.0, 5e8),
            rate: LogNormal::from_median(12e6, 1.0),
            p2p_peers: &shared.p2p_peers,
            rng,
        };
        e.setup(span);
        e.run_loop();
        let stats: Vec<(String, u64, u64)> = e
            .platforms
            .iter()
            .map(|p| (p.cfg.name.to_string(), p.queries, p.hits))
            .collect();
        let mut m = Metrics::new();
        m.add("sim.shards", 1);
        m.add("sim.houses", houses_in_span);
        m.add("sim.events", e.events);
        m.add("sim.conns", e.truth.conns.len() as u64);
        m.add("sim.dns_lookups", e.truth.dns.len() as u64);
        m.add("sim.nxdomains", e.nxdomains);
        for (name, queries, hits) in &stats {
            let key = name.to_ascii_lowercase();
            m.add(&format!("resolver.{key}.queries"), *queries);
            m.add(&format!("resolver.{key}.hits"), *hits);
        }
        (e.truth, stats, m)
    }

    // ---------------- setup ----------------

    fn setup(&mut self, span: std::ops::Range<usize>) {
        let start = Timestamp::from_secs(EPOCH_UNIX);
        for hi in span {
            let house_addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 77, 0, 0)) + hi as u32 + 1);
            let forwarder_only = self.rng.random_bool(self.cfg.p_house_forwarder_only);
            let opendns_house = !forwarder_only && self.rng.random_bool(self.cfg.p_house_opendns);
            let cloudflare_house = !forwarder_only && !opendns_house && self.rng.random_bool(self.cfg.p_house_cloudflare);
            let p2p = self.rng.random_bool(self.cfg.p_house_p2p);
            let favorites: Vec<ServiceId> = (0..15)
                .map(|_| self.names.pick_service(&mut self.rng))
                .collect();
            let mut devices = Vec::new();

            let n_computers = 1 + self.rng.random_range(0..3usize);
            for ci in 0..n_computers {
                let plat = if forwarder_only {
                    platform::LOCAL
                } else if cloudflare_house {
                    platform::CLOUDFLARE
                } else if opendns_house && (ci == 0 || self.rng.random_bool(0.15)) {
                    platform::OPENDNS
                } else {
                    platform::LOCAL
                };
                devices.push(self.make_device(DeviceKind::Computer, plat, &favorites));
            }
            let n_android = crate::dists::weighted_index(&mut self.rng, &[0.05, 0.55, 0.40]);
            for _ in 0..n_android {
                let plat = if forwarder_only { platform::LOCAL } else { platform::GOOGLE };
                devices.push(self.make_device(DeviceKind::Android, plat, &favorites));
            }
            if self.rng.random_bool(0.5) {
                let plat = if forwarder_only { platform::LOCAL } else { platform::LOCAL };
                devices.push(self.make_device(DeviceKind::Iot, plat, &favorites));
            }

            let h = self.houses.len() as u32;
            self.houses.push(House {
                addr: house_addr,
                devices,
                favorites,
                next_port: 10_000 + ((hi as u32 * 971) % 40_000) as u16,
                next_dns_id: (hi as u16).wrapping_mul(257),
            });

            // Initial per-device events, phase-randomised.
            let n_dev = self.houses[h as usize].devices.len();
            for d in 0..n_dev {
                let kind = self.houses[h as usize].devices[d].kind;
                let streams = self.houses[h as usize].devices[d].streams;
                match kind {
                    DeviceKind::Computer => {
                        let t0 = start + self.uniform_dur(0.0, 2.0 * self.cfg.session_gap_secs / self.cfg.scale.activity);
                        self.schedule(t0, Ev::BrowseSession { h, d: d as u32 });
                        let tp = start + self.uniform_dur(0.0, self.cfg.poll_gap_secs / self.cfg.scale.activity);
                        self.schedule(tp, Ev::Poll { h, d: d as u32 });
                        if streams {
                            let tv = start + self.uniform_dur(0.0, self.cfg.stream_gap_secs / self.cfg.scale.activity);
                            self.schedule(tv, Ev::StreamStart { h, d: d as u32 });
                        }
                    }
                    DeviceKind::Android => {
                        let t0 = start + self.uniform_dur(0.0, 3.0 * self.cfg.session_gap_secs / self.cfg.scale.activity);
                        self.schedule(t0, Ev::BrowseSession { h, d: d as u32 });
                        let tc = start + self.uniform_dur(0.0, self.cfg.connectivity_check_gap_secs / self.cfg.scale.activity);
                        self.schedule(tc, Ev::ConnCheck { h, d: d as u32 });
                        if streams {
                            let tv = start + self.uniform_dur(0.0, self.cfg.stream_gap_secs / self.cfg.scale.activity);
                            self.schedule(tv, Ev::StreamStart { h, d: d as u32 });
                        }
                    }
                    DeviceKind::Iot => {
                        let ti = start + self.uniform_dur(0.0, 600.0 / self.cfg.scale.activity);
                        self.schedule(ti, Ev::IotBeat { h, d: d as u32 });
                    }
                }
            }
            if p2p {
                let t = start + self.uniform_dur(0.0, self.cfg.p2p_burst_gap_secs / self.cfg.scale.activity);
                self.schedule(t, Ev::P2pBurst { h });
            }
            if self.rng.random_bool(self.cfg.p_house_tplink_ntp) {
                let t = start + self.uniform_dur(0.0, 800.0 / self.cfg.scale.activity);
                self.schedule(t, Ev::NtpProbe { h, dst: hardcoded::TPLINK_NTP, mean_gap: 800.0 });
            }
            if self.rng.random_bool(self.cfg.p_house_ooma) {
                for dst in hardcoded::OOMA_NTP {
                    let t = start + self.uniform_dur(0.0, 3_000.0 / self.cfg.scale.activity);
                    self.schedule(t, Ev::NtpProbe { h, dst, mean_gap: 3_000.0 });
                }
            }
            if self.rng.random_bool(self.cfg.p_house_alarmnet) {
                let t = start + self.uniform_dur(0.0, 600.0 / self.cfg.scale.activity);
                self.schedule(t, Ev::AlarmBeat { h });
            }
        }
        self.schedule(start + Duration::from_secs(3_600), Ev::Compact);
    }

    fn make_device(&mut self, kind: DeviceKind, plat: usize, favorites: &[ServiceId]) -> Device {
        // Household members poll overlapping services (same mail/chat
        // providers), mostly drawn from the shared favourites.
        let poll_names = (0..1 + self.rng.random_range(0..3usize))
            .map(|_| {
                let svc = if self.rng.random_bool(0.6) {
                    favorites[self.rng.random_range(0..favorites.len())]
                } else {
                    self.names.pick_service(&mut self.rng)
                };
                self.names.primary(svc)
            })
            .collect();
        let iot_name = if kind == DeviceKind::Iot {
            let svc = self.names.pick_service(&mut self.rng);
            Some(self.names.primary(svc))
        } else {
            None
        };
        Device {
            kind,
            platform: plat,
            browse_gap: if kind == DeviceKind::Android { 7.0 } else { 1.0 },
            stub: FastMap::default(),
            violates_ttl: self.rng.random_bool(0.55),
            poll_names,
            iot_name,
            streams: match kind {
                DeviceKind::Computer => self.rng.random_bool(0.5),
                DeviceKind::Android => self.rng.random_bool(0.12),
                DeviceKind::Iot => false,
            },
        }
    }

    // ---------------- event loop ----------------

    fn run_loop(&mut self) {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let t = entry.ts;
            if t > self.end {
                continue;
            }
            self.events += 1;
            match entry.ev {
                Ev::BrowseSession { h, d } => self.ev_browse_session(h, d, t),
                Ev::NameUse { h, d, name, profile } => self.use_and_connect(h, d, name, t, profile),
                Ev::Prefetch { h, d, name } => self.prefetch(h, d, name, t),
                Ev::PageView { h, d, svc, pages_left, via_prefetch } => {
                    self.ev_page_view(h, d, svc, pages_left, via_prefetch, t)
                }
                Ev::Poll { h, d } => self.ev_poll(h, d, t),
                Ev::StreamStart { h, d } => self.ev_stream_start(h, d, t),
                Ev::StreamSegment { h, d, name, until } => self.ev_stream_segment(h, d, name, until, t),
                Ev::ConnCheck { h, d } => self.ev_conn_check(h, d, t),
                Ev::P2pBurst { h } => self.ev_p2p_burst(h, t),
                Ev::IotBeat { h, d } => self.ev_iot_beat(h, d, t),
                Ev::NtpProbe { h, dst, mean_gap } => self.ev_ntp_probe(h, dst, mean_gap, t),
                Ev::AlarmBeat { h } => self.ev_alarm_beat(h, t),
                Ev::Compact => {
                    for p in &mut self.platforms {
                        p.compact(t);
                    }
                    self.schedule(t + Duration::from_secs(3_600), Ev::Compact);
                }
            }
        }
    }

    fn schedule(&mut self, ts: Timestamp, ev: Ev) {
        if ts > self.end {
            return;
        }
        self.seq += 1;
        self.heap.push(Reverse(HeapEntry { ts, seq: self.seq, ev }));
    }

    // ---------------- time helpers ----------------

    /// Exponential gap with the configured mean, modulated by activity and
    /// time of day.
    fn gap(&mut self, mean_secs: f64, now: Timestamp) -> Duration {
        let m = diurnal(now) * self.cfg.scale.activity;
        let d = Exponential::new(mean_secs / m).sample(&mut self.rng);
        Duration::from_secs_f64(d.min(7.0 * 86_400.0))
    }

    fn uniform_dur(&mut self, lo_secs: f64, hi_secs: f64) -> Duration {
        Duration::from_secs_f64(self.rng.random_range(lo_secs..hi_secs.max(lo_secs + 1e-9)))
    }

    // ---------------- DNS machinery ----------------

    /// Perform a recursive lookup for `name` from (house, device) at `t`.
    /// Updates the stub cache, emits the DNS transaction, records truth.
    /// Returns the stub entry (freshly inserted).
    fn lookup(&mut self, h: u32, d: u32, name: NameId, t: Timestamp, speculative: bool) -> StubEntry {
        // `names` outlives the engine borrow ('a), so the emission can
        // borrow the fqdn/cname straight out of the universe.
        let names = self.names;
        let dev_platform = self.houses[h as usize].devices[d as usize].platform;
        let pop = names.popularity(name);
        let info = names.info(name);
        let outcome = self.platforms[dev_platform].query(name, pop, info.ttl, t, &mut self.rng);
        let resolver = self.platforms[dev_platform].addr(&mut self.rng);
        let (cname, _) = names.answers_into(name, &mut self.rng, &mut self.addr_scratch);
        let house = &mut self.houses[h as usize];
        let trans_id = house.dns_id();
        let client_port = house.port();
        let client = house.addr;
        self.sink.dns(&DnsEmission {
            ts: t,
            client,
            resolver,
            trans_id,
            client_port,
            query: &info.fqdn,
            rtt: outcome.duration,
            rcode: dns_wire::Rcode::NoError,
            cname,
            addrs: &self.addr_scratch,
            ttl: outcome.response_ttl,
        });
        let dns_index = self.truth.dns.len();
        self.truth.dns.push(TruthDns {
            ts: t,
            shared_cache_hit: outcome.cache_hit,
            speculative,
            platform: dev_platform,
        });
        let completed = t + outcome.duration;
        let entry = StubEntry {
            completed,
            expires: completed + Duration::from_secs(outcome.response_ttl as u64),
            used: false,
            dns_index,
            platform: dev_platform,
            addr: self.addr_scratch[0],
            cdn_hosted: info.cdn_hosted,
        };
        self.houses[h as usize].devices[d as usize]
            .stub
            .insert(name, entry);
        entry
    }

    /// Resolve-and-use: returns when the mapping is available, its class,
    /// and the address to connect to. Mutates stub/truth state.
    fn name_use(&mut self, h: u32, d: u32, name: NameId, t: Timestamp) -> (Timestamp, ConnClass, bool, usize, Ipv4Addr, usize, bool) {
        let dev = &self.houses[h as usize].devices[d as usize];
        let violates = dev.violates_ttl;
        // A fraction of uses come from a process with its own empty DNS
        // cache and never consult the device stub.
        let cached = if self.rng.random_bool(self.cfg.p_stub_bypass) {
            None
        } else {
            dev.stub.get(&name).copied()
        };
        let max_stale = Duration::from_secs_f64(self.cfg.max_stale_secs);
        if let Some(entry) = cached {
            // A lookup still in flight: the stub coalesces this use onto
            // the pending query (as real resolvers do) — the connection
            // blocks until the answer lands.
            if entry.completed > t {
                let shared_hit = self.truth.dns[entry.dns_index].shared_cache_hit;
                let class = if shared_hit { ConnClass::SharedCache } else { ConnClass::Resolution };
                let start = entry.completed
                    + Duration::from_secs_f64(self.app_delay.sample_clamped(&mut self.rng, 0.2, 400.0) / 1e3);
                self.houses[h as usize].devices[d as usize]
                    .stub
                    .get_mut(&name)
                    .unwrap()
                    .used = true;
                return (start, class, false, entry.dns_index, entry.addr, entry.platform, entry.cdn_hosted);
            }
            let fresh = entry.expires > t;
            let staleness_ok = t.since(entry.expires) < max_stale;
            let reuse_stale = !fresh
                && violates
                && staleness_ok
                && self.rng.random_bool(self.cfg.p_stale_reuse);
            if fresh || reuse_stale {
                let class = if entry.used { ConnClass::LocalCache } else { ConnClass::Prefetched };
                let stale = !fresh;
                self.houses[h as usize].devices[d as usize]
                    .stub
                    .get_mut(&name)
                    .unwrap()
                    .used = true;
                return (t, class, stale, entry.dns_index, entry.addr, entry.platform, entry.cdn_hosted);
            }
        }
        // Fresh lookup; the connection blocks until the answer arrives.
        let entry = self.lookup(h, d, name, t, false);
        let shared_hit = self.truth.dns[entry.dns_index].shared_cache_hit;
        let class = if shared_hit { ConnClass::SharedCache } else { ConnClass::Resolution };
        let start = entry.completed
            + Duration::from_secs_f64(self.app_delay.sample_clamped(&mut self.rng, 0.2, 400.0) / 1e3);
        self.houses[h as usize].devices[d as usize]
            .stub
            .get_mut(&name)
            .unwrap()
            .used = true;
        (start, class, false, entry.dns_index, entry.addr, entry.platform, entry.cdn_hosted)
    }

    /// A lookup for a non-existent name: NXDOMAIN, no answers, never
    /// paired with any connection. Always misses the shared cache (the
    /// typo space is effectively infinite).
    fn lookup_nxdomain(&mut self, h: u32, d: u32, t: Timestamp) {
        self.nxdomains += 1;
        let dev_platform = self.houses[h as usize].devices[d as usize].platform;
        // Unique junk name: no warmth, guaranteed resolver miss.
        let n = self.truth.dns.len();
        let fqdn = format!("wwww.typo-{n}.com");
        let outcome = self.platforms[dev_platform].query(
            crate::names::NameId(u32::MAX - (n as u32 % 1_000_000)),
            0.0,
            300,
            t,
            &mut self.rng,
        );
        let resolver = self.platforms[dev_platform].addr(&mut self.rng);
        let house = &mut self.houses[h as usize];
        let trans_id = house.dns_id();
        let client_port = house.port();
        let client = house.addr;
        self.sink.dns(&DnsEmission {
            ts: t,
            client,
            resolver,
            trans_id,
            client_port,
            query: &fqdn,
            rtt: outcome.duration,
            rcode: dns_wire::Rcode::NxDomain,
            cname: None,
            addrs: &[],
            ttl: 300,
        });
        self.truth.dns.push(TruthDns {
            ts: t,
            shared_cache_hit: outcome.cache_hit,
            speculative: false,
            platform: dev_platform,
        });
    }

    /// Speculative lookup (prefetch): only goes to the network when the
    /// stub has no fresh entry. Never blocks anything.
    fn prefetch(&mut self, h: u32, d: u32, name: NameId, t: Timestamp) {
        let fresh = self.houses[h as usize].devices[d as usize]
            .stub
            .get(&name)
            .map(|e| e.expires > t)
            .unwrap_or(false);
        if !fresh {
            self.lookup(h, d, name, t, true);
        }
    }

    // ---------------- connection machinery ----------------

    /// Emit a DNS-using connection and its ground truth.
    #[allow(clippy::too_many_arguments)]
    fn connect(
        &mut self,
        h: u32,
        start: Timestamp,
        class: ConnClass,
        stale: bool,
        dns_index: usize,
        dst: Ipv4Addr,
        plat: usize,
        cdn: bool,
        profile: Profile,
    ) {
        let (proto, dst_port, mut orig_bytes, mut resp_bytes) = self.shape(profile);
        // A kept-alive web connection is reused for several fetches, so it
        // carries correspondingly more payload than a one-shot fetch.
        let reused = matches!(profile, Profile::PageMain | Profile::WebObject)
            && self.rng.random_bool(0.80);
        if reused {
            let objects = 1 + self.rng.random_range(0..6u64);
            orig_bytes *= objects;
            resp_bytes = resp_bytes.saturating_mul(objects);
        }
        let mult = self.edge_multiplier(plat, cdn, resp_bytes);
        let mut duration = self.transfer_duration(orig_bytes + resp_bytes, mult);
        // Persistent protocols (HTTP keep-alive, connection reuse, app
        // sockets) hold the connection open long after the transfer; Bro
        // durations are first-to-last packet, so the idle tail counts.
        // This is the mechanism that makes DNS a small *relative* cost in
        // the paper's Figure 2.
        let keepalive = match profile {
            Profile::PageMain | Profile::WebObject => {
                if reused {
                    Some(LogNormal::from_median(30.0, 1.0))
                } else {
                    None
                }
            }
            Profile::Poll | Profile::IotBeat | Profile::ConnCheck => {
                Some(LogNormal::from_median(6.0, 0.8))
            }
            Profile::StreamSegment => Some(LogNormal::from_median(15.0, 0.6)),
            _ => None,
        };
        if let Some(tail) = keepalive {
            let idle = tail.sample_clamped(&mut self.rng, 0.5, 600.0);
            duration += Duration::from_secs_f64(idle);
        }
        let rtt = Duration::from_secs_f64(self.server_rtt.sample_clamped(&mut self.rng, 3.0, 300.0) / 1e3);
        let orig_port = self.houses[h as usize].port();
        let house_addr = self.houses[h as usize].addr;
        self.sink.conn(&ConnEmission {
            ts: start,
            house: house_addr,
            orig_port,
            dst,
            dst_port,
            proto,
            duration,
            orig_bytes,
            resp_bytes,
            rtt,
            fate: ConnFate::Established,
        });
        self.truth.conns.push(TruthConn {
            ts: start,
            orig_addr: house_addr,
            resp_addr: dst,
            resp_port: dst_port,
            class,
            stale,
            dns_index: Some(dns_index),
        });
    }

    /// Emit a no-DNS connection (class N) and its truth.
    fn connect_nodns(
        &mut self,
        h: u32,
        start: Timestamp,
        dst: Ipv4Addr,
        dst_port: u16,
        proto: Proto,
        orig_bytes: u64,
        resp_bytes: u64,
        duration: Duration,
        fate: ConnFate,
    ) {
        let orig_port = self.houses[h as usize].port();
        let house_addr = self.houses[h as usize].addr;
        let rtt = Duration::from_secs_f64(self.server_rtt.sample_clamped(&mut self.rng, 5.0, 300.0) / 1e3);
        self.sink.conn(&ConnEmission {
            ts: start,
            house: house_addr,
            orig_port,
            dst,
            dst_port,
            proto,
            duration,
            orig_bytes,
            resp_bytes,
            rtt,
            fate,
        });
        self.truth.conns.push(TruthConn {
            ts: start,
            orig_addr: house_addr,
            resp_addr: dst,
            resp_port: dst_port,
            class: ConnClass::NoDns,
            stale: false,
            dns_index: None,
        });
    }

    /// Full pipeline for one name-use followed by a connection.
    fn use_and_connect(&mut self, h: u32, d: u32, name: NameId, t: Timestamp, profile: Profile) {
        let (start, class, stale, dns_index, dst, plat, cdn) = self.name_use(h, d, name, t);
        self.connect(h, start, class, stale, dns_index, dst, plat, cdn, profile);
        // Occasionally the application opens a second parallel connection
        // reusing the just-obtained mapping (drives the non-first-use tail
        // inside the paper's 20 ms window).
        if matches!(profile, Profile::WebObject | Profile::PageMain)
            && self.rng.random_bool(self.cfg.p_second_conn)
        {
            let dt = self.uniform_dur(0.005, 0.080);
            self.connect(h, start + dt, class_for_second(class), stale, dns_index, dst, plat, cdn, profile);
        }
    }

    /// Bytes/ports per connection profile.
    fn shape(&mut self, profile: Profile) -> (Proto, u16, u64, u64) {
        let r = &mut self.rng;
        match profile {
            Profile::PageMain | Profile::WebObject => {
                let port = if r.random_bool(0.85) { 443 } else { 80 };
                let proto = if port == 443 && r.random_bool(0.25) { Proto::Udp } else { Proto::Tcp };
                let orig = r.random_range(300..2_500);
                let resp = self.web_bytes.sample(r) as u64;
                (proto, port, orig, resp)
            }
            Profile::StreamSegment => {
                let resp = 300_000 + (self.web_bytes.sample(r) as u64).min(6_000_000);
                (Proto::Tcp, 443, r.random_range(400..1_200), resp)
            }
            Profile::Poll | Profile::IotBeat => {
                (Proto::Tcp, 443, r.random_range(200..1_500), r.random_range(300..8_000))
            }
            Profile::ConnCheck => (Proto::Tcp, 443, r.random_range(150..400), r.random_range(100..400)),
            Profile::P2pTcp => {
                let resp = self.web_bytes.sample(r) as u64;
                (Proto::Tcp, 1_024 + r.random_range(0..60_000), r.random_range(100..200_000), resp)
            }
            Profile::P2pUdp => (Proto::Udp, 1_024 + r.random_range(0..60_000), r.random_range(100..2_000), r.random_range(100..4_000)),
        }
    }

    /// CDN edge quality by resolver platform (paper §7 / Figure 3 bottom):
    /// Cloudflare's resolver maps small transfers to farther edges; Google
    /// has a slight large-transfer advantage.
    fn edge_multiplier(&self, plat: usize, cdn: bool, resp_bytes: u64) -> f64 {
        if !cdn {
            return 1.0;
        }
        let (small, large) = match plat {
            platform::CLOUDFLARE => (0.55, 1.0),
            platform::GOOGLE => (1.0, 1.35),
            _ => (1.0, 1.0),
        };
        let w = ((resp_bytes as f64).log10() - 4.5) / 2.0;
        let w = w.clamp(0.0, 1.0);
        small * (1.0 - w) + large * w
    }

    fn transfer_duration(&mut self, bytes: u64, mult: f64) -> Duration {
        let rate = self.rate.sample_clamped(&mut self.rng, 2e5, 9e8);
        let xfer = bytes as f64 * 8.0 / rate;
        let floor = self.rng.random_range(0.05..0.4);
        // A worse CDN edge (mult < 1) stretches the whole transaction:
        // longer paths raise both the handshake floor and transfer time.
        Duration::from_secs_f64(((xfer + floor) / mult).min(6.0 * 3_600.0))
    }

    // ---------------- app behaviours ----------------

    fn pick_browse_service(&mut self, h: u32) -> ServiceId {
        if self.rng.random_bool(0.5) {
            let favs = &self.houses[h as usize].favorites;
            favs[self.rng.random_range(0..favs.len())]
        } else {
            self.names.pick_service(&mut self.rng)
        }
    }

    fn ev_browse_session(&mut self, h: u32, d: u32, t: Timestamp) {
        let pages = 1 + (Exponential::new(self.cfg.pages_per_session - 1.0).sample(&mut self.rng)) as u32;
        let svc = self.pick_browse_service(h);
        self.schedule(t, Ev::PageView { h, d, svc, pages_left: pages, via_prefetch: None });
        let factor = self.houses[h as usize].devices[d as usize].browse_gap;
        let next = t + self.gap(self.cfg.session_gap_secs * factor, t);
        self.schedule(next, Ev::BrowseSession { h, d });
    }

    fn ev_page_view(&mut self, h: u32, d: u32, svc: ServiceId, pages_left: u32, via: Option<NameId>, t: Timestamp) {
        let main_name = via.unwrap_or_else(|| self.names.primary(svc));
        self.use_and_connect(h, d, main_name, t, Profile::PageMain);

        // Embedded objects: dedup within the page. The name buffer is
        // engine-owned scratch, taken out for the duration of the loop
        // (schedule() needs `&mut self`) and put back afterwards so its
        // capacity is reused by every page view.
        let (lo, hi) = self.cfg.embedded_names_per_page;
        let n_embedded = self.rng.random_range(lo..=hi);
        let mut embedded = std::mem::take(&mut self.name_scratch);
        self.names
            .embedded_for_page_into(svc, n_embedded, &mut self.rng, &mut embedded);
        embedded.sort();
        embedded.dedup();
        for &name in &embedded {
            if self.rng.random_bool(0.08) {
                // Below-the-fold object: resolved with the page's
                // dns-prefetch pass, fetched only when scrolled into view.
                let resolve_at = t + self.uniform_dur(0.2, 0.8);
                self.schedule(resolve_at, Ev::Prefetch { h, d, name });
                let fetch_at = t + self.uniform_dur(3.0, 25.0);
                self.schedule(fetch_at, Ev::NameUse { h, d, name, profile: Profile::WebObject });
            } else {
                let at = t + self.uniform_dur(0.05, 1.2);
                self.schedule(at, Ev::NameUse { h, d, name, profile: Profile::WebObject });
            }
        }

        // Speculative link resolution — reuses the same scratch buffer
        // (the embedded loop above is done with it).
        let (plo, phi) = self.cfg.prefetch_links_per_page;
        let n_links = self.rng.random_range(plo..=phi);
        let mut links = embedded;
        links.clear();
        for _ in 0..n_links {
            let target = self.names.pick_link_target(&mut self.rng);
            links.push(target);
        }
        links.sort();
        links.dedup();
        for name in &links {
            let at = t + self.uniform_dur(0.5, 2.5);
            self.schedule(at, Ev::Prefetch { h, d, name: *name });
        }

        // Typo / dead-link lookups: a name that does not exist.
        if self.cfg.p_nxdomain > 0.0 && self.rng.random_bool(self.cfg.p_nxdomain) {
            let at = t + self.uniform_dur(0.5, 10.0);
            self.lookup_nxdomain(h, d, at);
        }

        if pages_left > 1 {
            let dwell = Duration::from_secs_f64(self.dwell.sample_clamped(&mut self.rng, 3.0, 1_800.0));
            let at = t + dwell;
            let clicked = !links.is_empty() && self.rng.random_bool(self.cfg.p_prefetch_click);
            if clicked {
                let target = links[self.rng.random_range(0..links.len())];
                let next_svc = self.names.service_of_primary(target).unwrap_or(svc);
                self.schedule(at, Ev::PageView { h, d, svc: next_svc, pages_left: pages_left - 1, via_prefetch: Some(target) });
            } else {
                let next_svc = if self.rng.random_bool(0.5) {
                    svc
                } else {
                    self.pick_browse_service(h)
                };
                self.schedule(at, Ev::PageView { h, d, svc: next_svc, pages_left: pages_left - 1, via_prefetch: None });
            }
        }
        self.name_scratch = links;
    }

    fn ev_poll(&mut self, h: u32, d: u32, t: Timestamp) {
        let dev = &self.houses[h as usize].devices[d as usize];
        let name = dev.poll_names[self.rng.random_range(0..dev.poll_names.len())];
        if self.rng.random_bool(0.25) {
            // Speculative refresh without a transaction (an unused lookup).
            self.prefetch(h, d, name, t);
        } else {
            self.use_and_connect(h, d, name, t, Profile::Poll);
        }
        let next = t + self.gap(self.cfg.poll_gap_secs, t);
        self.schedule(next, Ev::Poll { h, d });
    }

    fn ev_stream_start(&mut self, h: u32, d: u32, t: Timestamp) {
        let svc = self.pick_browse_service(h);
        let name = self.names.primary(svc);
        let len = Exponential::new(self.cfg.stream_len_secs).sample(&mut self.rng);
        let until = t + Duration::from_secs_f64(len.clamp(120.0, 4.0 * 3_600.0));
        // The player resolves the CDN hostname up front, then starts
        // fetching once the UI settles — a natural prefetch.
        self.prefetch(h, d, name, t);
        let first = t + self.uniform_dur(0.5, 3.0);
        self.schedule(first, Ev::StreamSegment { h, d, name, until });
        let next = t + self.gap(self.cfg.stream_gap_secs, t);
        self.schedule(next, Ev::StreamStart { h, d });
    }

    fn ev_stream_segment(&mut self, h: u32, d: u32, name: NameId, until: Timestamp, t: Timestamp) {
        self.use_and_connect(h, d, name, t, Profile::StreamSegment);
        let gap = self.uniform_dur(
            self.cfg.stream_segment_gap_secs * 0.6,
            self.cfg.stream_segment_gap_secs * 1.6,
        );
        let next = t + gap;
        if next < until {
            self.schedule(next, Ev::StreamSegment { h, d, name, until });
        }
    }

    fn ev_conn_check(&mut self, h: u32, d: u32, t: Timestamp) {
        let cc = self.names.connectivity_check();
        self.use_and_connect(h, d, cc, t, Profile::ConnCheck);
        let next = t + self.gap(self.cfg.connectivity_check_gap_secs, t);
        self.schedule(next, Ev::ConnCheck { h, d });
    }

    fn ev_p2p_burst(&mut self, h: u32, t: Timestamp) {
        let (lo, hi) = self.cfg.p2p_burst_conns;
        let n = self.rng.random_range(lo..=hi);
        for _ in 0..n {
            let at = t + self.uniform_dur(0.0, 120.0);
            let dst = self.p2p_peers[self.rng.random_range(0..self.p2p_peers.len())];
            let udp = self.rng.random_bool(0.25);
            let profile = if udp { Profile::P2pUdp } else { Profile::P2pTcp };
            let (proto, port, ob, rb) = self.shape(profile);
            let fate = match crate::dists::weighted_index(&mut self.rng, &[0.55, 0.25, 0.20]) {
                0 => ConnFate::Established,
                1 => ConnFate::NoAnswer,
                _ => ConnFate::Refused,
            };
            let duration = if fate == ConnFate::Established {
                self.transfer_duration(ob + rb, 1.0)
            } else {
                Duration::from_secs(if fate == ConnFate::NoAnswer { 3 } else { 0 })
            };
            self.connect_nodns(h, at, dst, port, proto, ob, rb, duration, fate);
        }
        let next = t + self.gap(self.cfg.p2p_burst_gap_secs, t);
        self.schedule(next, Ev::P2pBurst { h });
    }

    fn ev_iot_beat(&mut self, h: u32, d: u32, t: Timestamp) {
        let name = self.houses[h as usize].devices[d as usize].iot_name.unwrap();
        self.use_and_connect(h, d, name, t, Profile::IotBeat);
        let next = t + self.gap(600.0, t);
        self.schedule(next, Ev::IotBeat { h, d });
    }

    fn ev_ntp_probe(&mut self, h: u32, dst: Ipv4Addr, mean_gap: f64, t: Timestamp) {
        self.connect_nodns(h, t, dst, 123, Proto::Udp, 48, 0, Duration::from_secs(2), ConnFate::NoAnswer);
        let next = t + self.gap(mean_gap, t);
        self.schedule(next, Ev::NtpProbe { h, dst, mean_gap });
    }

    fn ev_alarm_beat(&mut self, h: u32, t: Timestamp) {
        let dst = hardcoded::ALARMNET[self.rng.random_range(0..2)];
        let dur = self.uniform_dur(0.2, 2.0);
        let (ob, rb) = (self.rng.random_range(200..600), self.rng.random_range(200..600));
        self.connect_nodns(h, t, dst, 443, Proto::Tcp, ob, rb, dur, ConnFate::Established);
        let next = t + self.gap(600.0, t);
        self.schedule(next, Ev::AlarmBeat { h });
    }
}

/// Diurnal activity multiplier in [0.35, 1.65], peaking in the evening.
fn diurnal(t: Timestamp) -> f64 {
    let secs = t.nanos() as f64 / 1e9;
    let hour = (secs / 3_600.0) % 24.0;
    1.0 + 0.65 * ((std::f64::consts::TAU * (hour - 20.5) / 24.0).cos())
}

/// A parallel second connection keeps the first's origin class — it is the
/// same mapping, just not the first user (it lands as non-first-use inside
/// the blocked window, which the analysis will still call SC/R; truth
/// mirrors the paper's semantics by class of information origin).
fn class_for_second(first: ConnClass) -> ConnClass {
    match first {
        ConnClass::SharedCache => ConnClass::SharedCache,
        ConnClass::Resolution => ConnClass::Resolution,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScaleKnobs;

    fn tiny_cfg() -> WorkloadConfig {
        WorkloadConfig {
            scale: ScaleKnobs { houses: 6, days: 0.1, activity: 1.0 },
            services: 300,
            shared_services: 40,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn diurnal_multiplier_bounded_and_peaks_in_evening() {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut peak_hour = 0u64;
        for h in 0..24u64 {
            let m = diurnal(Timestamp::from_secs(h * 3_600));
            min = min.min(m);
            max = max.max(m);
            if m == max {
                peak_hour = h;
            }
        }
        assert!(min >= 0.349 && max <= 1.651, "bounds: [{min}, {max}]");
        assert!((1.0 - (min + max) / 2.0).abs() < 0.01, "mean-centred");
        assert!((18..=23).contains(&peak_hour), "peak at {peak_hour}h");
    }

    #[test]
    fn house_port_allocation_cycles() {
        let mut house = House {
            addr: Ipv4Addr::new(10, 77, 0, 1),
            devices: Vec::new(),
            favorites: Vec::new(),
            next_port: 59_998,
            next_dns_id: 0,
        };
        assert_eq!(house.port(), 59_998);
        assert_eq!(house.port(), 59_999);
        assert_eq!(house.port(), 10_000, "wraps to the bottom of the range");
        for _ in 0..100_000 {
            let p = house.port();
            assert!((10_000..=59_999).contains(&p));
        }
    }

    #[test]
    fn run_is_deterministic() {
        let sim = Simulation::new(tiny_cfg(), 42).unwrap();
        let a = sim.run();
        let b = sim.run();
        assert_eq!(a.logs.conns.len(), b.logs.conns.len());
        assert_eq!(a.logs.dns.len(), b.logs.dns.len());
        assert_eq!(a.logs.conns, b.logs.conns);
        assert_eq!(a.logs.dns, b.logs.dns);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(tiny_cfg(), 1).unwrap().run();
        let b = Simulation::new(tiny_cfg(), 2).unwrap().run();
        assert_ne!(a.logs.conns.len(), b.logs.conns.len());
    }

    #[test]
    fn produces_all_ground_truth_classes() {
        let out = Simulation::new(tiny_cfg(), 42).unwrap().run();
        for class in [
            ConnClass::NoDns,
            ConnClass::LocalCache,
            ConnClass::Prefetched,
            ConnClass::SharedCache,
            ConnClass::Resolution,
        ] {
            assert!(
                out.truth.class_count(class) > 0,
                "missing class {:?} in {} conns",
                class,
                out.truth.conns.len()
            );
        }
    }

    #[test]
    fn truth_aligns_with_conn_uids() {
        let out = Simulation::new(tiny_cfg(), 7).unwrap().run();
        assert_eq!(out.truth.conns.len(), out.logs.conns.len());
        for c in &out.logs.conns {
            let t = &out.truth.conns[c.uid as usize];
            assert_eq!(t.ts, c.ts);
            assert_eq!(t.orig_addr, c.id.orig_addr);
            assert_eq!(t.resp_addr, c.id.resp_addr);
            assert_eq!(t.resp_port, c.id.resp_port);
        }
    }

    #[test]
    fn dns_truth_aligns_with_dns_log() {
        let out = Simulation::new(tiny_cfg(), 7).unwrap().run();
        assert_eq!(out.truth.dns.len(), out.logs.dns.len());
    }

    #[test]
    fn blocked_conns_start_shortly_after_lookup() {
        let out = Simulation::new(tiny_cfg(), 42).unwrap().run();
        // Ground-truth SC/R conns must start within ~0.5 s of their lookup
        // completing (app delay is clamped at 400 ms).
        let mut checked = 0;
        for tc in &out.truth.conns {
            if matches!(tc.class, ConnClass::SharedCache | ConnClass::Resolution) {
                // dns truth index ties to dns log index (same emission order).
                let di = tc.dns_index.unwrap();
                let dt = &out.truth.dns[di];
                assert!(tc.ts >= dt.ts, "conn before its lookup");
                assert!(tc.ts.since(dt.ts) < Duration::from_secs(3));
                checked += 1;
            }
        }
        assert!(checked > 50, "not enough blocked conns to check: {checked}");
    }

    #[test]
    fn stale_flags_only_on_cache_classes() {
        let out = Simulation::new(tiny_cfg(), 42).unwrap().run();
        for tc in &out.truth.conns {
            if tc.stale {
                assert!(matches!(tc.class, ConnClass::LocalCache | ConnClass::Prefetched));
            }
        }
    }

    #[test]
    fn platform_stats_cover_all_queries() {
        let out = Simulation::new(tiny_cfg(), 42).unwrap().run();
        let total: u64 = out.platform_stats.iter().map(|(_, q, _)| q).sum();
        assert_eq!(total as usize, out.logs.dns.len());
        // Local must dominate.
        let local = out.platform_stats.iter().find(|(n, _, _)| n == "Local").unwrap();
        assert!(local.1 > total / 3);
    }

    #[test]
    fn timestamps_within_trace_window() {
        let cfg = tiny_cfg();
        let end = Timestamp::from_secs(EPOCH_UNIX) + Duration::from_secs_f64(cfg.scale.duration_secs());
        let out = Simulation::new(cfg, 42).unwrap().run();
        for c in &out.logs.conns {
            assert!(c.ts >= Timestamp::from_secs(EPOCH_UNIX));
            // Starts are bounded by end + blocked-start slack.
            assert!(c.ts <= end + Duration::from_secs(5), "conn at {}", c.ts);
        }
    }

    #[test]
    fn shard_spans_partition_houses() {
        for houses in [1, 6, 24, 25, 26, 50, 99, 100, 101, 250] {
            let spans = shard_spans(houses);
            assert!(!spans.is_empty());
            assert_eq!(spans[0].start, 0);
            assert_eq!(spans.last().unwrap().end, houses);
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
                // Balanced: lengths differ by at most one.
                assert!(w[0].len().abs_diff(w[1].len()) <= 1);
            }
            assert!(spans.iter().all(|s| s.len() <= HOUSES_PER_SHARD));
        }
    }

    /// The headline determinism guarantee: the thread count changes only
    /// wall-clock time, never a byte of output — logs, ground truth, and
    /// platform stats all match between a 1-thread and an N-thread run of
    /// a multi-shard config.
    #[test]
    fn sim_metrics_match_output_and_platform_stats() {
        let out = Simulation::new(tiny_cfg(), 42).unwrap().run();
        let m = &out.metrics;
        assert_eq!(m.counter("sim.houses"), 6);
        assert_eq!(m.counter("sim.conns"), out.truth.conns.len() as u64);
        assert_eq!(m.counter("sim.dns_lookups"), out.truth.dns.len() as u64);
        assert!(m.counter("sim.events") >= m.counter("sim.conns"));
        for (name, queries, hits) in &out.platform_stats {
            let key = name.to_ascii_lowercase();
            assert_eq!(m.counter(&format!("resolver.{key}.queries")), *queries);
            assert_eq!(m.counter(&format!("resolver.{key}.hits")), *hits);
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let cfg = WorkloadConfig {
            scale: ScaleKnobs { houses: 30, days: 0.05, activity: 1.0 },
            services: 300,
            shared_services: 40,
            ..WorkloadConfig::default()
        };
        assert!(shard_spans(cfg.scale.houses).len() > 1, "config must span shards");
        let seq = Simulation::new(cfg.clone(), 11).unwrap().with_threads(1).run();
        let par = Simulation::new(cfg, 11).unwrap().with_threads(4).run();
        assert_eq!(seq.logs.conns, par.logs.conns);
        assert_eq!(seq.logs.dns, par.logs.dns);
        assert_eq!(seq.platform_stats, par.platform_stats);
        assert_eq!(seq.metrics.to_json(), par.metrics.to_json(), "obs snapshot must be thread-invariant");
        assert_eq!(seq.truth.conns.len(), par.truth.conns.len());
        for (a, b) in seq.truth.conns.iter().zip(&par.truth.conns) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.dns_index, b.dns_index);
            assert_eq!(a.ts, b.ts);
        }
        for (a, b) in seq.truth.dns.iter().zip(&par.truth.dns) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.shared_cache_hit, b.shared_cache_hit);
        }
    }

    #[test]
    fn thread_count_does_not_change_pcap_bytes() {
        let cfg = WorkloadConfig {
            scale: ScaleKnobs { houses: 30, days: 0.02, activity: 1.0 },
            services: 200,
            shared_services: 30,
            ..WorkloadConfig::default()
        };
        let mut seq_buf = Vec::new();
        let mut par_buf = Vec::new();
        Simulation::new(cfg.clone(), 3).unwrap().with_threads(1).run_pcap(&mut seq_buf, 600).unwrap();
        Simulation::new(cfg, 3).unwrap().with_threads(4).run_pcap(&mut par_buf, 600).unwrap();
        assert_eq!(seq_buf, par_buf, "pcap byte streams must be identical");
    }

    #[test]
    fn sharded_run_uses_all_houses() {
        // 30 houses across 2 shards: every house address must appear in
        // the logs, and addresses must cover exactly the configured range.
        let cfg = WorkloadConfig {
            scale: ScaleKnobs { houses: 30, days: 0.05, activity: 1.0 },
            services: 300,
            shared_services: 40,
            ..WorkloadConfig::default()
        };
        let out = Simulation::new(cfg, 42).unwrap().run();
        let mut seen: std::collections::BTreeSet<Ipv4Addr> = std::collections::BTreeSet::new();
        for c in &out.logs.conns {
            seen.insert(c.id.orig_addr);
        }
        let expected: std::collections::BTreeSet<Ipv4Addr> = (0..30u32)
            .map(|hi| Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 77, 0, 0)) + hi + 1))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn pcap_mode_round_trips_through_monitor() {
        let cfg = WorkloadConfig {
            scale: ScaleKnobs { houses: 3, days: 0.02, activity: 1.0 },
            services: 100,
            shared_services: 20,
            ..WorkloadConfig::default()
        };
        let sim = Simulation::new(cfg.clone(), 5).unwrap();
        let direct = sim.run();
        let mut buf = Vec::new();
        let (truth, frames) = sim.run_pcap(&mut buf, 600).unwrap();
        assert!(frames > 100);
        assert_eq!(truth.conns.len(), direct.truth.conns.len());
        let logs = zeek_lite::Monitor::process_pcap(&buf[..], zeek_lite::MonitorConfig::default()).unwrap();
        // The monitor's app-conn count must match the direct backend.
        assert_eq!(logs.app_conns().count(), direct.logs.conns.len());
        assert_eq!(logs.dns.len(), direct.logs.dns.len());
        // Byte totals agree.
        let direct_bytes: u64 = direct.logs.conns.iter().map(|c| c.total_bytes()).sum();
        let pcap_bytes: u64 = logs.app_conns().map(|c| c.total_bytes()).sum();
        assert_eq!(direct_bytes, pcap_bytes);
    }
}
