//! A discrete-event simulator of a CCZ-like residential FTTH network.
//!
//! The reproduced study ("Putting DNS in Context", IMC 2020) analysed one
//! week of DNS and connection logs from the Case Connection Zone — roughly
//! 100 houses behind NAT gateways, two ISP resolvers plus the big public
//! resolver platforms, and ordinary residential traffic. That trace is
//! proprietary; this crate generates the closest synthetic equivalent by
//! explicitly modelling every mechanism the paper measures:
//!
//! * houses with device mixes (browsers with DNS prefetching, Android
//!   phones doing connectivity checks via Google DNS, IoT gear with
//!   hard-coded server addresses, peer-to-peer clients, streaming boxes);
//! * per-device stub caches, including configurable TTL-violation
//!   behaviour (stale records being reused long past expiry);
//! * four resolver platforms with distinct RTTs, shared caches warmed by
//!   external background traffic, and authoritative-lookup delay models;
//! * a name universe with Zipf popularity, a realistic TTL mixture, CNAME
//!   chains and CDN co-hosting (several names resolving to one address).
//!
//! Two output backends produce identical log semantics:
//!
//! * [`Simulation::run`] emits [`zeek_lite::Logs`] directly (fast; used
//!   for large parameter sweeps), alongside per-record ground truth; and
//! * [`Simulation::run_pcap`] serialises every DNS message and every
//!   connection's packets as real Ethernet/IPv4 frames into a libpcap
//!   stream, to be re-parsed by the [`zeek_lite::Monitor`] — proving the
//!   whole observation pipeline end to end.
//!
//! Determinism: a run is a pure function of (config, seed). Nothing reads
//! the wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dists;
mod engine;
pub mod names;
pub mod output;
pub mod resolvers;
pub mod scenarios;
pub mod truth;

pub use config::{ScaleKnobs, WorkloadConfig};
pub use engine::{SimOutput, Simulation};
pub use truth::{ConnClass, GroundTruth, TruthConn, TruthDns};
