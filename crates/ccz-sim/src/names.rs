//! The simulated name universe: services, hostnames, TTLs, hosting.

use crate::config::WorkloadConfig;
use crate::dists::{weighted_index, Zipf};
use xkit::rng::{Rng, RngExt};
use std::net::Ipv4Addr;

/// Index of a hostname in the universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// Index of a service (a site: one primary hostname plus extras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceId(pub u32);

/// Everything known about one hostname.
#[derive(Debug, Clone)]
pub struct NameInfo {
    /// Fully-qualified name in presentation form.
    pub fqdn: String,
    /// Authoritative TTL, seconds.
    pub ttl: u32,
    /// Addresses returned for the name (stable across the run; CDN
    /// rotation is modelled by answer-order rotation, not set changes).
    pub addrs: Vec<Ipv4Addr>,
    /// Optional CNAME the answer chain goes through.
    pub cname: Option<String>,
    /// Whether the name is served from shared CDN infrastructure (several
    /// names on one address; resolver choice affects edge quality).
    pub cdn_hosted: bool,
}

/// One service: a site with a primary hostname and auxiliary hostnames.
#[derive(Debug, Clone)]
pub struct ServiceInfo {
    /// Primary hostname (what a user "visits").
    pub primary: NameId,
    /// Auxiliary hostnames (api., img., ...) used by embedded objects.
    pub extras: Vec<NameId>,
}

/// The generated universe.
pub struct NameUniverse {
    names: Vec<NameInfo>,
    services: Vec<ServiceInfo>,
    /// Shared third-party hostnames (ads, analytics, CDN libraries).
    shared: Vec<NameId>,
    /// Per-name popularity weight, indexed by `NameId` (O(1) lookup; the
    /// resolver warmth model consults this on every query).
    pop: Vec<f64>,
    service_pop: Zipf,
    shared_pop: Zipf,
    connectivity_check: NameId,
}

const TLDS: [&str; 5] = ["com", "net", "org", "io", "tv"];

impl NameUniverse {
    /// Generate a universe per the config. Deterministic given the RNG.
    pub fn generate<R: Rng + ?Sized>(cfg: &WorkloadConfig, rng: &mut R) -> NameUniverse {
        let ttl_weights: Vec<f64> = cfg.ttl_classes.iter().map(|(_, w)| *w).collect();
        let mut names: Vec<NameInfo> = Vec::new();
        // Shared CDN edge pool: many names resolve into these addresses.
        let edge_pool: Vec<Ipv4Addr> = (0..900u32)
            .map(|i| Ipv4Addr::from(u32::from(Ipv4Addr::new(104, 16, 0, 0)) + i))
            .collect();
        let mut dedicated_counter: u32 = 0;
        let mut alloc_dedicated = || {
            dedicated_counter += 1;
            // 185.0.0.0/8 style dedicated hosting, skipping .0/.255 octets.
            Ipv4Addr::from(u32::from(Ipv4Addr::new(185, 0, 0, 0)) + dedicated_counter * 7 % 0x00FF_FFFF)
        };
        let mut make_name = |fqdn: String,
                             cdn: bool,
                             rng: &mut R,
                             names: &mut Vec<NameInfo>|
         -> NameId {
            let ttl = cfg.ttl_classes[weighted_index(rng, &ttl_weights)].0;
            let n_addrs = 1 + rng.random_range(0..3usize).min(1 + rng.random_range(0..2));
            let addrs: Vec<Ipv4Addr> = (0..n_addrs)
                .map(|_| {
                    if cdn {
                        edge_pool[rng.random_range(0..edge_pool.len())]
                    } else {
                        alloc_dedicated()
                    }
                })
                .collect();
            let cname = if rng.random_bool(cfg.cname_fraction) {
                Some(format!("edge-{}.cdnint.net", rng.random_range(0..500u32)))
            } else {
                None
            };
            let id = NameId(names.len() as u32);
            names.push(NameInfo { fqdn, ttl, addrs, cname, cdn_hosted: cdn });
            id
        };

        let mut services = Vec::with_capacity(cfg.services);
        for i in 0..cfg.services {
            let tld = TLDS[i % TLDS.len()];
            let domain = format!("s{i:04}.{tld}");
            let cdn = rng.random_bool(cfg.cohost_fraction);
            let primary = make_name(format!("www.{domain}"), cdn, rng, &mut names);
            let n_extras = rng.random_range(0..3usize);
            let extras = (0..n_extras)
                .map(|k| {
                    let sub = ["api", "img", "static"][k];
                    make_name(format!("{sub}.{domain}"), cdn, rng, &mut names)
                })
                .collect();
            services.push(ServiceInfo { primary, extras });
        }

        let shared: Vec<NameId> = (0..cfg.shared_services)
            .map(|j| {
                let kind = ["ads", "metrics", "cdn", "fonts", "social"][j % 5];
                let id = make_name(format!("{kind}{j:03}.thirdparty.net"), true, rng, &mut names);
                // Big third-party infrastructure publishes longer TTLs
                // than per-site CDN entries; this locality is what makes
                // cross-page cache reuse (the paper's dominant LC source)
                // survive page dwell times.
                let shared_ttls = [(300u32, 0.30), (3_600, 0.50), (86_400, 0.20)];
                let w: Vec<f64> = shared_ttls.iter().map(|(_, w)| *w).collect();
                names[id.0 as usize].ttl = shared_ttls[weighted_index(rng, &w)].0;
                id
            })
            .collect();

        // connectivitycheck.gstatic.com: Google-hosted, modest TTL, tiny
        // responses; Android devices hit it incessantly (paper §7).
        let cc_id = NameId(names.len() as u32);
        names.push(NameInfo {
            fqdn: "connectivitycheck.gstatic.com".into(),
            ttl: 300,
            addrs: vec![Ipv4Addr::new(142, 250, 65, 99)],
            cname: None,
            cdn_hosted: false,
        });

        // Precompute popularity weights: service hostnames inherit their
        // service's Zipf rank, shared third parties are globally hot, the
        // connectivity check hottest of all.
        let mut pop = vec![1e-6f64; names.len()];
        for (rank, s) in services.iter().enumerate() {
            let w = 0.01 / (1.0 + rank as f64).powf(cfg.zipf_exponent);
            pop[s.primary.0 as usize] = w;
            for e in &s.extras {
                pop[e.0 as usize] = w * 0.6;
            }
        }
        for (rank, n) in shared.iter().enumerate() {
            pop[n.0 as usize] = 0.02 / (1.0 + rank as f64).powf(0.9);
        }
        pop[cc_id.0 as usize] = 2.0;

        NameUniverse {
            names,
            services,
            shared,
            pop,
            service_pop: Zipf::new(cfg.services, cfg.zipf_exponent),
            shared_pop: Zipf::new(cfg.shared_services, 1.35),
            connectivity_check: cc_id,
        }
    }

    /// Number of hostnames.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Look up a name's details.
    pub fn info(&self, id: NameId) -> &NameInfo {
        &self.names[id.0 as usize]
    }

    /// Draw a service by popularity.
    pub fn pick_service<R: Rng + ?Sized>(&self, rng: &mut R) -> ServiceId {
        ServiceId(self.service_pop.sample(rng) as u32)
    }

    /// A service's primary hostname.
    pub fn primary(&self, svc: ServiceId) -> NameId {
        self.services[svc.0 as usize].primary
    }

    /// Names fetched by a page of the given service: a mix of the
    /// service's own auxiliary hostnames and popular shared third parties.
    pub fn embedded_for_page<R: Rng + ?Sized>(&self, svc: ServiceId, count: usize, rng: &mut R) -> Vec<NameId> {
        let mut out = Vec::new();
        self.embedded_for_page_into(svc, count, rng, &mut out);
        out
    }

    /// Allocation-free [`NameUniverse::embedded_for_page`]: fills `out`
    /// (cleared first) with the same draws.
    pub fn embedded_for_page_into<R: Rng + ?Sized>(
        &self,
        svc: ServiceId,
        count: usize,
        rng: &mut R,
        out: &mut Vec<NameId>,
    ) {
        let s = &self.services[svc.0 as usize];
        out.clear();
        out.extend((0..count).map(|_| {
            if !s.extras.is_empty() && rng.random_bool(0.55) {
                s.extras[rng.random_range(0..s.extras.len())]
            } else {
                self.shared[self.shared_pop.sample(rng)]
            }
        }));
    }

    /// The normalised popularity weight of a name (used by the resolver
    /// cache warmth model): approximately the Zipf mass of its service.
    pub fn popularity(&self, id: NameId) -> f64 {
        self.pop[id.0 as usize]
    }

    /// Draw a target for a speculative link (any service's primary).
    pub fn pick_link_target<R: Rng + ?Sized>(&self, rng: &mut R) -> NameId {
        self.primary(self.pick_service(rng))
    }

    /// Map a primary hostname back to its service (links point at
    /// primaries; a clicked link needs the service to render its page).
    pub fn service_of_primary(&self, id: NameId) -> Option<ServiceId> {
        // Primaries are allocated in service order with gaps for extras; a
        // binary search over primaries (which are ascending) finds it.
        let idx = self
            .services
            .binary_search_by(|s| s.primary.cmp(&id))
            .ok()?;
        Some(ServiceId(idx as u32))
    }

    /// The Android connectivity-check hostname.
    pub fn connectivity_check(&self) -> NameId {
        self.connectivity_check
    }

    /// Answer-set for one response: rotated address order (round-robin
    /// CDNs) and the CNAME chain if the name has one.
    pub fn answers<R: Rng + ?Sized>(&self, id: NameId, rng: &mut R) -> (Option<String>, Vec<Ipv4Addr>, u32) {
        let mut addrs = Vec::new();
        let (cname, ttl) = self.answers_into(id, rng, &mut addrs);
        (cname.map(str::to_string), addrs, ttl)
    }

    /// Allocation-free [`NameUniverse::answers`]: the rotated addresses
    /// land in `out` (cleared first) and the CNAME is borrowed from the
    /// universe. Draws exactly the same random rotation as `answers`, so
    /// the two are interchangeable without disturbing any RNG stream.
    pub fn answers_into<'a, R: Rng + ?Sized>(
        &'a self,
        id: NameId,
        rng: &mut R,
        out: &mut Vec<Ipv4Addr>,
    ) -> (Option<&'a str>, u32) {
        let info = self.info(id);
        out.clear();
        out.extend_from_slice(&info.addrs);
        if out.len() > 1 {
            let rot = rng.random_range(0..out.len());
            out.rotate_left(rot);
        }
        (info.cname.as_deref(), info.ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xkit::rng::StdRng;
    use xkit::rng::SeedableRng;

    fn universe() -> NameUniverse {
        let cfg = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        NameUniverse::generate(&cfg, &mut rng)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = universe();
        let b = universe();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let (x, y) = (a.info(NameId(i as u32)), b.info(NameId(i as u32)));
            assert_eq!(x.fqdn, y.fqdn);
            assert_eq!(x.addrs, y.addrs);
            assert_eq!(x.ttl, y.ttl);
        }
    }

    #[test]
    fn all_names_are_valid_hostnames() {
        let u = universe();
        for i in 0..u.len() {
            let info = u.info(NameId(i as u32));
            assert!(dns_wire::Name::parse(&info.fqdn).is_ok(), "{}", info.fqdn);
            assert!(!info.addrs.is_empty());
            assert!(info.ttl > 0);
        }
    }

    #[test]
    fn ttls_follow_configured_classes() {
        let cfg = WorkloadConfig::default();
        let u = universe();
        let allowed: Vec<u32> = cfg.ttl_classes.iter().map(|(t, _)| *t).collect();
        for i in 0..u.len() {
            let ttl = u.info(NameId(i as u32)).ttl;
            assert!(allowed.contains(&ttl) || ttl == 300, "ttl {ttl}");
        }
    }

    #[test]
    fn cohosting_creates_address_sharing() {
        let u = universe();
        use std::collections::HashMap;
        let mut by_addr: HashMap<Ipv4Addr, usize> = HashMap::new();
        for i in 0..u.len() {
            for a in &u.info(NameId(i as u32)).addrs {
                *by_addr.entry(*a).or_default() += 1;
            }
        }
        let shared_addrs = by_addr.values().filter(|c| **c > 1).count();
        assert!(shared_addrs > 50, "expected co-hosting, got {shared_addrs} shared addrs");
    }

    #[test]
    fn popular_services_picked_more() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if u.pick_service(&mut rng).0 < 30 {
                head += 1;
            }
        }
        assert!(head > DRAWS / 10, "zipf head too light: {head}");
    }

    #[test]
    fn embedded_mix_includes_shared_and_own() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(2);
        // Find a service with extras.
        let svc = (0..u.services.len())
            .map(|i| ServiceId(i as u32))
            .find(|s| !u.services[s.0 as usize].extras.is_empty())
            .unwrap();
        let mut own = 0;
        let mut shared = 0;
        for _ in 0..200 {
            for id in u.embedded_for_page(svc, 6, &mut rng) {
                if u.services[svc.0 as usize].extras.contains(&id) {
                    own += 1;
                } else {
                    shared += 1;
                }
            }
        }
        assert!(own > 0 && shared > 0);
    }

    #[test]
    fn answers_rotate_but_preserve_set() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(3);
        // Find a multi-address name.
        let id = (0..u.len())
            .map(|i| NameId(i as u32))
            .find(|n| u.info(*n).addrs.len() > 1)
            .unwrap();
        let reference: std::collections::BTreeSet<_> = u.info(id).addrs.iter().copied().collect();
        for _ in 0..20 {
            let (_, addrs, ttl) = u.answers(id, &mut rng);
            let set: std::collections::BTreeSet<_> = addrs.iter().copied().collect();
            assert_eq!(set, reference);
            assert_eq!(ttl, u.info(id).ttl);
        }
    }

    #[test]
    fn connectivity_check_is_special() {
        let u = universe();
        let cc = u.connectivity_check();
        assert_eq!(u.info(cc).fqdn, "connectivitycheck.gstatic.com");
        assert!(u.popularity(cc) > 0.01);
    }
}
