//! The reproduction harness: regenerates every table and figure of
//! *Putting DNS in Context* (Allman, IMC 2020) from a seeded simulation
//! of a CCZ-like residential network.
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- table2 --scale 0.3 --seed 7
//! cargo run --release -p bench --bin repro -- fig2 --csv
//! ```
//!
//! Experiments: `table1 table2 table3 fig1 fig2 fig3 sec51 sec52 sec7
//! sec8 diurnal houses ablate-threshold ablate-pairing ablate-scr bench
//! fuzz obs all`.
//!
//! `obs` (also reachable as `--obs`) runs the instrumented packet
//! pipeline end to end: every stage (capture, zeek, pairing, thresholds,
//! classify, perf, report) is timed as a `stage.*` span, the per-stage
//! counters are merged into one deterministic metrics snapshot, the span
//! tree and a human-readable metrics table go to stderr, and the JSON
//! snapshot goes to stdout and to `--obs-out PATH` (default
//! `OBS_repro.json`). The `metrics` section is byte-identical for every
//! `--threads` value; wall times live only in the `spans` section.
//!
//! `fuzz` sweeps deterministic fault rates (drop/truncate/bit-flip/
//! duplicate/reorder) over a simulated capture, prints the per-rate
//! degradation statistics, and asserts the graceful-degradation
//! invariants: zero panics, monotone coverage loss, and a rate-0 run
//! byte-identical to the clean pipeline. It caps the workload at 25
//! houses × 1 day (the packet path buffers every frame).
//!
//! Options: `--houses N` (100), `--days D` (7), `--scale A` (0.1 activity),
//! `--seed S` (42), `--seeds K` (1; >1 runs a parallel seed sweep),
//! `--threads N` (0 = one worker per core; output is bit-identical for
//! every value), `--csv` (emit CDF point series for the figures).
//!
//! `bench` times the pipeline stages with `xkit::bench` and writes
//! `BENCH_repro.json` to the current directory.

use dnsctx::cache_sim;
use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::report::{cdf_series, cdf_strip, count, f1, f2, Table};
use dnsctx::dns_context::{Analysis, AnalysisConfig, ConnClass, Ecdf, PairingPolicy};
use dnsctx::zeek_lite::{Duration, Logs};

/// Every allocation in this binary goes through the counting shim, so
/// `bench` can report per-stage allocation counts and peak live bytes
/// (see the `*_allocs` / `*_alloc_bytes` / `*_peak_bytes` notes in
/// `BENCH_repro.json`). The counters are relaxed atomics — overhead is
/// a few nanoseconds per allocation event.
#[global_allocator]
static ALLOC: xkit::bench::alloc::CountingAlloc = xkit::bench::alloc::CountingAlloc;

struct Opts {
    houses: usize,
    days: f64,
    scale: f64,
    seed: u64,
    seeds: usize,
    threads: usize,
    csv: bool,
    obs: bool,
    obs_out: String,
    serve: String,
    serve_check: bool,
    window_secs: f64,
    tenants: usize,
    source: String,
    iface: String,
    frames: u64,
    format: String,
    rule: String,
    root: String,
    experiments: Vec<String>,
}

impl Opts {
    /// The analysis configuration these options imply.
    fn analysis_cfg(&self) -> AnalysisConfig {
        let mut cfg = AnalysisConfig::default();
        cfg.threads = self.threads;
        cfg
    }
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        houses: 100,
        days: 7.0,
        scale: 0.1,
        seed: 42,
        seeds: 1,
        threads: 0,
        csv: false,
        obs: false,
        obs_out: "OBS_repro.json".into(),
        serve: String::new(),
        serve_check: false,
        window_secs: 60.0,
        tenants: 8,
        source: "file".into(),
        iface: "lo".into(),
        frames: 200,
        format: "human".into(),
        rule: String::new(),
        root: ".".into(),
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--houses" => opts.houses = grab("--houses").parse().expect("houses"),
            "--days" => opts.days = grab("--days").parse().expect("days"),
            "--scale" => opts.scale = grab("--scale").parse().expect("scale"),
            "--seed" => opts.seed = grab("--seed").parse().expect("seed"),
            "--seeds" => opts.seeds = grab("--seeds").parse().expect("seeds"),
            "--threads" => opts.threads = grab("--threads").parse().expect("threads"),
            "--csv" => opts.csv = true,
            "--obs" => opts.obs = true,
            "--obs-out" => opts.obs_out = grab("--obs-out"),
            "--serve" => opts.serve = grab("--serve"),
            "--serve-check" => opts.serve_check = true,
            "--window-secs" => {
                opts.window_secs = grab("--window-secs").parse().expect("window-secs")
            }
            "--tenants" => opts.tenants = grab("--tenants").parse().expect("tenants"),
            "--source" => opts.source = grab("--source"),
            "--iface" => opts.iface = grab("--iface"),
            "--frames" => opts.frames = grab("--frames").parse().expect("frames"),
            "--format" => opts.format = grab("--format"),
            "--rule" => opts.rule = grab("--rule"),
            "--root" => opts.root = grab("--root"),
            "--help" | "-h" => {
                println!(
                    "usage: repro <experiment...> [--houses N] [--days D] [--scale A] [--seed S] [--seeds K] [--threads N] [--csv] [--obs] [--obs-out PATH] [--serve ADDR] [--serve-check] [--window-secs W] [--source file|ring|iface] [--iface NAME] [--frames N] [--tenants N]\n\
                     experiments: table1 table2 table3 fig1 fig2 fig3 sec51 sec52 sec7 sec8\n\
                     \x20              diurnal houses ablate-threshold ablate-pairing ablate-scr bench fuzz obs stream ingest serve all\n\
                     obs-check <snapshot.json>: validate a snapshot written by `repro obs`\n\
                     obs-check --url ADDR: validate the live endpoints of a running --serve instance\n\
                     stream: bounded-memory epoch pipeline (window set by --window-secs, 0 = unwindowed)\n\
                     \x20       --serve ADDR exposes /metrics /snapshot /spans /events /healthz live during\n\
                     \x20       the run (stream and ingest; --serve-check self-validates every endpoint)\n\
                     ingest: stream pipeline behind the RecordSource seam; --source picks the backend\n\
                     \x20       (file = pcap round trip, ring = in-memory SPSC ring, iface = AF_PACKET via\n\
                     \x20       --iface/--frames, needs the raw-socket build and CAP_NET_RAW)\n\
                     serve: multi-tenant streaming daemon; --tenants N concurrent simulated vantage\n\
                     \x20       points sharded over --threads workers, tenant-routed observability on\n\
                     \x20       --serve ADDR (/tenants, /tenants/<id>/snapshot|metrics + aggregate views)\n\
                     lint: token-aware invariant checker over the workspace sources\n\
                     \x20     [--format human|json] [--rule ID] [--root PATH]; exits 1 on violations"
                );
                std::process::exit(0);
            }
            exp => opts.experiments.push(exp.to_string()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".into());
    }
    opts
}

fn main() {
    let opts = parse_args();
    // `obs` drives the instrumented packet pipeline at its own (capped)
    // scale, like `fuzz`; the bare `--obs` flag selects it too.
    if opts.obs || opts.experiments.iter().any(|e| e == "obs") {
        obs(&opts);
        return;
    }
    // `obs-check PATH` parses a snapshot back and checks its contract;
    // `obs-check --url ADDR` does the same against a live server.
    if opts.experiments.first().map(String::as_str) == Some("obs-check") {
        match (opts.experiments.get(1).map(String::as_str), opts.experiments.get(2)) {
            (Some("--url"), Some(addr)) => obs_check_url(addr),
            (Some(path), _) if path != "--url" => obs_check(path),
            _ => {
                eprintln!("usage: repro obs-check <snapshot.json> | repro obs-check --url ADDR");
                std::process::exit(2);
            }
        }
        return;
    }
    // `lint` runs the token-aware invariant checker over the workspace.
    if opts.experiments.iter().any(|e| e == "lint") {
        lint(&opts);
        return;
    }
    // `stream` drives the bounded-memory epoch pipeline, capped like obs.
    if opts.experiments.iter().any(|e| e == "stream") {
        stream(&opts);
        return;
    }
    // `ingest` drives the same pipeline through a chosen RecordSource
    // backend; file and ring emit identical stdout documents.
    if opts.experiments.iter().any(|e| e == "ingest") {
        ingest(&opts);
        return;
    }
    // `serve` runs the multi-tenant streaming daemon.
    if opts.experiments.iter().any(|e| e == "serve") {
        serve_daemon(&opts);
        return;
    }
    // `fuzz` drives the packet path at its own (capped) scale.
    if opts.experiments.iter().any(|e| e == "fuzz") {
        fuzz(&opts);
        return;
    }
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses: opts.houses, days: opts.days, activity: opts.scale },
        ..WorkloadConfig::default()
    };
    // `bench` needs the single-seed pipeline below (its sweep uses
    // --seeds itself), so the sweep shortcut only applies without it.
    if opts.seeds > 1 && !opts.experiments.iter().any(|e| e == "bench") {
        multi_seed(&cfg, &opts);
        return;
    }
    eprintln!(
        "# simulating {} houses x {} days at activity {} (seed {}) ...",
        opts.houses, opts.days, opts.scale, opts.seed
    );
    let t0 = xkit::obs::clock::now();
    let out = Simulation::new(cfg.clone(), opts.seed)
        .expect("valid config")
        .with_threads(opts.threads)
        .run();
    eprintln!(
        "# {} connections, {} DNS transactions in {:.1}s; running analysis ...",
        count(out.logs.conns.len()),
        count(out.logs.dns.len()),
        t0.elapsed_secs()
    );
    let analysis = Analysis::run(&out.logs, opts.analysis_cfg());
    eprintln!("# analysis done in {:.1}s total\n", t0.elapsed_secs());

    let all = opts.experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || opts.experiments.iter().any(|e| e == name);

    if want("table1") {
        table1(&analysis);
    }
    if want("table2") {
        table2(&analysis);
    }
    if want("fig1") {
        fig1(&analysis, opts.csv);
    }
    if want("sec51") {
        sec51(&out.logs, &analysis);
    }
    if want("sec52") {
        sec52(&analysis);
    }
    if want("fig2") {
        fig2(&analysis, opts.csv);
    }
    if want("sec7") {
        sec7(&analysis);
    }
    if want("fig3") {
        fig3(&analysis, opts.csv);
    }
    if want("sec8") {
        sec8(&out.logs, &analysis);
    }
    if want("table3") {
        table3(&out.logs, &analysis);
    }
    if want("diurnal") {
        diurnal(&analysis);
    }
    if want("houses") {
        houses(&analysis);
    }
    if want("ablate-threshold") {
        ablate_threshold(&out.logs);
    }
    if want("ablate-pairing") {
        ablate_pairing(&out.logs);
    }
    if want("ablate-scr") {
        ablate_scr(&out.logs);
    }
    // Not part of `all`: timings are inherently run-to-run noisy, and
    // `all`'s stdout must stay byte-identical across thread counts.
    if opts.experiments.iter().any(|e| e == "bench") {
        bench(&cfg, &opts, &out.logs, &analysis);
    }
}

/// `repro lint [--format human|json] [--rule ID] [--root PATH]` — run
/// the lintkit invariant checker over the workspace. Human diagnostics
/// go to stderr (stdout stays reserved for the one JSON document that
/// `--format json` emits). Exit codes: 0 clean, 1 violations, 2 usage
/// or IO error.
fn lint(opts: &Opts) {
    let fail = |msg: String| -> ! {
        eprintln!("repro lint: {msg}");
        std::process::exit(2);
    };
    match opts.format.as_str() {
        "human" | "json" => {}
        other => fail(format!("unknown --format `{other}` (human|json)")),
    }
    let root = std::path::Path::new(&opts.root);
    if !root.join("crates").is_dir() {
        fail(format!(
            "`{}` does not look like the workspace root (no crates/); pass --root",
            opts.root
        ));
    }
    let only = if opts.rule.is_empty() { None } else { Some(opts.rule.as_str()) };
    let report = match lintkit::lint_workspace(root, only) {
        Ok(r) => r,
        Err(e) => fail(e),
    };
    if opts.format == "json" {
        println!("{}", report.to_json());
        eprintln!(
            "lint: {} ({} files checked)",
            if report.ok() { "clean" } else { "violations found" },
            report.files_checked
        );
    } else {
        eprint!("{}", report.render_human());
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}

fn table1(analysis: &Analysis<'_>) {
    let reports = analysis.platform_reports();
    let mut t = Table::new(
        "Table 1: use of resolver platforms (paper: Local 92.4/72.8/74.0/70.8, Google 83.5/12.9/8.3/9.2, OpenDNS 25.3/9.4/14.2/13.5, Cloudflare 3.8/3.9/2.9/5.7)",
        &["Resolver", "% Houses", "% Lookups", "% Conns", "% Bytes"],
    );
    for r in &reports {
        t.row(&[
            r.name.clone(),
            f1(r.houses_pct),
            f1(r.lookups_pct),
            f1(r.conns_pct),
            f1(r.bytes_pct),
        ]);
    }
    println!("{}", t.render());
}

fn table2(analysis: &Analysis<'_>) {
    let c = analysis.class_counts();
    let mut t = Table::new(
        "Table 2: DNS information origin by connection (paper: N 7.2, LC 42.9, P 7.8, SC 26.3, R 15.7)",
        &["Class", "Desc.", "Conns", "% Conns"],
    );
    for class in ConnClass::all() {
        t.row(&[
            class.symbol().into(),
            class.description().into(),
            count(c.get(class)),
            f1(c.share_pct(class)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "blocked on DNS: {:.1}% (paper 42.1%)   shared-cache hit rate: {:.1}% (paper 62.6%)\n",
        c.blocked_share_pct(),
        100.0 * c.shared_hit_rate()
    );
}

fn fig1(analysis: &Analysis<'_>, csv: bool) {
    let g = analysis.gap_analysis();
    println!("== Figure 1: gap between DNS completion and connection start ==");
    print!("{}", cdf_strip("gap (ms)", &g.gaps_ms, ""));
    for anchor_ms in [1.0, 5.0, 20.0, 100.0, 1_000.0, 60_000.0] {
        println!(
            "   P(gap <= {:>8} ms) = {:.3}",
            anchor_ms,
            g.gaps_ms.fraction_at_or_below(anchor_ms)
        );
    }
    println!(
        "first-use share:  within 20 ms knee {:.1}% (paper 91%)   beyond {:.1}% (paper 21%)",
        100.0 * g.first_use_within_knee,
        100.0 * g.first_use_beyond_knee
    );
    match g.estimate_knee(0.10) {
        Some(k) => println!(
            "estimated knee: {:.0} ms (paper eyeballs ~20 ms; 100 ms threshold stays conservative)\n",
            k.as_millis_f64()
        ),
        None => println!("estimated knee: none (distribution does not flatten)\n"),
    }
    if csv {
        print!("{}", cdf_series("fig1_gap_ms", &g.gaps_ms, 200));
    }
}

fn sec51(logs: &Logs, analysis: &Analysis<'_>) {
    let b = analysis.no_dns_breakdown();
    println!("== par.5.1: connections using no DNS ==");
    println!(
        "N connections: {}   both-high-ports: {:.1}% (paper 81.6%)",
        count(b.total),
        100.0 * b.both_high_ports as f64 / b.total.max(1) as f64
    );
    println!("top hard-coded (reserved-port) endpoints:");
    for ((addr, port), n) in b.reserved_port_endpoints.iter().take(6) {
        println!("   {addr}:{port:<5}  {} conns", count(*n));
    }
    println!(
        "DoT (port 853) connections: {}   DoT packets seen by monitor: {}",
        b.dot_port_conns, logs.stats.dot_port_packets
    );
    println!(
        "unpaired AND not peer-to-peer: {:.2}% of all conns (paper <= 1.3%)\n",
        b.unpaired_not_p2p_share_pct
    );
}

fn sec52(analysis: &Analysis<'_>) {
    let t = analysis.ttl_stats();
    println!("== par.5.2: local caching, prefetching, TTL violations ==");
    println!(
        "LC using expired records: {:.1}% (paper 22.2%)   P: {:.1}% (paper 12.4%)",
        t.lc_violation_share_pct, t.p_violation_share_pct
    );
    if let Some(med) = t.violation_staleness_secs.median() {
        println!(
            "violation staleness: >30s for {:.0}% (paper 82%)   median {:.0}s (paper 890s)   p90 {:.0}s (paper ~19,000s)",
            100.0 * t.violation_staleness_secs.fraction_above(30.0),
            med,
            t.violation_staleness_secs.quantile(0.9).unwrap()
        );
    }
    println!(
        "unused lookups: {} = {:.1}% (paper 3.1M = 37.8%)   speculative ultimately used: {:.1}% (paper 22.3%)",
        count(t.unused_lookups),
        t.unused_share_pct,
        t.speculative_used_share_pct
    );
    println!(
        "median lookup-to-use gap: P {:.0}s (paper 310s)   LC {:.0}s (paper 1033s)\n",
        t.p_use_gap_median_secs.unwrap_or(0.0),
        t.lc_use_gap_median_secs.unwrap_or(0.0)
    );
}

fn fig2(analysis: &Analysis<'_>, csv: bool) {
    let p = analysis.perf();
    println!("== Figure 2 (top): lookup delay for SC+R connections ==");
    print!("{}", cdf_strip("delay", &p.delay_ms, "ms"));
    println!(
        "   median {:.1} ms (paper 8.5)   p75 {:.1} ms (paper 20)   >100 ms: {:.1}% (paper 3.3%)",
        p.delay_ms.median().unwrap_or(0.0),
        p.delay_ms.quantile(0.75).unwrap_or(0.0),
        100.0 * p.delay_ms.fraction_above(100.0)
    );
    println!("\n== Figure 2 (bottom): DNS %% contribution to transaction time ==");
    print!("{}", cdf_strip("all SC+R", &p.contribution_pct, "%"));
    print!("{}", cdf_strip("SC only", &p.contribution_sc_pct, "%"));
    print!("{}", cdf_strip("R only", &p.contribution_r_pct, "%"));
    println!(
        "   contribution >1%: {:.1}% of blocked (paper 20%)   >=10%: {:.1}% (paper 8%)   R-only >1%: {:.1}% (paper 30%)",
        100.0 * p.contribution_pct.fraction_above(1.0),
        100.0 * p.contribution_pct.fraction_above(10.0 - 1e-9),
        100.0 * p.contribution_r_pct.fraction_above(1.0)
    );
    let s = analysis.significance();
    println!("\n== par.6: significance quadrants (abs > 20 ms x rel > 1%) ==");
    println!("   insignificant by both:     {:.1}% (paper 64.0%)", s.neither_pct);
    println!("   relative-only:             {:.1}% (paper 11.5%)", s.rel_only_pct);
    println!("   absolute-only:             {:.1}% (paper 15.9%)", s.abs_only_pct);
    println!("   significant (both):        {:.1}% (paper 8.6%)", s.both_pct);
    println!("   significant, of ALL conns: {:.1}% (paper 3.6%)\n", s.both_share_of_all_pct);
    if csv {
        print!("{}", cdf_series("fig2_delay_ms", &p.delay_ms, 200));
        print!("{}", cdf_series("fig2_contrib_all_pct", &p.contribution_pct, 200));
        print!("{}", cdf_series("fig2_contrib_sc_pct", &p.contribution_sc_pct, 200));
        print!("{}", cdf_series("fig2_contrib_r_pct", &p.contribution_r_pct, 200));
    }
}

fn sec7(analysis: &Analysis<'_>) {
    let reports = analysis.platform_reports();
    let mut t = Table::new(
        "par.7: shared-cache hit rate by platform (paper: Cloudflare 83.6, Local 71.2, OpenDNS 58.8, Google 23.0)",
        &["Resolver", "Hit rate %"],
    );
    let mut sorted: Vec<_> = reports.iter().collect();
    sorted.sort_by(|a, b| b.hit_rate_pct.total_cmp(&a.hit_rate_pct));
    for r in sorted {
        t.row(&[r.name.clone(), f1(r.hit_rate_pct)]);
    }
    println!("{}", t.render());
}

fn fig3(analysis: &Analysis<'_>, csv: bool) {
    let reports = analysis.platform_reports();
    println!("== Figure 3 (top): lookup delay for R connections, per platform ==");
    for r in &reports {
        print!("{}", cdf_strip(&r.name, &r.r_delay_ms, "ms"));
    }
    println!("\n== Figure 3 (bottom): throughput of SC+R connections, per platform (Mbit/s) ==");
    for r in &reports {
        let mbps = Ecdf::new(r.throughput_bps.samples().iter().map(|b| b / 1e6).collect());
        print!("{}", cdf_strip(&r.name, &mbps, ""));
        if r.name == "Google" {
            let clean = Ecdf::new(
                r.throughput_no_artifact_bps.samples().iter().map(|b| b / 1e6).collect(),
            );
            print!("{}", cdf_strip("Google (no conncheck)", &clean, ""));
            println!(
                "   connectivitycheck share of Google SC+R conns: {:.1}% (paper 23.5%)",
                r.artifact_conn_share_pct
            );
        }
    }
    println!();
    if csv {
        for r in &reports {
            print!("{}", cdf_series(&format!("fig3_rdelay_ms_{}", r.name), &r.r_delay_ms, 200));
            print!("{}", cdf_series(&format!("fig3_tput_bps_{}", r.name), &r.throughput_bps, 200));
            if r.name == "Google" {
                print!(
                    "{}",
                    cdf_series("fig3_tput_bps_Google_clean", &r.throughput_no_artifact_bps, 200)
                );
            }
        }
    }
}

fn sec8(logs: &Logs, analysis: &Analysis<'_>) {
    let wh = cache_sim::whole_house(logs, analysis);
    println!("== par.8: a whole-house cache ==");
    println!(
        "conns moving SC/R -> LC: {} of {} = {:.1}% (paper 9.8%)",
        count(wh.moved),
        count(wh.total_conns),
        wh.moved_share_of_all_pct
    );
    println!(
        "benefiting: {:.1}% of SC (paper 22%)   {:.1}% of R (paper 25%)\n",
        wh.sc_benefit_pct, wh.r_benefit_pct
    );
}

fn table3(logs: &Logs, analysis: &Analysis<'_>) {
    let r = cache_sim::refresh(logs, analysis, Duration::from_secs(10));
    let mut t = Table::new(
        "Table 3: efficacy of refreshing expiring names (paper: hits 61.0%->96.6%, lookups 8.4M->1.2B, 0.2->25.2 q/s/house)",
        &["", "Standard", "Refresh All"],
    );
    t.row(&["Conns.".into(), count(r.standard.conns), count(r.refresh_all.conns)]);
    t.row(&[
        "DNS Lookups".into(),
        count(r.standard.lookups as usize),
        count(r.refresh_all.lookups as usize),
    ]);
    t.row(&[
        "Lookups/sec/house".into(),
        f2(r.standard.lookups_per_sec_per_house),
        f2(r.refresh_all.lookups_per_sec_per_house),
    ]);
    t.row(&["Cache Hits".into(), f1(r.standard.hit_pct) + "%", f1(r.refresh_all.hit_pct) + "%"]);
    t.row(&["Cache Misses".into(), f1(r.standard.miss_pct) + "%", f1(r.refresh_all.miss_pct) + "%"]);
    println!("{}", t.render());
    println!("lookup blow-up: {:.0}x (paper ~144x)\n", r.lookup_ratio());
}

fn diurnal(analysis: &Analysis<'_>) {
    println!("== diurnal profile: class mix by hour of day (extension; not a paper artifact) ==");
    let mut t = Table::new(
        "hour-of-day classification",
        &["hour", "conns", "LC %", "blocked %"],
    );
    for (hour, c) in analysis.diurnal_profile() {
        if c.total() == 0 {
            continue;
        }
        t.row(&[
            format!("{hour:02}"),
            count(c.total()),
            f1(c.share_pct(ConnClass::LocalCache)),
            f1(c.blocked_share_pct()),
        ]);
    }
    println!("{}", t.render());
}

fn houses(analysis: &Analysis<'_>) {
    println!("== per-house DNS exposure (extension; not a paper artifact) ==");
    let mut t = Table::new(
        "top 12 houses by connection count",
        &["house", "conns", "lookups", "blocked %", "p95 blocked ms"],
    );
    for h in analysis.house_reports().into_iter().take(12) {
        t.row(&[
            h.addr.to_string(),
            count(h.classes.total()),
            count(h.lookups),
            f1(h.blocked_share_pct()),
            h.blocked_delay_ms
                .quantile(0.95)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_threshold(logs: &Logs) {
    println!("== ablation: blocking threshold sweep (paper footnote 5) ==");
    let mut t = Table::new(
        "class mix vs blocking threshold",
        &["threshold ms", "N %", "LC %", "P %", "SC %", "R %", "blocked %"],
    );
    for ms in [10u64, 20, 50, 100, 200, 500] {
        let mut cfg = AnalysisConfig::default();
        cfg.block_threshold = Duration::from_millis(ms);
        let a = Analysis::run(logs, cfg);
        let c = a.class_counts();
        t.row(&[
            ms.to_string(),
            f1(c.share_pct(ConnClass::NoDns)),
            f1(c.share_pct(ConnClass::LocalCache)),
            f1(c.share_pct(ConnClass::Prefetched)),
            f1(c.share_pct(ConnClass::SharedCache)),
            f1(c.share_pct(ConnClass::Resolution)),
            f1(c.blocked_share_pct()),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_pairing(logs: &Logs) {
    println!("== ablation: pairing policy (paper par.4 robustness check) ==");
    let mut t = Table::new(
        "class mix vs pairing policy",
        &["policy", "N %", "LC %", "P %", "SC %", "R %"],
    );
    for (name, policy) in [
        ("most-recent", PairingPolicy::MostRecent),
        ("random", PairingPolicy::RandomNonExpired),
    ] {
        let mut cfg = AnalysisConfig::default();
        cfg.policy = policy;
        let a = Analysis::run(logs, cfg);
        let c = a.class_counts();
        t.row(&[
            name.into(),
            f1(c.share_pct(ConnClass::NoDns)),
            f1(c.share_pct(ConnClass::LocalCache)),
            f1(c.share_pct(ConnClass::Prefetched)),
            f1(c.share_pct(ConnClass::SharedCache)),
            f1(c.share_pct(ConnClass::Resolution)),
        ]);
    }
    println!("{}", t.render());
}

fn ablate_scr(logs: &Logs) {
    println!("== ablation: SC/R resolver-threshold rule (paper par.5.3, footnote 7) ==");
    let mut t = Table::new(
        "SC/R split vs threshold multiplier",
        &["multiplier", "floor ms", "SC %", "R %", "hit rate %"],
    );
    for (mult, floor) in [(1.0, 3.0), (1.3, 5.0), (1.6, 5.0), (2.0, 8.0), (3.0, 10.0)] {
        let mut cfg = AnalysisConfig::default();
        cfg.threshold_rule.mult = mult;
        cfg.threshold_rule.floor_ms = floor;
        let a = Analysis::run(logs, cfg);
        let c = a.class_counts();
        t.row(&[
            f2(mult),
            f1(floor),
            f1(c.share_pct(ConnClass::SharedCache)),
            f1(c.share_pct(ConnClass::Resolution)),
            f1(100.0 * c.shared_hit_rate()),
        ]);
    }
    println!("{}", t.render());
}


/// `obs` experiment: the packet pipeline end to end with full
/// instrumentation.
///
/// Each stage runs under a `stage.*` span (monotonic wall time plus at
/// least one key counter as a note) and contributes its counters to one
/// [`xkit::obs::Metrics`] snapshot, merged in a fixed stage order. The
/// snapshot is a pure function of (config, seed) — sharded work merges
/// in shard order upstream — so the JSON `metrics` section is
/// byte-identical for every `--threads` value; wall-clock times live
/// only in the `spans` section. Human-readable output (span tree,
/// metrics table) goes to stderr; stdout carries exactly one JSON
/// document, also written to `--obs-out`.
/// Parse a snapshot written by `repro obs` back with the in-tree JSON
/// parser and check its contract: a `meta` section, a non-empty
/// `metrics` object, and one `stage.*` span per pipeline stage, each
/// with a wall time and at least one note. Exits non-zero on any
/// violation, so scripts can gate on it.
fn obs_check(path: &str) {
    let fail = |msg: String| -> ! {
        eprintln!("obs-check: {msg}");
        std::process::exit(1);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(format!("cannot read {path}: {e}")),
    };
    let v = match xkit::obs::json::parse(&text) {
        Ok(v) => v,
        Err(e) => fail(format!("invalid JSON in {path}: {e}")),
    };
    if v.get("meta").and_then(|m| m.as_obj()).is_none() {
        fail(format!("{path}: missing `meta` object"));
    }
    let metrics = match v.get("metrics").and_then(|m| m.as_obj()) {
        Some(m) if !m.is_empty() => m,
        _ => fail(format!("{path}: missing or empty `metrics` object")),
    };
    let spans = match v.get("spans").and_then(|s| s.as_arr()) {
        Some(s) => s,
        None => fail(format!("{path}: missing `spans` array")),
    };
    for want in
        ["capture", "zeek", "pair", "thresholds", "classify", "perf", "report"]
    {
        let name = format!("stage.{want}");
        let span = spans
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some(&name))
            .unwrap_or_else(|| fail(format!("{path}: missing span {name}")));
        if span.get("wall_ns").and_then(|w| w.as_f64()).is_none() {
            fail(format!("{path}: span {name} has no wall_ns"));
        }
        match span.get("notes").and_then(|n| n.as_obj()) {
            Some(notes) if !notes.is_empty() => {}
            _ => fail(format!("{path}: span {name} carries no counter notes")),
        }
    }
    println!(
        "obs-check OK: {path} ({} metrics, {} spans)",
        metrics.len(),
        spans.len()
    );
}

/// Fetch every endpoint of a running observability server and check the
/// DESIGN.md §13 contract: `/healthz` answers, `/snapshot` parses back
/// through the in-tree JSON parser into a [`xkit::obs::Metrics`],
/// `/metrics` is exactly the Prometheus rendering of that same snapshot,
/// `/spans` is a Chrome trace-event array (`ph:"X"`, numeric `ts`/`dur`
/// in microseconds), and `/events` is a well-formed flight-recorder dump.
fn check_live_endpoints(addr: &str) -> Result<(), String> {
    use xkit::obs::{http, json, Metrics};
    let fetch = |path: &str| -> Result<String, String> {
        let (status, body) = http::get(addr, path).map_err(|e| format!("GET {path}: {e}"))?;
        if status != 200 {
            return Err(format!("GET {path}: status {status}"));
        }
        Ok(body)
    };

    let health = fetch("/healthz")?;
    if health != "ok\n" {
        return Err(format!("/healthz body {health:?}"));
    }

    let snapshot = fetch("/snapshot")?;
    let v = json::parse(&snapshot).map_err(|e| format!("/snapshot: {e}"))?;
    let parsed = Metrics::from_json_value(&v).map_err(|e| format!("/snapshot: {e}"))?;

    // The hub publishes whole snapshots atomically, so between two
    // scrapes of a settled run these must agree byte for byte.
    let prom = fetch("/metrics")?;
    if prom != parsed.to_prometheus("dnsctx") {
        return Err("/metrics is not the Prometheus rendering of /snapshot".into());
    }

    let spans = fetch("/spans")?;
    let sv = json::parse(&spans).map_err(|e| format!("/spans: {e}"))?;
    let trace = sv.as_arr().ok_or("/spans: not an array")?;
    for ev in trace {
        if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
            return Err("/spans: event without ph=\"X\"".into());
        }
        for key in ["ts", "dur"] {
            if ev.get(key).and_then(|t| t.as_f64()).is_none() {
                return Err(format!("/spans: event missing numeric {key}"));
            }
        }
    }

    let flight = fetch("/events")?;
    let fv = json::parse(&flight).map_err(|e| format!("/events: {e}"))?;
    for key in ["capacity", "recorded", "dropped"] {
        if fv.get(key).and_then(|n| n.as_f64()).is_none() {
            return Err(format!("/events: missing {key}"));
        }
    }
    if fv.get("events").and_then(|e| e.as_arr()).is_none() {
        return Err("/events: missing events array".into());
    }
    Ok(())
}

/// `obs-check --url ADDR`: the live-server spelling of the snapshot
/// contract check.
fn obs_check_url(addr: &str) {
    match check_live_endpoints(addr) {
        Ok(()) => println!("obs-check OK: live endpoints on {addr}"),
        Err(e) => {
            eprintln!("obs-check: {e}");
            std::process::exit(1);
        }
    }
}

/// Start the live observability plane when `--serve ADDR` was given:
/// returns the hub the pipeline publishes into plus the running server.
/// The server answers from its first instant (empty-but-valid snapshot)
/// and shuts down when the returned guard drops.
fn start_serving(
    opts: &Opts,
    who: &str,
) -> (Option<xkit::obs::ObsHub>, Option<xkit::obs::http::ObsServer>) {
    if opts.serve.is_empty() {
        return (None, None);
    }
    let hub = xkit::obs::ObsHub::default();
    let server = xkit::obs::http::serve(&opts.serve, "dnsctx", hub.clone())
        .expect("bind observability server");
    eprintln!(
        "# {who}: serving /metrics /snapshot /spans /events /healthz on http://{}",
        server.addr()
    );
    (Some(hub), Some(server))
}

/// Run the `--serve-check` self-validation against our own server, then
/// shut it down. Exits non-zero on any contract violation.
fn finish_serving(opts: &Opts, who: &str, server: Option<xkit::obs::http::ObsServer>) {
    let Some(mut server) = server else { return };
    if opts.serve_check {
        let addr = server.addr().to_string();
        match check_live_endpoints(&addr) {
            Ok(()) => eprintln!("# {who}: serve-check OK on {addr}"),
            Err(e) => {
                eprintln!("# {who}: serve-check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    server.shutdown();
}

fn obs(opts: &Opts) {
    use dnsctx::dns_context::classify::{classify_parallel, count_classes, resolver_thresholds};
    use dnsctx::dns_context::perf::PerfAnalysis;
    use dnsctx::dns_context::{Coverage, Pairing};
    use dnsctx::zeek_lite::{Monitor, MonitorConfig, Timestamp};
    use xkit::obs::{Metrics, SpanLog};

    // The packet path buffers every frame, so cap the workload — but keep
    // it above one simulation shard (25 houses) so the thread-invariance
    // of the snapshot exercises a real multi-shard merge.
    let houses = opts.houses.min(50);
    let days = opts.days.min(1.0);
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity: opts.scale },
        ..WorkloadConfig::default()
    };
    eprintln!(
        "# obs: simulating {houses} houses x {days} days at activity {} (seed {}, threads {}) ...",
        opts.scale, opts.seed, opts.threads
    );
    let mut spans = SpanLog::new();
    let mut metrics = Metrics::new();
    let acfg = opts.analysis_cfg();

    // stage.capture: simulate the trace and render it to pcap bytes.
    let s = spans.start("stage.capture");
    let sim = Simulation::new(cfg, opts.seed)
        .expect("valid config")
        .with_threads(opts.threads);
    let mut pcap = Vec::new();
    let (_truth, frames, sim_metrics) =
        sim.run_pcap_observed(&mut pcap, 65_535).expect("in-memory pcap");
    metrics.merge(&sim_metrics);
    spans.note(s, "frames", frames as f64);
    spans.note(s, "pcap_bytes", pcap.len() as f64);
    spans.finish(s);

    // stage.zeek: read the capture record-by-record through the monitor
    // (borrowed records over the source's reusable buffer — no per-frame
    // allocation; the file backend of the ingestion seam).
    let s = spans.start("stage.zeek");
    let mut source = dnsctx::pcapio::source::file(&pcap[..]).expect("pcap header");
    let mut monitor = Monitor::new(MonitorConfig::default());
    while let Some(record) = source.next_record().expect("pcap record") {
        monitor.handle_frame(Timestamp(record.ts_nanos), record.data, record.orig_len);
    }
    metrics.merge(&source.metrics());
    let logs = monitor.finish();
    metrics.merge(&logs.metrics());
    spans.note(s, "conn_rows", logs.conns.len() as f64);
    spans.note(s, "dns_rows", logs.dns.len() as f64);
    spans.finish(s);

    // stage.pair: DN-Hunter pairing of connections with lookups.
    let s = spans.start("stage.pair");
    let pairing = Pairing::build(&logs.conns, &logs.dns, acfg.policy);
    let pair_metrics = pairing.metrics();
    spans.note(s, "app_conns", pairing.app_conn_count() as f64);
    spans.note(s, "hits", pair_metrics.counter("pair.hit") as f64);
    metrics.merge(&pair_metrics);
    spans.finish(s);

    // stage.thresholds: per-resolver SC/R duration thresholds (scans the
    // columnar projections built once here).
    let s = spans.start("stage.thresholds");
    let conn_cols = logs.conn_columns();
    let dns_cols = logs.dns_columns();
    let thresholds = resolver_thresholds(&dns_cols, acfg.threshold_rule);
    metrics.add("threshold.resolvers", thresholds.len() as u64);
    for (addr, thr) in &thresholds {
        metrics.gauge_max(&format!("threshold.{addr}.ms"), thr.as_millis_f64());
    }
    spans.note(s, "resolvers", thresholds.len() as f64);
    spans.finish(s);

    // stage.classify: the Table 2 five-way split.
    let s = spans.start("stage.classify");
    let floor = Duration::from_secs_f64(acfg.threshold_rule.floor_ms / 1e3);
    let classes = classify_parallel(
        opts.threads,
        &dns_cols,
        &pairing,
        acfg.block_threshold,
        &thresholds,
        floor,
    );
    let counts = count_classes(&classes);
    metrics.add("class.no_dns", counts.no_dns as u64);
    metrics.add("class.local_cache", counts.local_cache as u64);
    metrics.add("class.prefetched", counts.prefetched as u64);
    metrics.add("class.shared_cache", counts.shared_cache as u64);
    metrics.add("class.resolution", counts.resolution as u64);
    spans.note(s, "classified", counts.total() as f64);
    spans.finish(s);

    // stage.perf: blocked-connection delay figures.
    let s = spans.start("stage.perf");
    let perf = PerfAnalysis::compute(&conn_cols, &dns_cols, &pairing, &classes);
    metrics.add("perf.blocked_conns", perf.blocked.len() as u64);
    for b in &perf.blocked {
        metrics.observe_with("perf.blocked_dns_ms", xkit::obs::HistSpec::time_ms(), b.dns_ms);
    }
    spans.note(s, "blocked_conns", perf.blocked.len() as f64);
    spans.finish(s);

    // stage.report: coverage summary + human-readable rendering (stderr).
    let s = spans.start("stage.report");
    let coverage = Coverage {
        frame_acceptance: logs.degradation.frame_acceptance(),
        dns_acceptance: logs.degradation.dns_acceptance(),
        app_conns: pairing.app_conn_count(),
        paired: pairing.pairs.iter().filter(|p| p.dns.is_some()).count(),
    };
    metrics.merge(&coverage.to_metrics());
    let table = metrics.render_table();
    spans.note(s, "metrics", metrics.len() as f64);
    spans.finish(s);

    eprintln!("# obs: coverage {coverage}");
    eprint!("{table}");
    eprint!("{}", spans.render_tree());

    let json = format!(
        "{{\"meta\":{{\"experiment\":\"obs\",\"houses\":{houses},\"days\":{days},\"activity\":{},\"seed\":{},\"threads\":{}}},\"metrics\":{},\"spans\":{}}}",
        opts.scale,
        opts.seed,
        opts.threads,
        metrics.to_json(),
        spans.to_json()
    );
    std::fs::write(&opts.obs_out, format!("{json}\n")).expect("write obs snapshot");
    eprintln!("# obs: wrote {}", opts.obs_out);
    println!("{json}");
}

/// `stream` experiment: run the bounded-memory epoch pipeline over a
/// simulated capture and publish the merged analysis + `stream.*`
/// snapshot as one JSON document on stdout (same discipline as `obs`).
///
/// The released DNS rows also feed a windowed `cache_sim` replay, so the
/// whole-house cache numbers come out of the same single pass. For a
/// finite window the peak-live gauges must come in strictly below the
/// full-trace row totals — that is the point of the exercise, and the
/// run asserts it.
fn stream(opts: &Opts) {
    use dnsctx::dns_context::stream;
    use dnsctx::pcapio;
    use dnsctx::zeek_lite::MonitorConfig;
    use xkit::obs::{Metrics, SpanLog};

    // The pcap bytes live in memory, so cap the workload like `obs` does.
    let houses = opts.houses.min(50);
    let days = opts.days.min(1.0);
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity: opts.scale },
        ..WorkloadConfig::default()
    };
    let window = Duration::from_secs_f64(opts.window_secs.max(0.0));
    eprintln!(
        "# stream: {houses} houses x {days} days at activity {} (seed {}, threads {}, window {}s) ...",
        opts.scale, opts.seed, opts.threads, opts.window_secs
    );
    let mut spans = SpanLog::new();
    let mut metrics = Metrics::new();
    let (hub, server) = start_serving(opts, "stream");

    // stage.capture: simulate the trace and render it to pcap bytes.
    let s = spans.start("stage.capture");
    let sim = Simulation::new(cfg, opts.seed)
        .expect("valid config")
        .with_threads(opts.threads);
    let mut pcap = Vec::new();
    let (_truth, frames, sim_metrics) =
        sim.run_pcap_observed(&mut pcap, 65_535).expect("in-memory pcap");
    metrics.merge(&sim_metrics);
    spans.note(s, "frames", frames as f64);
    spans.note(s, "pcap_bytes", pcap.len() as f64);
    spans.finish(s);

    // stage.stream: one pass over the capture, epoch by epoch. Released
    // rows are classified incrementally and replayed through the
    // whole-house cache model, then dropped — nothing accumulates.
    let s = spans.start("stage.stream");
    let mut source = pcapio::source::file(&pcap[..]).expect("pcap header");
    let mut replay = cache_sim::CacheReplay::new(Duration::from_secs(60));
    let window_nanos = window.nanos();
    // One pass through the ingestion seam: `process_source` owns the
    // epoch windowing (same boundary semantics as `pcapio::Epochs`); the
    // sink replays each epoch's released DNS rows through the cache
    // model and drops them. With `--serve`, every epoch boundary also
    // publishes a prefix snapshot to the hub.
    let result = stream::process_source_observed(
        &mut source,
        window,
        MonitorConfig::default(),
        opts.analysis_cfg(),
        hub.as_ref(),
        |out| {
            for txn in &out.dns {
                replay.offer(txn);
            }
        },
    )
    .expect("stream run");
    metrics.merge(&source.metrics());
    for txn in &result.tail.dns {
        replay.offer(txn);
    }
    metrics.merge(&result.analysis_metrics);
    metrics.merge(&result.stream_metrics);
    metrics.add("cache.hits", replay.hits());
    metrics.add("cache.misses", replay.misses());
    metrics.add("cache.evicted", replay.evicted());
    metrics.gauge_max("cache.peak_live", replay.peak_live() as f64);
    spans.note(s, "epochs", metrics.counter("stream.epochs") as f64);
    spans.note(s, "conn_rows", metrics.counter("zeek.conn_rows") as f64);
    spans.note(s, "dns_rows", metrics.counter("zeek.dns_rows") as f64);
    spans.finish(s);

    let conn_rows = metrics.counter("zeek.conn_rows");
    let dns_rows = metrics.counter("zeek.dns_rows");
    let peak_flows = metrics.gauge("stream.peak_live_flows").unwrap_or(0.0);
    let peak_answers = metrics.gauge("stream.peak_live_answers").unwrap_or(0.0);
    eprintln!(
        "# stream: {} epochs; peak live flows {} of {} rows, peak live answers {} of {} rows",
        metrics.counter("stream.epochs"),
        peak_flows,
        count(conn_rows as usize),
        peak_answers,
        count(dns_rows as usize),
    );
    eprintln!(
        "# stream: cache replay {} hits / {} misses (peak {} live)",
        count(replay.hits() as usize),
        count(replay.misses() as usize),
        replay.peak_live()
    );
    if window_nanos > 0 {
        assert!(
            (peak_flows as u64) < conn_rows && (peak_answers as u64) < dns_rows,
            "finite window must bound live state below the full-trace totals"
        );
    }

    // The settled snapshot: after this, `/snapshot` matches the stdout
    // document's metrics section and `/spans` carries the Chrome trace.
    if let Some(hub) = &hub {
        hub.publish_metrics(metrics.clone());
        hub.publish_spans(spans.to_chrome_trace());
    }
    finish_serving(opts, "stream", server);

    let json = format!(
        "{{\"meta\":{{\"experiment\":\"stream\",\"houses\":{houses},\"days\":{days},\"activity\":{},\"seed\":{},\"threads\":{},\"window_secs\":{}}},\"metrics\":{},\"spans\":{}}}",
        opts.scale,
        opts.seed,
        opts.threads,
        opts.window_secs,
        metrics.to_json(),
        spans.to_json()
    );
    println!("{json}");
}

/// `ingest` experiment: one monitor + analysis pass driven through the
/// pluggable `RecordSource` seam, with the backend picked on the command
/// line.
///
/// `--source file` renders the simulated capture to in-memory pcap bytes
/// and replays them through the file backend. `--source ring` pipes the
/// same frames from a producer thread straight into the monitor over the
/// in-memory ring — no pcap serialization, no parse on the consumer
/// side. `--source iface` reads live frames from an `AF_PACKET` socket
/// (requires `--features raw-socket` and CAP_NET_RAW; `--frames N` caps
/// the read).
///
/// The stdout document carries only the deterministic metrics snapshot —
/// no spans, and no backend name in the meta — so a `file` run and a
/// `ring` run over the same workload emit byte-identical JSON.
/// `verify.sh` pins that equivalence.
fn ingest(opts: &Opts) {
    use dnsctx::dns_context::stream;
    use dnsctx::pcapio::{self, RecordSource};
    use dnsctx::zeek_lite::MonitorConfig;
    use xkit::obs::Metrics;

    // Same workload cap as `stream`: the frames live in memory either way.
    let houses = opts.houses.min(50);
    let days = opts.days.min(1.0);
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity: opts.scale },
        ..WorkloadConfig::default()
    };
    let window = Duration::from_secs_f64(opts.window_secs.max(0.0));
    eprintln!(
        "# ingest: source {} ({houses} houses x {days} days at activity {}, seed {}, threads {}, window {}s) ...",
        opts.source, opts.scale, opts.seed, opts.threads, opts.window_secs
    );
    let mut metrics = Metrics::new();
    let mut replay = cache_sim::CacheReplay::new(Duration::from_secs(60));
    let monitor_cfg = MonitorConfig::default();
    let (hub, server) = start_serving(opts, "ingest");

    // Every backend funnels into the same `process_source` call; only the
    // way records arrive differs. The sink closure replays released DNS
    // rows through the cache model, exactly like `stream`.
    let result = match opts.source.as_str() {
        "file" => {
            let sim = Simulation::new(cfg, opts.seed)
                .expect("valid config")
                .with_threads(opts.threads);
            let mut pcap = Vec::new();
            let (_truth, _frames, sim_metrics) =
                sim.run_pcap_observed(&mut pcap, 65_535).expect("in-memory pcap");
            metrics.merge(&sim_metrics);
            let mut source = pcapio::source::file(&pcap[..]).expect("pcap header");
            let result = stream::process_source_observed(
                &mut source,
                window,
                monitor_cfg,
                opts.analysis_cfg(),
                hub.as_ref(),
                |out| {
                    for txn in &out.dns {
                        replay.offer(txn);
                    }
                },
            )
            .expect("ingest run");
            metrics.merge(&source.metrics());
            result
        }
        "ring" => {
            let sim = Simulation::new(cfg, opts.seed)
                .expect("valid config")
                .with_threads(opts.threads);
            let (mut tx, mut rx) =
                pcapio::ring::channel(1 << 20, 65_535, pcapio::Backpressure::Block);
            // Producer-side stalls land in the same flight ring the
            // consumer serves, so `/events` shows backpressure live.
            if let Some(hub) = &hub {
                tx.set_flight(hub.flight().clone());
            }
            // The producer owns the sink; dropping it at the end of the
            // closure closes the ring and the consumer sees EOF. Block
            // policy means nothing drops, so the consumed sequence equals
            // the offered sequence and the snapshot below is identical to
            // the file backend's. The scoped join is the sanctioned
            // spawn seam (thread-spawn-fence).
            let (result, sim_metrics) = xkit::par::join(
                2,
                || {
                    stream::process_source_observed(
                        &mut rx,
                        window,
                        monitor_cfg,
                        opts.analysis_cfg(),
                        hub.as_ref(),
                        |out| {
                            for txn in &out.dns {
                                replay.offer(txn);
                            }
                        },
                    )
                    .expect("ingest run")
                },
                move || {
                    let (_truth, _frames, sim_metrics) = sim.run_ring(&mut tx);
                    sim_metrics
                },
            );
            metrics.merge(&sim_metrics);
            metrics.merge(&rx.metrics());
            result
        }
        "iface" => {
            #[cfg(feature = "raw-socket")]
            {
                let mut source = match pcapio::raw::RawSource::open(&opts.iface, 65_535) {
                    Ok(s) => s.with_limit(opts.frames),
                    Err(e) => {
                        eprintln!("# ingest: cannot open interface {}: {e:?}", opts.iface);
                        std::process::exit(2);
                    }
                };
                let result = stream::process_source_observed(
                    &mut source,
                    window,
                    monitor_cfg,
                    opts.analysis_cfg(),
                    hub.as_ref(),
                    |out| {
                        for txn in &out.dns {
                            replay.offer(txn);
                        }
                    },
                )
                .expect("ingest run");
                metrics.merge(&source.metrics());
                result
            }
            #[cfg(not(feature = "raw-socket"))]
            {
                eprintln!(
                    "# ingest: --source iface needs a build with --features raw-socket"
                );
                std::process::exit(2);
            }
        }
        other => {
            eprintln!("# ingest: unknown source {other:?} (expected file, ring, or iface)");
            std::process::exit(2);
        }
    };

    for txn in &result.tail.dns {
        replay.offer(txn);
    }
    metrics.merge(&result.analysis_metrics);
    metrics.merge(&result.stream_metrics);
    metrics.add("cache.hits", replay.hits());
    metrics.add("cache.misses", replay.misses());
    metrics.add("cache.evicted", replay.evicted());
    metrics.gauge_max("cache.peak_live", replay.peak_live() as f64);

    eprintln!(
        "# ingest[{}]: {} frames in, {} epochs, {} conn rows / {} dns rows",
        opts.source,
        count(metrics.counter("capture.frames_read") as usize),
        metrics.counter("stream.epochs"),
        count(metrics.counter("zeek.conn_rows") as usize),
        count(metrics.counter("zeek.dns_rows") as usize),
    );

    // Settle the live plane: `/snapshot` now matches the stdout metrics
    // section exactly. `ingest` has no spans, so `/spans` stays `[]`.
    if let Some(hub) = &hub {
        hub.publish_metrics(metrics.clone());
    }
    finish_serving(opts, "ingest", server);

    let json = format!(
        "{{\"meta\":{{\"experiment\":\"ingest\",\"houses\":{houses},\"days\":{days},\"activity\":{},\"seed\":{},\"threads\":{},\"window_secs\":{}}},\"metrics\":{}}}",
        opts.scale,
        opts.seed,
        opts.threads,
        opts.window_secs,
        metrics.to_json()
    );
    println!("{json}");
}

/// `serve` experiment: the multi-tenant streaming daemon (DESIGN.md
/// §15). `--tenants N` simulated vantage points (seeds staggered off
/// `--seed`) are registered with a [`bench::serve::Daemon`], sharded
/// over `--threads` pool workers, and served live over the
/// tenant-routed observability plane (`/tenants`,
/// `/tenants/<id>/snapshot|metrics`, aggregate `/snapshot` +
/// `/metrics`). After the drain barrier the daemon shuts down
/// gracefully — every engine flushed through `finish()` before the
/// accept thread exits — and stdout carries one JSON document: the
/// tenant roster plus the id-ordered aggregate fold, whose `metrics`
/// section is byte-identical for any `--threads` value.
fn serve_daemon(opts: &Opts) {
    use bench::serve::{Daemon, DaemonConfig, TenantSpec};

    // Per-tenant workload cap, same spirit as stream/ingest: the daemon
    // scales by tenant count, not per-tenant size.
    let houses = opts.houses.min(12);
    let days = opts.days.min(0.25);
    let tenants = opts.tenants.max(1);
    let addr = if opts.serve.is_empty() { "127.0.0.1:0" } else { &opts.serve };
    eprintln!(
        "# serve: {tenants} tenants ({houses} houses x {days} days at activity {}, base seed {}, threads {}, window {}s)",
        opts.scale, opts.seed, opts.threads, opts.window_secs
    );

    let daemon = Daemon::new(DaemonConfig {
        threads: opts.threads,
        serve: Some(addr.to_string()),
        namespace: "dnsctx".to_string(),
    })
    .expect("bind daemon observability server");
    let bound = daemon.addr().expect("daemon serves");
    eprintln!("# serve: tenant-routed observability on http://{bound}");

    for k in 0..tenants {
        let mut spec = TenantSpec::sim(
            &format!("t{k:03}"),
            houses,
            days,
            opts.scale,
            opts.seed.wrapping_add(k as u64),
        );
        spec.window_secs = opts.window_secs;
        daemon.add_tenant(spec).expect("unique tenant id");
    }

    daemon.drain();
    if daemon.panicked() > 0 {
        eprintln!("# serve: {} tenant(s) failed", daemon.panicked());
        std::process::exit(1);
    }

    if opts.serve_check {
        let addr = bound.to_string();
        match check_live_endpoints(&addr).and_then(|()| check_tenant_endpoints(&addr, tenants)) {
            Ok(()) => eprintln!("# serve: serve-check OK on {addr}"),
            Err(e) => {
                eprintln!("# serve: serve-check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    let roster = daemon.tenants();
    let aggregate = daemon.shutdown();
    eprintln!(
        "# serve: drained {} tenants, {} frames in, {} epochs, {} conn rows / {} dns rows",
        roster.len(),
        count(aggregate.counter("capture.frames_read") as usize),
        aggregate.counter("stream.epochs"),
        count(aggregate.counter("zeek.conn_rows") as usize),
        count(aggregate.counter("zeek.dns_rows") as usize),
    );

    let mut roster_json = String::from("[");
    for (i, (id, state)) in roster.iter().enumerate() {
        if i > 0 {
            roster_json.push(',');
        }
        roster_json.push_str(&format!("{{\"id\":\"{id}\",\"state\":\"{state}\"}}"));
    }
    roster_json.push(']');
    let json = format!(
        "{{\"meta\":{{\"experiment\":\"serve\",\"tenants\":{tenants},\"houses\":{houses},\"days\":{days},\"activity\":{},\"seed\":{},\"threads\":{},\"window_secs\":{}}},\"tenants\":{roster_json},\"metrics\":{}}}",
        opts.scale,
        opts.seed,
        opts.threads,
        opts.window_secs,
        aggregate.to_json()
    );
    println!("{json}");
}

/// The tenant-plane half of `--serve-check`: `/tenants` lists exactly
/// the drained roster, every tenant's snapshot parses back and its
/// Prometheus view agrees, and unknown tenants 404.
fn check_tenant_endpoints(addr: &str, expect: usize) -> Result<(), String> {
    use xkit::obs::{http, json, Metrics};
    let (status, body) = http::get(addr, "/tenants").map_err(|e| format!("GET /tenants: {e}"))?;
    if status != 200 {
        return Err(format!("GET /tenants: status {status}"));
    }
    let v = json::parse(&body).map_err(|e| format!("/tenants: {e}"))?;
    let roster = v
        .get("tenants")
        .and_then(|t| t.as_arr())
        .ok_or("/tenants: missing tenants array")?
        .to_vec();
    if roster.len() != expect {
        return Err(format!("/tenants lists {} tenants, want {expect}", roster.len()));
    }
    for entry in &roster {
        let id = entry
            .get("id")
            .and_then(|x| x.as_str())
            .ok_or("/tenants: entry without id")?;
        let state = entry.get("state").and_then(|x| x.as_str()).unwrap_or("?");
        if state != "drained" {
            return Err(format!("tenant {id} in state {state:?} after drain"));
        }
        let path = format!("/tenants/{id}/snapshot");
        let (status, snap) = http::get(addr, &path).map_err(|e| format!("GET {path}: {e}"))?;
        if status != 200 {
            return Err(format!("GET {path}: status {status}"));
        }
        let sv = json::parse(&snap).map_err(|e| format!("{path}: {e}"))?;
        let parsed = Metrics::from_json_value(&sv).map_err(|e| format!("{path}: {e}"))?;
        let path = format!("/tenants/{id}/metrics");
        let (status, prom) = http::get(addr, &path).map_err(|e| format!("GET {path}: {e}"))?;
        if status != 200 || prom != parsed.to_prometheus("dnsctx") {
            return Err(format!("{path} is not the Prometheus rendering of the snapshot"));
        }
    }
    let (status, _) = http::get(addr, "/tenants/no-such-tenant/snapshot")
        .map_err(|e| format!("GET unknown tenant: {e}"))?;
    if status != 404 {
        return Err(format!("unknown tenant answered {status}, want 404"));
    }
    Ok(())
}

/// `fuzz` experiment: corrupt a simulated capture at increasing fault
/// rates and verify the pipeline degrades gracefully.
///
/// One simulation is rendered to pcap bytes once; each rate then streams
/// those bytes through a seeded [`xkit::fault::FaultInjector`] (split off
/// the master RNG per rate, so every run is byte-reproducible), re-parses
/// the corrupted capture with the monitor, and runs the full analysis.
/// Asserted invariants: the sweep completes without a panic, frame
/// acceptance and pair coverage degrade monotonically with the rate, and
/// the rate-0 capture and its logs are byte-identical to the clean
/// pipeline's.
fn fuzz(opts: &Opts) {
    use dnsctx::pcapio::{self, PcapRecord, RecordTransform};
    use dnsctx::zeek_lite::{logfmt, Monitor, MonitorConfig};
    use xkit::fault::{FaultConfig, FaultInjector, RawFrame};
    use xkit::rng::{SeedableRng, StdRng};

    /// Bridge the injector into the pcap rewrite seam.
    struct Corruptor(FaultInjector);
    impl Corruptor {
        fn to_rec(f: RawFrame) -> PcapRecord {
            PcapRecord { ts_nanos: f.ts_nanos, orig_len: f.orig_len, data: f.data }
        }
    }
    impl RecordTransform for Corruptor {
        fn apply(&mut self, r: PcapRecord) -> Vec<PcapRecord> {
            let raw = RawFrame { ts_nanos: r.ts_nanos, orig_len: r.orig_len, data: r.data };
            self.0.apply(raw).into_iter().map(Self::to_rec).collect()
        }
        fn flush(&mut self) -> Vec<PcapRecord> {
            self.0.flush().into_iter().map(Self::to_rec).collect()
        }
    }

    /// Serialize both logs to their Zeek-style TSV form for byte-exact
    /// comparison.
    fn render_logs(logs: &Logs) -> Vec<u8> {
        let mut buf = Vec::new();
        logfmt::write_conn_log(&mut buf, &logs.conns).expect("in-memory write");
        logfmt::write_dns_log(&mut buf, &logs.dns).expect("in-memory write");
        buf
    }

    // The packet path buffers every frame, so cap the workload well below
    // the analysis default (still overridable downward via the flags).
    let houses = opts.houses.min(25);
    let days = opts.days.min(1.0);
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity: opts.scale },
        ..WorkloadConfig::default()
    };
    eprintln!(
        "# fuzz: simulating {houses} houses x {days} days at activity {} (seed {}) ...",
        opts.scale, opts.seed
    );
    let sim = Simulation::new(cfg, opts.seed)
        .expect("valid config")
        .with_threads(opts.threads);
    let mut clean = Vec::new();
    let (_, frames) = sim.run_pcap(&mut clean, 65_535).expect("in-memory pcap");
    eprintln!("# fuzz: {} frames, {} pcap bytes", count(frames as usize), count(clean.len()));

    let baseline = Monitor::process_pcap(&clean[..], MonitorConfig::default())
        .expect("clean capture parses");
    let baseline_fmt = render_logs(&baseline);

    let master = StdRng::seed_from_u64(opts.seed);
    let rates = [0.0, 0.01, 0.05, 0.2];
    let mut acceptances = Vec::new();
    let mut coverages = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let mut corrupted = Vec::new();
        let mut c = Corruptor(FaultInjector::new(FaultConfig::uniform(rate), master.split(i as u64)));
        pcapio::rewrite(&clean[..], &mut corrupted, &mut c).expect("in-memory rewrite");
        let fs = *c.0.stats();
        let logs = Monitor::process_pcap(&corrupted[..], MonitorConfig::default())
            .expect("corrupted capture still reads record-by-record");
        let analysis = Analysis::run(&logs, opts.analysis_cfg());
        let cov = analysis.coverage();
        let counts = analysis.class_counts();

        println!("== fuzz: fault rate {rate} ==");
        println!(
            "injector: {} in / {} out — {} dropped, {} truncated, {} bit-flipped, {} duplicated, {} reordered",
            fs.frames_in, fs.frames_out, fs.dropped, fs.truncated, fs.bit_flipped, fs.duplicated, fs.reordered
        );
        print!("{}", logs.degradation);
        println!("coverage: {cov}");
        println!(
            "class mix: N {:.1}%  LC {:.1}%  P {:.1}%  SC {:.1}%  R {:.1}%\n",
            counts.share_pct(ConnClass::NoDns),
            counts.share_pct(ConnClass::LocalCache),
            counts.share_pct(ConnClass::Prefetched),
            counts.share_pct(ConnClass::SharedCache),
            counts.share_pct(ConnClass::Resolution),
        );

        if rate == 0.0 {
            assert_eq!(corrupted, clean, "rate-0 rewrite must be byte-identical to the capture");
            assert_eq!(
                render_logs(&logs),
                baseline_fmt,
                "rate-0 logs must be byte-identical to the clean pipeline"
            );
            assert!(logs.degradation.is_clean(), "rate-0 run must reject nothing");
        }
        acceptances.push(cov.frame_acceptance);
        coverages.push(cov.pair_coverage());
    }

    // Monotone degradation: frame acceptance tracks the rate exactly;
    // pair coverage follows with a small stochastic slack (corrupting a
    // SYN removes the connection from the denominator too).
    for i in 1..rates.len() {
        assert!(
            acceptances[i] <= acceptances[i - 1] + 1e-9,
            "frame acceptance rose between rates {} and {}: {} -> {}",
            rates[i - 1], rates[i], acceptances[i - 1], acceptances[i]
        );
        assert!(
            coverages[i] <= coverages[i - 1] + 0.02,
            "pair coverage rose between rates {} and {}: {} -> {}",
            rates[i - 1], rates[i], coverages[i - 1], coverages[i]
        );
    }
    let last = rates.len() - 1;
    assert!(acceptances[last] < acceptances[0], "20% faults must reject frames");
    assert!(coverages[last] < coverages[0], "20% faults must cost pair coverage");
    println!(
        "fuzz OK: rates {rates:?}, zero panics, monotone degradation, rate-0 byte-identical"
    );
}

/// One seed's headline statistics, for the multi-seed spread table.
#[derive(Clone, Copy)]
struct Headline {
    seed: u64,
    shares: [f64; 5],
    blocked: f64,
    hit_rate: f64,
    significant_all: f64,
}

/// Run one full simulation + analysis and distill the headline numbers.
/// Each worker runs its simulation single-threaded: in a seed sweep the
/// parallelism budget is spent across seeds, not within one. The
/// caller's scratch (one per sweep worker, built once) carries the
/// pairing arena across seeds.
fn headline_for_seed(
    cfg: &WorkloadConfig,
    scratch: &mut dnsctx::dns_context::AnalysisScratch,
    seed: u64,
) -> Headline {
    let out = Simulation::new(cfg.clone(), seed)
        .expect("valid config")
        .with_threads(1)
        .run();
    let mut acfg = AnalysisConfig::default();
    acfg.threads = 1;
    let analysis = Analysis::run_with(scratch, &out.logs, acfg);
    let c = analysis.class_counts();
    let shares = [
        c.share_pct(ConnClass::NoDns),
        c.share_pct(ConnClass::LocalCache),
        c.share_pct(ConnClass::Prefetched),
        c.share_pct(ConnClass::SharedCache),
        c.share_pct(ConnClass::Resolution),
    ];
    Headline {
        seed,
        shares,
        blocked: c.blocked_share_pct(),
        hit_rate: 100.0 * c.shared_hit_rate(),
        significant_all: analysis.significance().both_share_of_all_pct,
    }
}

/// Multi-seed mode: run K simulations in parallel and report the spread
/// of the headline statistics — a confidence check that no conclusion
/// hangs on one lucky seed.
fn multi_seed(cfg: &WorkloadConfig, opts: &Opts) {
    eprintln!(
        "# running {} seeds ({}..{}) across {} worker(s) ...",
        opts.seeds,
        opts.seed,
        opts.seed + opts.seeds as u64 - 1,
        xkit::par::resolve_threads(opts.threads).min(opts.seeds)
    );
    let seeds: Vec<u64> = (0..opts.seeds as u64).map(|k| opts.seed + k).collect();
    // par_map_with preserves input order (the rows come back seed-sorted)
    // and builds one analysis scratch per worker, reused across seeds.
    let rows = xkit::par::par_map_with(
        opts.threads,
        seeds,
        dnsctx::dns_context::AnalysisScratch::default,
        |scratch, _, seed| headline_for_seed(cfg, scratch, seed),
    );

    let mut t = Table::new(
        "headline statistics across seeds (paper: N 7.2, LC 42.9, P 7.8, SC 26.3, R 15.7; blocked 42.1; hit 62.6; signif 3.6)",
        &["seed", "N %", "LC %", "P %", "SC %", "R %", "blocked %", "hit %", "signif %"],
    );
    for h in &rows {
        t.row(&[
            h.seed.to_string(),
            f1(h.shares[0]),
            f1(h.shares[1]),
            f1(h.shares[2]),
            f1(h.shares[3]),
            f1(h.shares[4]),
            f1(h.blocked),
            f1(h.hit_rate),
            f1(h.significant_all),
        ]);
    }
    let col = |f: &dyn Fn(&Headline) -> f64| {
        let vals: Vec<f64> = rows.iter().map(f).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min);
        (mean, spread)
    };
    let summary: Vec<(f64, f64)> = vec![
        col(&|h| h.shares[0]),
        col(&|h| h.shares[1]),
        col(&|h| h.shares[2]),
        col(&|h| h.shares[3]),
        col(&|h| h.shares[4]),
        col(&|h| h.blocked),
        col(&|h| h.hit_rate),
        col(&|h| h.significant_all),
    ];
    let mut mean_row = vec!["mean".to_string()];
    let mut spread_row = vec!["spread".to_string()];
    for (m, s) in &summary {
        mean_row.push(f1(*m));
        spread_row.push(f1(*s));
    }
    t.row(&mean_row);
    t.row(&spread_row);
    println!("{}", t.render());
}

/// `bench` experiment: time the pipeline stages (simulate, pair,
/// classify, perf) with `xkit::bench`, measure the seed sweep
/// sequential vs parallel, and write `BENCH_repro.json` to the current
/// directory as a baseline for future runs.
fn bench(cfg: &WorkloadConfig, opts: &Opts, logs: &Logs, analysis: &Analysis<'_>) {
    use dnsctx::dns_context::classify::classify_parallel;
    use dnsctx::dns_context::{AnalysisScratch, Pairing, PairingScratch};
    use xkit::bench::alloc;

    eprintln!("# bench: timing pipeline stages ...");
    let mut h = xkit::bench::Harness::coarse("repro");
    h.samples = 3;
    let acfg = opts.analysis_cfg();

    // One instrumented run per stage first: allocation events, bytes
    // requested, and peak live bytes, reported as notes next to the
    // timings. The timed samples below then run uninstrumented closures
    // of the same shape.
    let mut stage_allocs: Vec<(&str, alloc::StageAllocs)> = Vec::new();

    let (_, a) = alloc::measure(|| {
        Simulation::new(cfg.clone(), opts.seed)
            .expect("valid config")
            .with_threads(opts.threads)
            .run()
            .logs
            .conns
            .len()
    });
    stage_allocs.push(("simulate", a));
    h.bench("simulate", || {
        Simulation::new(cfg.clone(), opts.seed)
            .expect("valid config")
            .with_threads(opts.threads)
            .run()
            .logs
            .conns
            .len()
    });

    // Steady-state pairing: the arena scratch is built once and reused,
    // as the analysis facade and the sweep workers do.
    let mut pair_scratch = PairingScratch::default();
    let (_, a) = alloc::measure(|| {
        Pairing::build_with(&mut pair_scratch, &logs.conns, &logs.dns, acfg.policy).pairs.len()
    });
    stage_allocs.push(("pair", a));
    h.bench("pair", || {
        Pairing::build_with(&mut pair_scratch, &logs.conns, &logs.dns, acfg.policy).pairs.len()
    });

    let floor = Duration::from_secs_f64(acfg.threshold_rule.floor_ms / 1e3);
    let dns_cols = analysis.dns_columns();
    let (_, a) = alloc::measure(|| {
        classify_parallel(
            opts.threads,
            dns_cols,
            &analysis.pairing,
            acfg.block_threshold,
            &analysis.thresholds,
            floor,
        )
        .len()
    });
    stage_allocs.push(("classify", a));
    h.bench("classify", || {
        classify_parallel(
            opts.threads,
            dns_cols,
            &analysis.pairing,
            acfg.block_threshold,
            &analysis.thresholds,
            floor,
        )
        .len()
    });

    let (_, a) = alloc::measure(|| analysis.perf().blocked.len());
    stage_allocs.push(("perf", a));
    h.bench("perf", || analysis.perf().blocked.len());

    // Seed-sweep scaling: the identical K-seed sweep on one worker vs
    // the requested thread count. The headline statistics must agree
    // exactly — the sweep is deterministic per seed. Each worker gets
    // one analysis scratch, built once and reused across its seeds.
    let sweep_seeds: Vec<u64> = (0..opts.seeds.max(2) as u64).map(|k| opts.seed + k).collect();
    eprintln!(
        "# bench: {}-seed sweep, sequential vs parallel ...",
        sweep_seeds.len()
    );
    let t = xkit::obs::clock::now();
    let seq = xkit::par::par_map_with(
        1,
        sweep_seeds.clone(),
        AnalysisScratch::default,
        |scratch, _, seed| headline_for_seed(cfg, scratch, seed),
    );
    let seq_s = t.elapsed_secs();
    let t = xkit::obs::clock::now();
    let par = xkit::par::par_map_with(
        opts.threads,
        sweep_seeds.clone(),
        AnalysisScratch::default,
        |scratch, _, seed| headline_for_seed(cfg, scratch, seed),
    );
    let par_s = t.elapsed_secs();
    assert_eq!(seq.len(), par.len());
    assert!(
        seq.iter().zip(&par).all(|(a, b)| a.shares == b.shares),
        "parallel sweep diverged from sequential"
    );

    h.note("cores", xkit::par::available_threads() as f64);
    h.note("threads", xkit::par::resolve_threads(opts.threads) as f64);
    h.note("houses", opts.houses as f64);
    h.note("days", opts.days);
    h.note("activity", opts.scale);
    h.note("sweep_seeds", sweep_seeds.len() as f64);
    h.note("sweep_seq_s", seq_s);
    h.note("sweep_par_s", par_s);
    h.note("sweep_speedup_x", seq_s / par_s.max(1e-9));
    for (stage, a) in &stage_allocs {
        h.note(&format!("{stage}_allocs"), a.allocs as f64);
        h.note(&format!("{stage}_alloc_bytes"), a.bytes as f64);
        h.note(&format!("{stage}_peak_bytes"), a.peak_live as f64);
    }
    // Timing tables are diagnostics: stderr, never stdout.
    eprint!("{}", h.render_table());
    let path = std::path::Path::new("BENCH_repro.json");
    h.write_json(path).expect("write BENCH_repro.json");
    eprintln!("# bench: wrote {}", path.display());
}
