//! Shared fixtures for the `xkit::bench` benches and the `repro`
//! harness, plus the [`serve`] daemon behind `repro serve`.

pub mod serve;

use dnsctx::ccz_sim::{ScaleKnobs, SimOutput, Simulation, WorkloadConfig};

/// Build a simulation at the given size (houses, days, activity).
pub fn sim(houses: usize, days: f64, activity: f64, seed: u64) -> Simulation {
    let cfg = WorkloadConfig {
        scale: ScaleKnobs { houses, days, activity },
        ..WorkloadConfig::default()
    };
    Simulation::new(cfg, seed).expect("valid config")
}

/// Run a small fixed workload once (bench fixtures reuse the output).
pub fn small_output(seed: u64) -> SimOutput {
    sim(6, 0.1, 1.0, seed).run()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_build() {
        let out = super::small_output(3);
        assert!(!out.logs.conns.is_empty());
    }
}
