//! The multi-tenant streaming daemon behind `repro serve`.
//!
//! Each tenant is one capture stream — a simulated ISP/CCZ vantage
//! point — owning a `pcapio::RecordSource` and a `StreamEngine` run to
//! completion with bounded state (epoch windowing + watermark
//! eviction). Tenants are sharded across a long-lived [`xkit::par::Pool`];
//! their engines publish prefix-valid snapshots into per-tenant
//! [`ObsHub`]s collected in an [`xkit::obs::HubRegistry`], which the
//! extended `xkit::obs::http` server routes live (`/tenants`,
//! `/tenants/<id>/snapshot`, `/tenants/<id>/metrics`) and folds — in
//! tenant-id order — into the global `/snapshot` + `/metrics` views.
//!
//! Determinism contract (DESIGN.md §15): every tenant's settled
//! snapshot is a pure function of its [`TenantSpec`] (engines run
//! single-threaded; parallelism lives *across* tenants), and the
//! aggregate is an id-ordered fold of settled snapshots — so the
//! post-drain aggregate is byte-identical for any worker count, and
//! byte-identical to running the tenants sequentially.
//!
//! Shutdown ordering: [`Daemon::shutdown`] drains the pool first (every
//! engine's `finish()` has published its settled snapshot), publishes
//! the final aggregate into the root hub, and only then stops the HTTP
//! accept thread — a scrape that raced shutdown saw either a live
//! prefix or the settled aggregate, never a torn state.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{stream, AnalysisConfig};
use dnsctx::zeek_lite::{Duration, MonitorConfig};
use dnsctx::{cache_sim, pcapio};
use pcapio::RecordSource;
use xkit::obs::http::{self, ObsServer};
use xkit::obs::{HubRegistry, Metrics, ObsHub};
use xkit::par::Pool;

/// Where a tenant's records come from.
#[derive(Debug, Clone)]
pub enum TenantSource {
    /// Replay an in-memory pcap byte stream (the file backend).
    Pcap(Vec<u8>),
    /// A per-tenant `Simulation::run_ring` generator feeding a
    /// `Block`-policy SPSC ring: producer and engine run concurrently
    /// inside the tenant's pool slot, and Block policy keeps the
    /// settled snapshot identical to a pcap replay of the same world.
    SimRing { houses: usize, days: f64, activity: f64, seed: u64, capacity: usize },
}

/// One tenant stream: a stable id, a source, and the epoch window its
/// engine releases on. The settled snapshot is a pure function of this
/// struct — the root of the daemon's determinism argument.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    pub id: String,
    pub source: TenantSource,
    pub window_secs: f64,
}

impl TenantSpec {
    /// A simulation-fed tenant at the given scale.
    pub fn sim(id: &str, houses: usize, days: f64, activity: f64, seed: u64) -> TenantSpec {
        TenantSpec {
            id: id.to_string(),
            source: TenantSource::SimRing { houses, days, activity, seed, capacity: 1 << 18 },
            window_secs: 60.0,
        }
    }
}

/// Daemon construction knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Pool width (0 = one worker per core). Tenant *engines* are
    /// always single-threaded; this is cross-tenant parallelism only.
    pub threads: usize,
    /// `Some(addr)` serves the tenant-routed observability plane
    /// (`127.0.0.1:0` binds an ephemeral port).
    pub serve: Option<String>,
    /// Prometheus metric-name prefix.
    pub namespace: String,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig { threads: 0, serve: None, namespace: "dnsctx".to_string() }
    }
}

/// The long-running serve daemon: a tenant registry, a worker pool, and
/// (optionally) the HTTP plane. See the module docs for the
/// determinism and shutdown-ordering contracts.
pub struct Daemon {
    registry: HubRegistry,
    root: ObsHub,
    pool: Pool,
    server: Option<ObsServer>,
}

impl Daemon {
    pub fn new(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        let registry = HubRegistry::new();
        let root = ObsHub::default();
        let server = match &cfg.serve {
            Some(addr) => Some(http::serve_tenants(
                addr,
                &cfg.namespace,
                root.clone(),
                registry.clone(),
            )?),
            None => None,
        };
        Ok(Daemon { registry, root, pool: Pool::new(cfg.threads), server })
    }

    /// The bound HTTP address, when serving.
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// The registry the HTTP plane routes (shared, live).
    pub fn registry(&self) -> &HubRegistry {
        &self.registry
    }

    /// The root hub (`/spans`, `/events`): daemon lifecycle events land
    /// in its flight recorder.
    pub fn root(&self) -> &ObsHub {
        &self.root
    }

    /// Register a tenant and enqueue its stream on the pool. Errors on
    /// duplicate or malformed ids; the tenant starts in state `queued`,
    /// moves to `running` when a worker picks it up, and settles as
    /// `drained` (or `failed` if its job panicked).
    pub fn add_tenant(&self, spec: TenantSpec) -> Result<(), String> {
        let hub = ObsHub::default();
        self.registry.add(&spec.id, hub.clone())?;
        self.root.flight().record("tenant.add", spec.id.clone(), self.registry.len() as f64);
        let registry = self.registry.clone();
        let root = self.root.clone();
        self.pool.submit(move || {
            let id = spec.id.clone();
            registry.set_state(&id, "running");
            // Contained by the pool's panic fence: a tenant whose run
            // panics is marked failed and the daemon keeps serving.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_tenant(&spec, Some(&hub))
            }));
            match outcome {
                Ok(_) => {
                    registry.set_state(&id, "drained");
                    root.flight().record("tenant.drain", id, 0.0);
                }
                Err(payload) => {
                    registry.set_state(&id, "failed");
                    root.flight().record("tenant.fail", id, 0.0);
                    std::panic::resume_unwind(payload);
                }
            }
        });
        Ok(())
    }

    /// Drain barrier: block until every queued/running tenant settles.
    pub fn drain(&self) {
        self.pool.wait_idle();
    }

    /// Remove a tenant and free its state (hub, snapshots, peak
    /// gauges). Waits for the pool to go idle first when the tenant has
    /// not settled yet — removal never races a running engine.
    pub fn remove_tenant(&self, id: &str) -> bool {
        match self.registry.state(id) {
            None => return false,
            Some(state) if state != "drained" && state != "failed" => self.drain(),
            Some(_) => {}
        }
        let removed = self.registry.remove(id);
        if removed {
            self.root.flight().record("tenant.remove", id.to_string(), self.registry.len() as f64);
        }
        removed
    }

    /// `(id, state)` pairs in tenant-id order.
    pub fn tenants(&self) -> Vec<(String, String)> {
        self.registry.tenants()
    }

    /// The id-ordered aggregate fold of every registered tenant's
    /// current snapshot (settled after [`drain`](Daemon::drain)).
    pub fn aggregate(&self) -> Metrics {
        self.registry.aggregate()
    }

    /// Jobs that panicked (tenants in state `failed`).
    pub fn panicked(&self) -> u64 {
        self.pool.panicked()
    }

    /// Graceful shutdown: drain every engine through `finish()`,
    /// publish the settled aggregate into the root hub, and only then
    /// stop the accept thread. Returns the settled aggregate.
    pub fn shutdown(mut self) -> Metrics {
        self.drain();
        let settled = self.aggregate();
        self.root.publish_metrics(settled.clone());
        if let Some(server) = &mut self.server {
            server.shutdown();
        }
        self.pool.shutdown();
        settled
    }
}

/// Run one tenant's stream to completion: source → engine (epoch
/// windowing, watermark eviction, single-threaded analysis) → cache
/// replay, publishing prefix-valid snapshots into `hub` along the way.
/// Returns — and publishes as the tenant's settled snapshot — the full
/// per-tenant document: `sim.* capture.* zeek.* stream.*` plus the
/// analysis and `cache.*` sections, mirroring the `repro ingest`
/// metrics section so one tenant of the daemon is comparable to one
/// standalone run.
pub fn run_tenant(spec: &TenantSpec, hub: Option<&ObsHub>) -> Metrics {
    let window = Duration::from_secs_f64(spec.window_secs.max(0.0));
    let monitor_cfg = MonitorConfig::default();
    // One thread per engine: cross-tenant parallelism only, so the
    // settled snapshot cannot depend on the pool width.
    let mut analysis_cfg = AnalysisConfig::default();
    analysis_cfg.threads = 1;
    let mut replay = cache_sim::CacheReplay::new(Duration::from_secs(60));
    let mut metrics = Metrics::new();

    let result = match &spec.source {
        TenantSource::Pcap(bytes) => {
            let mut source = pcapio::source::file(&bytes[..]).expect("tenant pcap header");
            let result = stream::process_source_observed(
                &mut source,
                window,
                monitor_cfg,
                analysis_cfg,
                hub,
                |out| {
                    for txn in &out.dns {
                        replay.offer(txn);
                    }
                },
            )
            .expect("tenant stream run");
            metrics.merge(&source.metrics());
            result
        }
        TenantSource::SimRing { houses, days, activity, seed, capacity } => {
            let cfg = WorkloadConfig {
                scale: ScaleKnobs { houses: *houses, days: *days, activity: *activity },
                ..WorkloadConfig::default()
            };
            let sim = Simulation::new(cfg, *seed).expect("valid tenant config");
            let (mut tx, mut rx) =
                pcapio::ring::channel(*capacity, 65_535, pcapio::Backpressure::Block);
            if let Some(hub) = hub {
                tx.set_flight(hub.flight().clone());
            }
            // Producer and engine share the tenant's pool slot via a
            // scoped join; dropping the sink at the end of the producer
            // closure closes the ring and the engine sees EOF.
            let (result, sim_metrics) = xkit::par::join(
                2,
                || {
                    stream::process_source_observed(
                        &mut rx,
                        window,
                        monitor_cfg,
                        analysis_cfg,
                        hub,
                        |out| {
                            for txn in &out.dns {
                                replay.offer(txn);
                            }
                        },
                    )
                    .expect("tenant stream run")
                },
                move || {
                    let (_truth, _frames, sim_metrics) = sim.run_ring(&mut tx);
                    sim_metrics
                },
            );
            metrics.merge(&sim_metrics);
            metrics.merge(&rx.metrics());
            result
        }
    };

    for txn in &result.tail.dns {
        replay.offer(txn);
    }
    metrics.merge(&result.settled_metrics());
    metrics.add("cache.hits", replay.hits());
    metrics.add("cache.misses", replay.misses());
    metrics.add("cache.evicted", replay.evicted());
    metrics.gauge_max("cache.peak_live", replay.peak_live() as f64);

    // The tenant's settled snapshot replaces the engine's last
    // (analysis+stream only) publication, so `/tenants/<id>/snapshot`
    // carries the full document.
    if let Some(hub) = hub {
        hub.publish_metrics(metrics.clone());
    }
    metrics
}

/// The sequential reference fold: run every spec in id order on this
/// thread and merge the settled snapshots. The daemon's post-drain
/// [`Daemon::aggregate`] must be byte-identical to this for any pool
/// width — the lifecycle tests pin it.
pub fn sequential_aggregate(specs: &[TenantSpec]) -> Metrics {
    let mut sorted: Vec<&TenantSpec> = specs.iter().collect();
    sorted.sort_by(|a, b| a.id.cmp(&b.id));
    let mut folded = Metrics::new();
    for spec in sorted {
        folded.merge(&run_tenant(spec, None));
    }
    folded
}
