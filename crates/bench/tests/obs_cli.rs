//! CLI-level checks for `repro --obs`: stdout carries exactly one valid
//! JSON document, the `metrics` section is byte-identical across thread
//! counts, and every pipeline stage appears as a named span with a wall
//! time and at least one counter note.

use std::path::PathBuf;
use std::process::Command;
use xkit::obs::json;

fn run_obs(threads: usize, out: &PathBuf) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["obs", "--houses", "30", "--days", "0.02", "--scale", "0.3"])
        .args(["--threads", &threads.to_string()])
        .arg("--obs-out")
        .arg(out)
        .output()
        .expect("spawn repro");
    assert!(output.status.success(), "repro obs failed: {output:?}");
    String::from_utf8(output.stdout).expect("utf8 stdout")
}

#[test]
fn obs_json_parses_back_and_is_thread_invariant() {
    let dir = std::env::temp_dir();
    let f1 = dir.join(format!("obs_cli_t1_{}.json", std::process::id()));
    let f8 = dir.join(format!("obs_cli_t8_{}.json", std::process::id()));
    let out1 = run_obs(1, &f1);
    let out8 = run_obs(8, &f8);

    // stdout is one valid JSON document, identical to the --obs-out file.
    let v1 = json::parse(&out1).expect("valid JSON on stdout (t1)");
    let v8 = json::parse(&out8).expect("valid JSON on stdout (t8)");
    let file1 = std::fs::read_to_string(&f1).expect("obs-out written");
    assert_eq!(out1.trim_end(), file1.trim_end(), "stdout and --obs-out must agree");
    let _ = std::fs::remove_file(&f1);
    let _ = std::fs::remove_file(&f8);

    // The metrics section is byte-identical for any thread count
    // (canonical render; wall times live only under "spans").
    let m1 = v1.get("metrics").expect("metrics section").render();
    let m8 = v8.get("metrics").expect("metrics section").render();
    assert_eq!(m1, m8, "metrics snapshot must be thread-invariant");

    // Every pipeline stage shows up as a span with a time and a counter.
    let spans = v1.get("spans").and_then(|s| s.as_arr()).expect("spans array");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
        .collect();
    for want in [
        "stage.capture",
        "stage.zeek",
        "stage.pair",
        "stage.thresholds",
        "stage.classify",
        "stage.perf",
        "stage.report",
    ] {
        assert!(names.contains(&want), "missing span {want} in {names:?}");
    }
    for s in spans {
        let wall = s.get("wall_ns").and_then(|w| w.as_f64()).expect("wall_ns");
        assert!(wall >= 0.0);
        let notes = s.get("notes").and_then(|n| n.as_obj()).expect("notes object");
        assert!(!notes.is_empty(), "every stage span carries >=1 counter note");
    }

    // Key counters made it through the pipe.
    let metrics = v1.get("metrics").expect("metrics");
    for key in ["capture.frames_read", "zeek.frames_accepted", "pair.app_conns"] {
        let n = metrics.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        assert!(n > 0.0, "expected non-zero {key}");
    }
}
