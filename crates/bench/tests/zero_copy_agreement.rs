//! Zero-copy agreement suite.
//!
//! The hot path now parses borrowed records over a reusable read buffer,
//! pairs through a flat entry arena, and scans columnar log projections.
//! None of that may be observable: these tests pin that capture bytes,
//! rendered (sorted) logs, class counts, and the metrics snapshot are
//! byte-identical for worker threads {1, 8} × epoch windows {30 s, ∞},
//! and that the owned-record fallback (the fault-rewrite seam, the one
//! sanctioned exit from the zero-copy path) agrees with the borrowed
//! reader.

use dnsctx::ccz_sim::{ScaleKnobs, Simulation, WorkloadConfig};
use dnsctx::dns_context::{stream, Analysis, AnalysisConfig};
use dnsctx::pcapio::{self, PcapRecord, RecordTransform};
use dnsctx::zeek_lite::{logfmt, Duration, Logs, Monitor, MonitorConfig};
use xkit::fault::{FaultConfig, FaultInjector, RawFrame};
use xkit::rng::{SeedableRng, StdRng};

const SEED: u64 = 1303;

/// Small-but-busy workload: the packet path buffers every frame, so the
/// suite stays at integration-test scale.
fn workload() -> WorkloadConfig {
    WorkloadConfig {
        scale: ScaleKnobs { houses: 12, days: 0.25, activity: 0.5 },
        ..WorkloadConfig::default()
    }
}

/// Render the capture produced with `threads` simulation workers.
fn capture_bytes(threads: usize) -> Vec<u8> {
    let sim = Simulation::new(workload(), SEED).expect("valid config").with_threads(threads);
    let mut bytes = Vec::new();
    let (_, frames) = sim.run_pcap(&mut bytes, 65_535).expect("in-memory pcap");
    assert!(frames > 0, "workload must produce traffic");
    bytes
}

/// Canonical byte form of both logs (Zeek-style TSV, sorted by the
/// monitor's own ordering guarantees).
fn render_logs(logs: &Logs) -> Vec<u8> {
    let mut buf = Vec::new();
    logfmt::write_conn_log(&mut buf, &logs.conns).expect("in-memory write");
    logfmt::write_dns_log(&mut buf, &logs.dns).expect("in-memory write");
    buf
}

fn analysis_cfg(threads: usize) -> AnalysisConfig {
    AnalysisConfig { threads, ..AnalysisConfig::default() }
}

#[test]
fn capture_bytes_are_thread_invariant() {
    let t1 = capture_bytes(1);
    let t8 = capture_bytes(8);
    assert!(!t1.is_empty());
    assert_eq!(t1, t8, "pcap bytes must not depend on simulation threads");
    // And the run is reproducible at a fixed seed.
    assert_eq!(t1, capture_bytes(1), "same seed, same bytes");
}

#[test]
fn batch_pipeline_agrees_across_threads() {
    let bytes = capture_bytes(1);
    let logs = Monitor::process_pcap(&bytes[..], MonitorConfig::default())
        .expect("clean capture parses");
    let rendered = render_logs(&logs);
    assert!(!rendered.is_empty());

    let a1 = Analysis::run(&logs, analysis_cfg(1));
    let a8 = Analysis::run(&logs, analysis_cfg(8));
    assert_eq!(a1.class_counts(), a8.class_counts(), "class counts must be thread-invariant");
    assert_eq!(
        logs.metrics().render_table(),
        Monitor::process_pcap(&bytes[..], MonitorConfig::default())
            .expect("clean capture parses")
            .metrics()
            .render_table(),
        "monitor metrics must be reproducible"
    );
}

#[test]
fn stream_agrees_for_all_windows_and_threads() {
    let bytes = capture_bytes(1);
    let batch_logs = Monitor::process_pcap(&bytes[..], MonitorConfig::default())
        .expect("clean capture parses");
    let batch_rendered = render_logs(&batch_logs);
    let batch_counts = Analysis::run(&batch_logs, analysis_cfg(1)).class_counts();

    let mut metric_snapshots = Vec::new();
    for window in [Duration::from_secs(30), Duration::ZERO] {
        for threads in [1usize, 8] {
            let mut released = Logs::default();
            let result = stream::process_pcap(
                &bytes[..],
                window,
                MonitorConfig::default(),
                analysis_cfg(threads),
                |epoch| {
                    released.conns.extend(epoch.conns);
                    released.dns.extend(epoch.dns);
                },
            )
            .expect("stream run");
            released.conns.extend(result.tail.conns);
            released.dns.extend(result.tail.dns);

            assert_eq!(
                render_logs(&released),
                batch_rendered,
                "stream rows (window {window:?}, threads {threads}) must equal batch logs"
            );
            assert_eq!(
                result.class_counts, batch_counts,
                "stream class counts (window {window:?}, threads {threads}) must equal batch"
            );
            metric_snapshots.push(result.analysis_metrics.render_table());
        }
    }
    for s in &metric_snapshots[1..] {
        assert_eq!(
            s, &metric_snapshots[0],
            "analysis metrics must be byte-identical across windows x threads"
        );
    }
}

/// Bridge the fault injector into the pcap rewrite seam — the path that
/// deliberately leaves the zero-copy reader via `RecordRef::to_owned`.
struct Corruptor(FaultInjector);

impl Corruptor {
    fn to_rec(f: RawFrame) -> PcapRecord {
        PcapRecord { ts_nanos: f.ts_nanos, orig_len: f.orig_len, data: f.data }
    }
}

impl RecordTransform for Corruptor {
    fn apply(&mut self, r: PcapRecord) -> Vec<PcapRecord> {
        let raw = RawFrame { ts_nanos: r.ts_nanos, orig_len: r.orig_len, data: r.data };
        self.0.apply(raw).into_iter().map(Self::to_rec).collect()
    }
    fn flush(&mut self) -> Vec<PcapRecord> {
        self.0.flush().into_iter().map(Self::to_rec).collect()
    }
}

#[test]
fn owned_fallback_rewrite_agrees_with_borrowed_reader() {
    let clean = capture_bytes(1);

    // Rate 0: the owned round-trip must reproduce the capture bit for
    // bit, and its logs must match the borrowed reader's.
    let mut copied = Vec::new();
    let mut identity =
        Corruptor(FaultInjector::new(FaultConfig::clean(), StdRng::seed_from_u64(SEED)));
    pcapio::rewrite(&clean[..], &mut copied, &mut identity).expect("in-memory rewrite");
    assert_eq!(copied, clean, "rate-0 rewrite must be byte-identical");
    let borrowed = Monitor::process_pcap(&clean[..], MonitorConfig::default()).expect("parses");
    let owned = Monitor::process_pcap(&copied[..], MonitorConfig::default()).expect("parses");
    assert_eq!(render_logs(&owned), render_logs(&borrowed));

    // A lossy rewrite is still fully deterministic: same seed, same
    // corrupted bytes, and the downstream analysis is thread-invariant.
    let corrupt_once = || {
        let mut out = Vec::new();
        let mut c = Corruptor(FaultInjector::new(
            FaultConfig::uniform(0.05),
            StdRng::seed_from_u64(SEED),
        ));
        pcapio::rewrite(&clean[..], &mut out, &mut c).expect("in-memory rewrite");
        out
    };
    let corrupted = corrupt_once();
    assert_eq!(corrupted, corrupt_once(), "fault rewrite must be seed-deterministic");
    assert_ne!(corrupted, clean, "a 5% fault rate must actually corrupt something");

    let logs = Monitor::process_pcap(&corrupted[..], MonitorConfig::default())
        .expect("corrupted capture still reads record-by-record");
    let c1 = Analysis::run(&logs, analysis_cfg(1)).class_counts();
    let c8 = Analysis::run(&logs, analysis_cfg(8)).class_counts();
    assert_eq!(c1, c8, "post-fault class counts must be thread-invariant");
    assert_eq!(
        logs.metrics().render_table(),
        Monitor::process_pcap(&corrupted[..], MonitorConfig::default())
            .expect("parses")
            .metrics()
            .render_table(),
        "post-fault metrics must be reproducible"
    );
}
