//! CLI-level checks for the live observability plane: `--serve` must not
//! perturb the stdout document (byte-identical for `ingest`, identical
//! meta + metrics sections for `stream`, whose span wall times are
//! non-deterministic by nature), `--serve-check` must pass against our
//! own endpoints, and `obs-check --url` must validate a live server.

use std::process::Command;
use xkit::obs::json;

const WORKLOAD: &[&str] =
    &["--houses", "6", "--days", "0.05", "--scale", "0.5", "--window-secs", "30"];

fn run(args: &[&str]) -> (String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    assert!(output.status.success(), "repro {args:?} failed: {output:?}");
    (
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        String::from_utf8(output.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn stream_stdout_is_unperturbed_by_serving() {
    let (plain, _) = run(&[&["stream"], WORKLOAD].concat());
    let (served, err) = run(&[
        &["stream"],
        WORKLOAD,
        &["--serve", "127.0.0.1:0", "--serve-check"],
    ]
    .concat());
    assert!(err.contains("serve-check OK"), "serve-check must pass: {err}");

    let vp = json::parse(&plain).expect("plain stream JSON");
    let vs = json::parse(&served).expect("served stream JSON");
    assert_eq!(
        vp.get("meta").expect("meta").render(),
        vs.get("meta").expect("meta").render(),
        "--serve must not change the meta section"
    );
    assert_eq!(
        vp.get("metrics").expect("metrics").render(),
        vs.get("metrics").expect("metrics").render(),
        "--serve must not change the metrics section"
    );
}

#[test]
fn ingest_stdout_is_byte_identical_with_serving() {
    let (plain, _) = run(&[&["ingest", "--source", "file"], WORKLOAD].concat());
    let (served, err) = run(&[
        &["ingest", "--source", "file"],
        WORKLOAD,
        &["--serve", "127.0.0.1:0", "--serve-check"],
    ]
    .concat());
    assert!(err.contains("serve-check OK"), "serve-check must pass: {err}");
    assert_eq!(plain, served, "--serve must leave the ingest document byte-identical");
}

#[test]
fn serve_daemon_cli_is_deterministic_across_pool_widths() {
    // The daemon experiment: 8 tenants, serve-check over the tenant
    // routes, and a post-drain aggregate that is byte-identical for
    // any worker count (only meta.threads may differ).
    let base: &[&str] = &["serve", "--tenants", "8", "--houses", "4", "--days", "0.05"];
    let (narrow, _) = run(&[base, WORKLOAD, &["--threads", "1"]].concat());
    let (wide, err) = run(&[
        base,
        WORKLOAD,
        &["--threads", "4", "--serve", "127.0.0.1:0", "--serve-check"],
    ]
    .concat());
    assert!(err.contains("serve-check OK"), "serve-check must pass: {err}");
    assert!(err.contains("drained 8 tenants"), "stderr summary: {err}");

    let vn = json::parse(&narrow).expect("narrow serve JSON");
    let vw = json::parse(&wide).expect("wide serve JSON");
    assert_eq!(
        vn.get("metrics").expect("metrics").render(),
        vw.get("metrics").expect("metrics").render(),
        "the aggregate fold must not depend on the pool width"
    );
    assert_eq!(
        vn.get("tenants").expect("tenants").render(),
        vw.get("tenants").expect("tenants").render(),
        "the drained roster must not depend on the pool width"
    );
    let roster = vn.get("tenants").and_then(|t| t.as_arr()).expect("roster").to_vec();
    assert_eq!(roster.len(), 8);
    for entry in &roster {
        assert_eq!(entry.get("state").and_then(|s| s.as_str()), Some("drained"));
    }
}

#[test]
fn obs_check_url_validates_a_live_server() {
    // Serve a real snapshot from this process, then point the CLI's
    // live-endpoint checker at it.
    let hub = xkit::obs::ObsHub::default();
    let mut m = xkit::obs::Metrics::new();
    m.add("zeek.frames_seen", 12);
    m.gauge_max("stream.peak_live_flows", 3.0);
    m.observe("zeek.dns_rtt_ms", 4.0);
    hub.publish_metrics(m);
    hub.flight().record("epoch.release", "epoch 0: 1 conn + 1 dns rows", 2.0);
    let server = xkit::obs::http::serve("127.0.0.1:0", "dnsctx", hub).unwrap();

    let addr = server.addr().to_string();
    let (stdout, _) = run(&["obs-check", "--url", &addr]);
    assert!(stdout.contains("obs-check OK"), "unexpected output: {stdout}");

    // A dead server must fail the check with a non-zero exit.
    drop(server);
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["obs-check", "--url", &addr])
        .output()
        .expect("spawn repro");
    assert!(!output.status.success(), "obs-check must fail against a dead server");
}
