//! Lifecycle tests for the multi-tenant serve daemon (DESIGN.md §15).
//!
//! Pinned contracts: N≥8 tenants run concurrently with bounded
//! per-tenant state; mid-run per-tenant scrapes are valid prefixes of
//! the settled snapshot; the post-drain aggregate is byte-identical to
//! the sequential id-ordered fold for any pool width; and removing a
//! tenant frees its state (its peak gauges drop out of the aggregate).

use bench::serve::{sequential_aggregate, Daemon, DaemonConfig, TenantSpec, TenantSource};
use xkit::obs::{http, json, Metric, Metrics};

/// Eight small tenants: six simulation-fed rings plus two pcap replays
/// of other worlds, so both source kinds ride the same pool.
fn specs() -> Vec<TenantSpec> {
    let mut specs: Vec<TenantSpec> = (0..6)
        .map(|k| {
            let mut spec = TenantSpec::sim(&format!("t{k:03}"), 4, 0.05, 0.1, 100 + k as u64);
            spec.window_secs = 30.0;
            spec
        })
        .collect();
    for (k, seed) in [(6, 900u64), (7, 901u64)] {
        let mut pcap = Vec::new();
        bench::sim(3, 0.04, 0.1, seed)
            .run_pcap_observed(&mut pcap, 65_535)
            .expect("in-memory pcap");
        specs.push(TenantSpec {
            id: format!("t{k:03}"),
            source: TenantSource::Pcap(pcap),
            window_secs: 30.0,
        });
    }
    specs
}

fn drained_daemon(threads: usize, serve: bool) -> (Daemon, Vec<TenantSpec>) {
    let daemon = Daemon::new(DaemonConfig {
        threads,
        serve: serve.then(|| "127.0.0.1:0".to_string()),
        namespace: "dnsctx".to_string(),
    })
    .expect("daemon");
    let specs = specs();
    for spec in &specs {
        daemon.add_tenant(spec.clone()).expect("unique id");
    }
    (daemon, specs)
}

#[test]
fn post_drain_aggregate_is_byte_identical_to_the_sequential_fold() {
    let (wide, specs) = drained_daemon(4, false);
    wide.drain();
    let wide_agg = wide.aggregate().to_json();

    let (narrow, _) = drained_daemon(1, false);
    narrow.drain();
    let narrow_agg = narrow.aggregate().to_json();

    let sequential = sequential_aggregate(&specs).to_json();
    assert_eq!(wide_agg, sequential, "4-worker fold != sequential fold");
    assert_eq!(narrow_agg, sequential, "1-worker fold != sequential fold");

    // Every tenant settled, none failed, and per-tenant state stayed
    // bounded: the engines ran with a finite window, so the aggregate
    // peak gauges sit far below the total row counts.
    for (id, state) in wide.tenants() {
        assert_eq!(state, "drained", "tenant {id}");
    }
    assert_eq!(wide.panicked(), 0);
    let agg = wide.aggregate();
    assert!(agg.counter("stream.epochs") > 8, "windowing is active");
    let peak = agg.gauge("stream.peak_live_answers").expect("peak gauge");
    assert!(
        peak < agg.counter("zeek.dns_rows") as f64,
        "peak live answers {peak} not bounded below total dns rows"
    );
    assert_eq!(wide.shutdown().to_json(), sequential);
}

#[test]
fn mid_run_tenant_scrapes_are_prefix_valid() {
    let (daemon, _) = drained_daemon(4, true);
    let addr = daemon.addr().expect("serving").to_string();

    // Scrape one tenant while the fleet runs. The roster route answers
    // from the first instant; the snapshot may be empty until the
    // tenant's first epoch releases, and any non-empty scrape must be
    // a prefix of the settled snapshot.
    let mut mid: Option<Metrics> = None;
    loop {
        let (status, body) = http::get(&addr, "/tenants/t000/snapshot").expect("scrape");
        assert_eq!(status, 200);
        let v = json::parse(&body).expect("mid-run snapshot parses");
        let snap = Metrics::from_json_value(&v).expect("mid-run snapshot is a metrics doc");
        if !snap.is_empty() {
            mid = Some(snap);
            break;
        }
        if daemon.registry().state("t000").as_deref() == Some("drained") {
            break;
        }
        std::thread::yield_now();
    }
    let (status, _) = http::get(&addr, "/tenants").expect("roster");
    assert_eq!(status, 200);

    daemon.drain();
    let fin = daemon.registry().hub("t000").expect("t000 hub").metrics();
    if let Some(mid) = mid {
        for (name, metric) in mid.iter() {
            match metric {
                Metric::Counter(n) => assert!(
                    *n <= fin.counter(name),
                    "counter {name}: mid {n} > final {}",
                    fin.counter(name)
                ),
                // Peak gauges are monotone; level gauges (live_*) track
                // the current state and legitimately shrink at drain.
                Metric::Gauge(g) if name.contains("peak") => {
                    let f = fin.gauge(name).unwrap_or(0.0);
                    assert!(*g <= f, "gauge {name}: mid {g} > final {f}");
                }
                Metric::Gauge(_) => {}
                Metric::Hist(h) => {
                    let f = fin.hist(name).map(|h| h.count()).unwrap_or(0);
                    assert!(h.count() <= f, "hist {name}: mid count {} > final {f}", h.count());
                }
            }
        }
    }
    daemon.shutdown();
}

#[test]
fn remove_frees_tenant_state_and_peak_gauges_drop() {
    let daemon = Daemon::new(DaemonConfig {
        threads: 2,
        serve: Some("127.0.0.1:0".to_string()),
        namespace: "dnsctx".to_string(),
    })
    .expect("daemon");
    let addr = daemon.addr().expect("serving").to_string();

    let big = TenantSpec::sim("big", 8, 0.08, 0.2, 7);
    let small = TenantSpec::sim("small", 2, 0.02, 0.1, 8);
    daemon.add_tenant(big).expect("big");
    daemon.add_tenant(small.clone()).expect("small");
    assert!(
        daemon.add_tenant(TenantSpec::sim("big", 1, 0.01, 0.1, 9)).is_err(),
        "duplicate ids are rejected"
    );
    daemon.drain();

    let before = daemon.aggregate();
    let small_only = daemon.registry().hub("small").expect("small hub").metrics();
    let big_peak = daemon.registry().hub("big").expect("big hub").metrics();
    let big_peak = big_peak.gauge("stream.peak_live_answers").expect("big peak");
    assert_eq!(before.gauge("stream.peak_live_answers"), Some(big_peak));

    // Removal frees the hub: the aggregate collapses to the surviving
    // tenant's snapshot byte for byte, and the HTTP plane 404s.
    assert!(daemon.remove_tenant("big"));
    assert!(!daemon.remove_tenant("big"), "second remove is a no-op");
    assert!(!daemon.remove_tenant("never-added"));
    let after = daemon.aggregate();
    assert_eq!(after.to_json(), small_only.to_json());
    assert!(
        after.gauge("stream.peak_live_answers").expect("small peak") < big_peak,
        "the removed tenant's peak must drop out of the aggregate"
    );
    let (status, _) = http::get(&addr, "/tenants/big/snapshot").expect("scrape");
    assert_eq!(status, 404);
    let (status, body) = http::get(&addr, "/tenants").expect("roster");
    assert_eq!(status, 200);
    assert!(!body.contains("\"big\""), "roster still lists big: {body}");

    // The removed tenant's settled snapshot is reproducible from its
    // spec alone — state was freed, not lost.
    assert_eq!(
        daemon.shutdown().to_json(),
        sequential_aggregate(&[small]).to_json()
    );
}

#[test]
fn lifecycle_events_land_in_the_root_flight_ring() {
    let (daemon, _) = drained_daemon(2, false);
    daemon.drain();
    daemon.remove_tenant("t007");
    let events = daemon.root().flight().snapshot();
    for kind in ["tenant.add", "tenant.drain", "tenant.remove"] {
        assert!(events.iter().any(|e| e.kind == kind), "missing {kind} event");
    }
    daemon.shutdown();
}
