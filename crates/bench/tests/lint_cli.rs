//! `repro lint` CLI contract: exit codes, the stdout/stderr split, and
//! a JSON document that parses back through `xkit::obs::json`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn lint_json_on_the_real_workspace_is_clean_and_parses_back() {
    let root = workspace_root();
    let out = repro(&["lint", "--format", "json", "--root", root.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // stdout is exactly one JSON document; the status line is on stderr.
    let doc = String::from_utf8(out.stdout).expect("utf8 stdout");
    let v = xkit::obs::json::parse(doc.trim()).expect("stdout parses via xkit::obs::json");
    assert_eq!(v.get("tool").and_then(|t| t.as_str()), Some("lintkit"));
    assert!(matches!(v.get("ok"), Some(xkit::obs::json::Value::Bool(true))));
    assert!(v.get("files_checked").and_then(|n| n.as_f64()).expect("files_checked") > 50.0);

    // The advertised rule table matches the engine's.
    let rules = v.get("rules").and_then(|r| r.as_arr()).expect("rules array");
    let engine = lintkit::rules::rules();
    assert_eq!(rules.len(), engine.len());
    for (json_rule, rule) in rules.iter().zip(&engine) {
        assert_eq!(json_rule.get("id").and_then(|i| i.as_str()), Some(rule.id));
    }
    // Clean run: every per-rule count is zero and no diagnostics.
    for rule in &engine {
        let n = v.get("counts").and_then(|c| c.get(rule.id)).and_then(|n| n.as_f64());
        assert_eq!(n, Some(0.0), "count for {}", rule.id);
    }
    assert_eq!(v.get("diagnostics").and_then(|d| d.as_arr()).map(<[_]>::len), Some(0));

    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lint: clean"), "status line on stderr: {err}");
}

/// Build a throwaway mini-workspace with one seeded violation per
/// stream (Rust source + manifest) and return its root.
fn seeded_workspace(tag: &str) -> PathBuf {
    let root = workspace_root().join("target").join(format!("lint_cli_{tag}_{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .expect("write lib.rs");
    std::fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\n\n[dependencies]\nrand = \"0.8\"\n",
    )
    .expect("write manifest");
    root
}

#[test]
fn lint_reports_seeded_violations_with_exit_code_one() {
    let root = seeded_workspace("human");
    let out = repro(&["lint", "--root", root.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clock-seam"), "human diagnostics on stderr: {err}");
    assert!(err.contains("dep-denylist"), "{err}");
    assert!(err.contains("crates/demo/src/lib.rs:1:"), "span-accurate location: {err}");
    assert!(out.stdout.is_empty(), "human mode writes nothing to stdout");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn rule_filter_restricts_the_run() {
    let root = seeded_workspace("filter");
    let arg = root.to_str().expect("utf8");

    let out = repro(&["lint", "--format", "json", "--rule", "clock-seam", "--root", arg]);
    assert_eq!(out.status.code(), Some(1));
    let v = xkit::obs::json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("parses");
    let diags = v.get("diagnostics").and_then(|d| d.as_arr()).expect("diagnostics");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("rule").and_then(|r| r.as_str()), Some("clock-seam"));
    assert_eq!(diags[0].get("line").and_then(|l| l.as_f64()), Some(1.0));

    // Filtering to a rule the seeded tree satisfies exits clean.
    let out = repro(&["lint", "--rule", "stdout-discipline", "--root", arg]);
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn usage_errors_exit_two() {
    let root = workspace_root();
    let arg = root.to_str().expect("utf8");
    let out = repro(&["lint", "--rule", "no-such-rule", "--root", arg]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));

    let out = repro(&["lint", "--format", "yaml", "--root", arg]);
    assert_eq!(out.status.code(), Some(2));

    let out = repro(&["lint", "--root", "/nonexistent/not-a-workspace"]);
    assert_eq!(out.status.code(), Some(2));
}
