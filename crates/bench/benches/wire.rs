//! Microbenchmarks for the wire-format layers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dnsctx::dns_wire::{Message, Name, Record, RrType};
use dnsctx::netpkt::{Frame, MacAddr, Packet, TcpFlags, TcpHeader};
use dnsctx::pcapio::{PcapReader, PcapWriter, TsPrecision};
use std::net::Ipv4Addr;

fn sample_response() -> Message {
    let name = Name::parse("www.example-service.com").unwrap();
    let q = Message::query(0x1234, name.clone(), RrType::A);
    let mut m = q.answer_template();
    m.answers.push(Record::cname(name.clone(), 300, Name::parse("edge-7.cdnint.net").unwrap()));
    for i in 0..3u8 {
        m.answers.push(Record::a(
            Name::parse("edge-7.cdnint.net").unwrap(),
            60,
            Ipv4Addr::new(104, 16, 0, i),
        ));
    }
    m
}

fn bench_dns_wire(c: &mut Criterion) {
    let msg = sample_response();
    let wire = msg.encode();
    let mut g = c.benchmark_group("dns_wire");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_response", |b| b.iter(|| std::hint::black_box(msg.encode())));
    g.bench_function("decode_response", |b| {
        b.iter(|| Message::decode(std::hint::black_box(&wire)).unwrap())
    });
    g.finish();
}

fn bench_netpkt(c: &mut Criterion) {
    let frame = Frame::tcp(
        MacAddr::LOCAL,
        MacAddr::UPSTREAM,
        Ipv4Addr::new(10, 77, 0, 1),
        Ipv4Addr::new(104, 16, 0, 9),
        TcpHeader::segment(50_000, 443, 1_000, 2_000, TcpFlags::PSH_ACK),
        b"payload bytes here",
    );
    let bytes = frame.encode();
    let mut g = c.benchmark_group("netpkt");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("build_tcp_frame", |b| {
        b.iter(|| {
            std::hint::black_box(
                Frame::tcp(
                    MacAddr::LOCAL,
                    MacAddr::UPSTREAM,
                    Ipv4Addr::new(10, 77, 0, 1),
                    Ipv4Addr::new(104, 16, 0, 9),
                    TcpHeader::segment(50_000, 443, 1_000, 2_000, TcpFlags::PSH_ACK),
                    b"payload bytes here",
                )
                .encode(),
            )
        })
    });
    g.bench_function("parse_tcp_frame", |b| {
        b.iter(|| Packet::parse(std::hint::black_box(&bytes), bytes.len()).unwrap())
    });
    g.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let frame_bytes = Frame::udp(
        MacAddr::LOCAL,
        MacAddr::UPSTREAM,
        Ipv4Addr::new(10, 77, 0, 1),
        Ipv4Addr::new(198, 51, 100, 53),
        51_000,
        53,
        &sample_response().encode(),
    )
    .encode();
    const FRAMES: usize = 1_000;
    let mut g = c.benchmark_group("pcapio");
    g.throughput(Throughput::Elements(FRAMES as u64));
    g.bench_function("write_1k_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(FRAMES * (frame_bytes.len() + 16) + 24);
            let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
            for i in 0..FRAMES {
                w.write_packet(i as u64 * 1_000, &frame_bytes, None).unwrap();
            }
            std::hint::black_box(buf)
        })
    });
    let capture = {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535, TsPrecision::Nano).unwrap();
        for i in 0..FRAMES {
            w.write_packet(i as u64 * 1_000, &frame_bytes, None).unwrap();
        }
        buf
    };
    g.bench_function("read_1k_records", |b| {
        b.iter_batched(
            || capture.clone(),
            |buf| PcapReader::new(&buf[..]).unwrap().records().count(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_dns_wire, bench_netpkt, bench_pcap);
criterion_main!(benches);
