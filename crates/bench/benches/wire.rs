//! Microbenchmarks for the wire-format layers.

use dnsctx::dns_wire::{Message, Name, Record, RrType};
use dnsctx::netpkt::{Frame, MacAddr, Packet, TcpFlags, TcpHeader};
use dnsctx::pcapio::{PcapReader, PcapWriter, TsPrecision};
use std::net::Ipv4Addr;
use xkit::bench::Harness;

fn sample_response() -> Message {
    let name = Name::parse("www.example-service.com").unwrap();
    let q = Message::query(0x1234, name.clone(), RrType::A);
    let mut m = q.answer_template();
    m.answers.push(Record::cname(name.clone(), 300, Name::parse("edge-7.cdnint.net").unwrap()));
    for i in 0..3u8 {
        m.answers.push(Record::a(
            Name::parse("edge-7.cdnint.net").unwrap(),
            60,
            Ipv4Addr::new(104, 16, 0, i),
        ));
    }
    m
}

fn bench_dns_wire() {
    let msg = sample_response();
    let wire = msg.encode();
    let mut h = Harness::new("dns_wire");
    h.bench("encode_response", || msg.encode());
    h.bench("decode_response", || Message::decode(std::hint::black_box(&wire)).unwrap());
    h.note("message_bytes", wire.len() as f64);
    h.print_table();
}

fn bench_netpkt() {
    let frame = Frame::tcp(
        MacAddr::LOCAL,
        MacAddr::UPSTREAM,
        Ipv4Addr::new(10, 77, 0, 1),
        Ipv4Addr::new(104, 16, 0, 9),
        TcpHeader::segment(50_000, 443, 1_000, 2_000, TcpFlags::PSH_ACK),
        b"payload bytes here",
    );
    let bytes = frame.encode();
    let mut h = Harness::new("netpkt");
    h.bench("build_tcp_frame", || {
        Frame::tcp(
            MacAddr::LOCAL,
            MacAddr::UPSTREAM,
            Ipv4Addr::new(10, 77, 0, 1),
            Ipv4Addr::new(104, 16, 0, 9),
            TcpHeader::segment(50_000, 443, 1_000, 2_000, TcpFlags::PSH_ACK),
            b"payload bytes here",
        )
        .encode()
    });
    h.bench("parse_tcp_frame", || Packet::parse(std::hint::black_box(&bytes), bytes.len()).unwrap());
    h.note("frame_bytes", bytes.len() as f64);
    h.print_table();
}

fn bench_pcap() {
    let frame_bytes = Frame::udp(
        MacAddr::LOCAL,
        MacAddr::UPSTREAM,
        Ipv4Addr::new(10, 77, 0, 1),
        Ipv4Addr::new(198, 51, 100, 53),
        51_000,
        53,
        &sample_response().encode(),
    )
    .encode();
    const FRAMES: usize = 1_000;
    let mut h = Harness::new("pcapio");
    h.bench("write_1k_records", || {
        let mut buf = Vec::with_capacity(FRAMES * (frame_bytes.len() + 16) + 24);
        let mut w = PcapWriter::new(&mut buf, 96, TsPrecision::Nano).unwrap();
        for i in 0..FRAMES {
            w.write_packet(i as u64 * 1_000, &frame_bytes, None).unwrap();
        }
        buf
    });
    let capture = {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, 65_535, TsPrecision::Nano).unwrap();
        for i in 0..FRAMES {
            w.write_packet(i as u64 * 1_000, &frame_bytes, None).unwrap();
        }
        buf
    };
    h.bench("read_1k_records", || {
        PcapReader::new(std::hint::black_box(&capture[..])).unwrap().records().count()
    });
    h.note("records_per_iter", FRAMES as f64);
    h.print_table();
}

fn main() {
    bench_dns_wire();
    bench_netpkt();
    bench_pcap();
}
