//! Monitor-path benchmarks: packet stream → conn.log + dns.log.

use dnsctx::zeek_lite::{logfmt, Monitor, MonitorConfig};
use xkit::bench::Harness;

fn capture_fixture() -> (Vec<u8>, u64) {
    // A deterministic small-town capture: 4 houses, ~45 simulated minutes.
    let sim = bench::sim(4, 0.03, 1.0, 7);
    let mut buf = Vec::new();
    let (_, frames) = sim.run_pcap(&mut buf, 600).unwrap();
    (buf, frames)
}

fn bench_monitor() {
    let (capture, frames) = capture_fixture();
    let mut h = Harness::new("monitor");
    h.samples = 10;
    h.bench("process_pcap", || {
        Monitor::process_pcap(std::hint::black_box(&capture[..]), MonitorConfig::default())
            .unwrap()
            .conns
            .len()
    });
    h.note("frames_per_iter", frames as f64);
    h.print_table();
}

fn bench_logfmt() {
    let out = bench::small_output(7);
    let mut conn_buf = Vec::new();
    logfmt::write_conn_log(&mut conn_buf, &out.logs.conns).unwrap();
    let mut h = Harness::new("logfmt");
    h.bench("write_conn_log", || {
        let mut buf = Vec::with_capacity(conn_buf.len());
        logfmt::write_conn_log(&mut buf, &out.logs.conns).unwrap();
        buf
    });
    h.bench("read_conn_log", || logfmt::read_conn_log(&conn_buf[..]).unwrap().len());
    h.note("conns_per_iter", out.logs.conns.len() as f64);
    h.print_table();
}

fn main() {
    bench_monitor();
    bench_logfmt();
}
