//! Monitor-path benchmarks: packet stream → conn.log + dns.log.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnsctx::zeek_lite::{logfmt, Monitor, MonitorConfig};

fn capture_fixture() -> (Vec<u8>, u64) {
    // A deterministic small-town capture: 4 houses, ~45 simulated minutes.
    let sim = bench::sim(4, 0.03, 1.0, 7);
    let mut buf = Vec::new();
    let (_, frames) = sim.run_pcap(&mut buf, 600).unwrap();
    (buf, frames)
}

fn bench_monitor(c: &mut Criterion) {
    let (capture, frames) = capture_fixture();
    let mut g = c.benchmark_group("monitor");
    g.sample_size(20);
    g.throughput(Throughput::Elements(frames));
    g.bench_function("process_pcap", |b| {
        b.iter(|| {
            let logs = Monitor::process_pcap(std::hint::black_box(&capture[..]), MonitorConfig::default())
                .unwrap();
            std::hint::black_box(logs.conns.len())
        })
    });
    g.finish();
}

fn bench_logfmt(c: &mut Criterion) {
    let out = bench::small_output(7);
    let mut conn_buf = Vec::new();
    logfmt::write_conn_log(&mut conn_buf, &out.logs.conns).unwrap();
    let mut g = c.benchmark_group("logfmt");
    g.throughput(Throughput::Elements(out.logs.conns.len() as u64));
    g.bench_function("write_conn_log", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(conn_buf.len());
            logfmt::write_conn_log(&mut buf, &out.logs.conns).unwrap();
            std::hint::black_box(buf)
        })
    });
    g.bench_function("read_conn_log", |b| {
        b.iter(|| std::hint::black_box(logfmt::read_conn_log(&conn_buf[..]).unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, bench_monitor, bench_logfmt);
criterion_main!(benches);
