//! Analysis-pipeline benchmarks: pairing, classification, statistics.

use dnsctx::dns_context::{Analysis, AnalysisConfig, Pairing, PairingPolicy};
use xkit::bench::Harness;

fn bench_pipeline() {
    let out = bench::sim(10, 0.2, 1.0, 7).run();
    let mut h = Harness::new("analysis");
    h.samples = 10;
    h.bench("pairing_most_recent", || {
        Pairing::build(&out.logs.conns, &out.logs.dns, PairingPolicy::MostRecent).pairs.len()
    });
    h.bench("full_analysis", || {
        Analysis::run(&out.logs, AnalysisConfig::default()).class_counts()
    });
    let a = Analysis::run(&out.logs, AnalysisConfig::default());
    h.bench("perf_and_significance", || a.significance());
    h.bench("platform_reports", || a.platform_reports().len());
    h.note("conns_per_iter", out.logs.conns.len() as f64);
    h.print_table();
}

fn bench_simulator() {
    let mut h = Harness::coarse("simulator");
    h.bench("simulate_2_houses_1h", || bench::sim(2, 1.0 / 24.0, 1.0, 3).run().logs.conns.len());
    h.print_table();
}

fn main() {
    bench_pipeline();
    bench_simulator();
}
