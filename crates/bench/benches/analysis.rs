//! Analysis-pipeline benchmarks: pairing, classification, statistics.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnsctx::dns_context::{Analysis, AnalysisConfig, Pairing, PairingPolicy};

fn bench_pipeline(c: &mut Criterion) {
    let out = bench::sim(10, 0.2, 1.0, 7).run();
    let conns = out.logs.conns.len() as u64;
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    g.throughput(Throughput::Elements(conns));
    g.bench_function("pairing_most_recent", |b| {
        b.iter(|| {
            std::hint::black_box(Pairing::build(
                &out.logs.conns,
                &out.logs.dns,
                PairingPolicy::MostRecent,
            ))
        })
    });
    g.bench_function("full_analysis", |b| {
        b.iter(|| {
            let a = Analysis::run(&out.logs, AnalysisConfig::default());
            std::hint::black_box(a.class_counts())
        })
    });
    let a = Analysis::run(&out.logs, AnalysisConfig::default());
    g.bench_function("perf_and_significance", |b| {
        b.iter(|| std::hint::black_box(a.significance()))
    });
    g.bench_function("platform_reports", |b| {
        b.iter(|| std::hint::black_box(a.platform_reports().len()))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("simulate_2_houses_1h", |b| {
        b.iter(|| {
            let out = bench::sim(2, 1.0 / 24.0, 1.0, 3).run();
            std::hint::black_box(out.logs.conns.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_simulator);
criterion_main!(benches);
