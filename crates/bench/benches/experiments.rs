//! One benchmark per paper artifact: each measures the cost of
//! regenerating that table or figure from prepared logs (the `repro`
//! binary prints the contents; these benches track the pipeline's speed
//! for every artifact so regressions in any stage are visible).

use dnsctx::cache_sim;
use dnsctx::dns_context::{Analysis, AnalysisConfig};
use dnsctx::zeek_lite::Duration;
use xkit::bench::Harness;

fn main() {
    let out = bench::sim(8, 0.15, 1.0, 42).run();
    let analysis = Analysis::run(&out.logs, AnalysisConfig::default());
    let mut h = Harness::new("experiments");
    h.samples = 10;

    h.bench("table1_resolver_usage", || analysis.platform_reports().len());
    h.bench("table2_classification", || analysis.class_counts());
    h.bench("table3_refresh_sim", || {
        cache_sim::refresh(&out.logs, &analysis, Duration::from_secs(10))
    });
    h.bench("fig1_gap_distribution", || analysis.gap_analysis().gaps_ms.len());
    h.bench("fig2_perf_distributions", || analysis.perf().delay_ms.len());
    h.bench("fig3_platform_distributions", || {
        let reports = analysis.platform_reports();
        reports.iter().map(|r| r.throughput_bps.len()).sum::<usize>()
    });
    h.bench("sec51_no_dns_breakdown", || analysis.no_dns_breakdown().total);
    h.bench("sec52_ttl_stats", || analysis.ttl_stats().unused_lookups);
    h.bench("sec8_whole_house_sim", || cache_sim::whole_house(&out.logs, &analysis).moved);
    h.bench("sec8_selective_refresh", || {
        cache_sim::refresh_selective(
            &out.logs,
            &analysis,
            Duration::from_secs(10),
            3,
            Duration::from_secs(3_600),
        )
        .lookups
    });
    h.print_table();
}
