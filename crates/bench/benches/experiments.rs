//! One Criterion benchmark per paper artifact: each measures the cost of
//! regenerating that table or figure from prepared logs (the `repro`
//! binary prints the contents; these benches track the pipeline's speed
//! for every artifact so regressions in any stage are visible).

use criterion::{criterion_group, criterion_main, Criterion};
use dnsctx::cache_sim;
use dnsctx::dns_context::{Analysis, AnalysisConfig};
use dnsctx::zeek_lite::Duration;

fn experiments(c: &mut Criterion) {
    let out = bench::sim(8, 0.15, 1.0, 42).run();
    let analysis = Analysis::run(&out.logs, AnalysisConfig::default());
    let mut g = c.benchmark_group("experiments");
    g.sample_size(20);

    g.bench_function("table1_resolver_usage", |b| {
        b.iter(|| std::hint::black_box(analysis.platform_reports().len()))
    });
    g.bench_function("table2_classification", |b| {
        b.iter(|| std::hint::black_box(analysis.class_counts()))
    });
    g.bench_function("table3_refresh_sim", |b| {
        b.iter(|| {
            std::hint::black_box(cache_sim::refresh(&out.logs, &analysis, Duration::from_secs(10)))
        })
    });
    g.bench_function("fig1_gap_distribution", |b| {
        b.iter(|| std::hint::black_box(analysis.gap_analysis().gaps_ms.len()))
    });
    g.bench_function("fig2_perf_distributions", |b| {
        b.iter(|| std::hint::black_box(analysis.perf().delay_ms.len()))
    });
    g.bench_function("fig3_platform_distributions", |b| {
        b.iter(|| {
            let reports = analysis.platform_reports();
            std::hint::black_box(reports.iter().map(|r| r.throughput_bps.len()).sum::<usize>())
        })
    });
    g.bench_function("sec51_no_dns_breakdown", |b| {
        b.iter(|| std::hint::black_box(analysis.no_dns_breakdown().total))
    });
    g.bench_function("sec52_ttl_stats", |b| {
        b.iter(|| std::hint::black_box(analysis.ttl_stats().unused_lookups))
    });
    g.bench_function("sec8_whole_house_sim", |b| {
        b.iter(|| std::hint::black_box(cache_sim::whole_house(&out.logs, &analysis).moved))
    });
    g.bench_function("sec8_selective_refresh", |b| {
        b.iter(|| {
            std::hint::black_box(
                cache_sim::refresh_selective(
                    &out.logs,
                    &analysis,
                    Duration::from_secs(10),
                    3,
                    Duration::from_secs(3_600),
                )
                .lookups,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, experiments);
criterion_main!(benches);
