//! One-stop façade for the *Putting DNS in Context* reproduction.
//!
//! The workspace is layered (wire formats → capture → monitor → simulator
//! → analysis → cache simulations); this crate re-exports each layer and
//! adds the [`pipeline`] helpers the examples, harness, and integration
//! tests share.
//!
//! ```
//! use dnsctx::pipeline;
//!
//! // A small synthetic CCZ week, directly to logs, then the paper's
//! // Table 2 classification.
//! let study = pipeline::quick_study(8, 0.05, 42);
//! let counts = study.analysis().class_counts();
//! assert!(counts.total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cache_sim;
pub use ccz_sim;
pub use dns_context;
pub use dns_wire;
pub use netpkt;
pub use pcapio;
pub use xkit;
pub use zeek_lite;

pub mod obskit {
    //! Thin facade over [`xkit::obs`]: the metrics/tracing vocabulary the
    //! pipeline crates share, plus helpers that assemble whole-pipeline
    //! snapshots. Naming conventions: `capture.*` (pcap I/O), `zeek.*`
    //! (monitor + degradation), `sim.*`/`resolver.*` (workload),
    //! `pair.*`/`class.*`/`threshold.*`/`perf.*`/`cover.*` (analysis),
    //! `fault.*` (injected damage), `stage.*` (span timers).

    pub use xkit::obs::clock;
    pub use xkit::obs::http;
    pub use xkit::obs::json;
    pub use xkit::obs::{
        Counter, FlightEvent, FlightRecorder, Gauge, HistSpec, Histogram, HistogramHandle,
        Metric, Metrics, ObsHub, Registry, SpanId, SpanLog, SpanRecord,
    };

    /// One snapshot for a whole [`Study`](crate::pipeline::Study): the
    /// workload-side `sim.*`/`resolver.*` counters, the monitor's
    /// `zeek.*` counters, and the analysis' `pair.*`/`class.*`/
    /// `threshold.*`/`perf.*`/`cover.*` families, merged through the one
    /// deterministic merge path.
    pub fn study_metrics(study: &crate::pipeline::Study) -> Metrics {
        let mut m = study.sim.metrics.clone();
        m.merge(&study.sim.logs.metrics());
        m.merge(&study.analysis().metrics());
        m
    }
}

pub mod pipeline {
    //! Prebuilt end-to-end pipelines.

    use ccz_sim::{ScaleKnobs, SimOutput, Simulation, WorkloadConfig};
    use dns_context::{Analysis, AnalysisConfig};
    use zeek_lite::Logs;

    /// A simulation output bundled with the analysis configuration, ready
    /// to serve every table and figure.
    pub struct Study {
        /// Raw simulation output (logs + ground truth + platform stats).
        pub sim: SimOutput,
        /// Analysis configuration used by [`Study::analysis`].
        pub analysis_cfg: AnalysisConfig,
    }

    impl Study {
        /// Run the paper's analysis pipeline over the study's logs.
        /// Recomputed on call; hold on to the result when serving several
        /// tables.
        pub fn analysis(&self) -> Analysis<'_> {
            Analysis::run(&self.sim.logs, self.analysis_cfg.clone())
        }

        /// The observable logs.
        pub fn logs(&self) -> &Logs {
            &self.sim.logs
        }
    }

    /// Simulate a CCZ-like week and return it with default analysis
    /// settings. `houses` and `activity` control volume; `seed` fixes
    /// the randomness.
    pub fn quick_study(houses: usize, activity: f64, seed: u64) -> Study {
        let cfg = WorkloadConfig {
            scale: ScaleKnobs { houses, days: 1.0, activity },
            ..WorkloadConfig::default()
        };
        study_with(cfg, seed)
    }

    /// Full control over the workload; analysis settings stay at the
    /// paper's defaults.
    pub fn study_with(cfg: WorkloadConfig, seed: u64) -> Study {
        let sim = Simulation::new(cfg, seed).expect("valid workload config").run();
        Study { sim, analysis_cfg: AnalysisConfig::default() }
    }

    /// The paper-scale configuration: 100 houses, 7 days, at the given
    /// activity fraction (1.0 ≈ the CCZ's 11 M connections — heavy; the
    /// harness defaults to 0.1).
    pub fn paper_scale(activity: f64) -> WorkloadConfig {
        WorkloadConfig {
            scale: ScaleKnobs { houses: 100, days: 7.0, activity },
            ..WorkloadConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::pipeline;

    #[test]
    fn quick_study_produces_analysable_logs() {
        let study = pipeline::quick_study(4, 0.2, 7);
        assert!(!study.logs().conns.is_empty());
        assert!(!study.logs().dns.is_empty());
        let analysis = study.analysis();
        let counts = analysis.class_counts();
        assert_eq!(counts.total(), analysis.pairing.app_conn_count());
    }

    #[test]
    fn paper_scale_shape() {
        let cfg = pipeline::paper_scale(0.1);
        assert_eq!(cfg.scale.houses, 100);
        assert_eq!(cfg.scale.days, 7.0);
        cfg.validate().unwrap();
    }
}
