//! The DNS transaction record — one query/response pair as a monitor logs it.

use crate::time::{Duration, Timestamp};
use dns_wire::{Rcode, RrType};
use std::net::Ipv4Addr;

/// Typed payload of one answer record, as retained by the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnswerData {
    /// An A record's address — what connection pairing keys on.
    Addr(Ipv4Addr),
    /// A CNAME alias target (kept as presentation text).
    Cname(String),
    /// Any other record type, kept as its type's log name.
    Other(String),
}

/// One record from a response's answer section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// Record payload.
    pub data: AnswerData,
    /// Record TTL in seconds.
    pub ttl: u32,
}

impl Answer {
    /// Convenience constructor for an address answer.
    pub fn addr(a: Ipv4Addr, ttl: u32) -> Answer {
        Answer { data: AnswerData::Addr(a), ttl }
    }

    /// The address if this is an A answer.
    pub fn as_addr(&self) -> Option<Ipv4Addr> {
        match self.data {
            AnswerData::Addr(a) => Some(a),
            _ => None,
        }
    }
}

/// A DNS transaction: one query matched with its response (if any).
///
/// Mirrors the fields of Bro's dns.log that the paper's analysis needs:
/// timestamps, the client and resolver addresses, the query, and the full
/// answer set with TTLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsTransaction {
    /// When the query left the client.
    pub ts: Timestamp,
    /// Client (stub resolver) address — the house-side endpoint.
    pub client: Ipv4Addr,
    /// Recursive resolver address the query was sent to.
    pub resolver: Ipv4Addr,
    /// DNS transaction id.
    pub trans_id: u16,
    /// Query name in presentation form (lower-cased).
    pub query: String,
    /// Query type.
    pub qtype: RrType,
    /// Response code; `None` when no response was observed.
    pub rcode: Option<Rcode>,
    /// Lookup duration (response time − query time); `None` when no
    /// response was observed.
    pub rtt: Option<Duration>,
    /// Answer records from the response, in order.
    pub answers: Vec<Answer>,
}

impl DnsTransaction {
    /// When the response arrived — the instant the mapping became usable.
    /// `None` for unanswered queries.
    pub fn completed_at(&self) -> Option<Timestamp> {
        self.rtt.map(|d| self.ts + d)
    }

    /// All IPv4 addresses in the answer set.
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.answers.iter().filter_map(|a| a.as_addr())
    }

    /// The minimum TTL across address answers — the effective lifetime of
    /// the mapping (CNAME chain TTLs cap it too, so take the overall min).
    pub fn min_ttl(&self) -> Option<u32> {
        self.answers.iter().map(|a| a.ttl).min()
    }

    /// The instant the mapping expires: completion + min TTL. `None` when
    /// unanswered or answerless.
    pub fn expires_at(&self) -> Option<Timestamp> {
        match (self.completed_at(), self.min_ttl()) {
            (Some(done), Some(ttl)) => Some(done + Duration::from_secs(ttl as u64)),
            _ => None,
        }
    }

    /// Whether the response carried at least one usable address.
    pub fn has_addrs(&self) -> bool {
        self.answers.iter().any(|a| a.as_addr().is_some())
    }

    /// The canonical dns.log ordering: query time, then the transaction's
    /// identifying fields as tiebreakers. This is a total order over any
    /// transactions the monitor can actually emit (two distinct rows with
    /// every compared field equal would have collided in the pending-query
    /// table), so a log sorted with it comes out byte-identical no matter
    /// how the rows were accumulated — the property the streaming engine's
    /// per-epoch releases rely on.
    pub fn log_order(a: &DnsTransaction, b: &DnsTransaction) -> std::cmp::Ordering {
        (a.ts, a.client, a.resolver, a.trans_id, &a.query, a.qtype.to_u16(), a.rtt).cmp(&(
            b.ts,
            b.client,
            b.resolver,
            b.trans_id,
            &b.query,
            b.qtype.to_u16(),
            b.rtt,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn() -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp::from_secs(100),
            client: Ipv4Addr::new(10, 1, 1, 2),
            resolver: Ipv4Addr::new(192, 0, 2, 53),
            trans_id: 7,
            query: "www.example.com".into(),
            qtype: RrType::A,
            rcode: Some(Rcode::NoError),
            rtt: Some(Duration::from_millis(8)),
            answers: vec![
                Answer { data: AnswerData::Cname("edge.example.net".into()), ttl: 300 },
                Answer::addr(Ipv4Addr::new(203, 0, 113, 7), 60),
                Answer::addr(Ipv4Addr::new(203, 0, 113, 8), 60),
            ],
        }
    }

    #[test]
    fn completion_and_expiry() {
        let t = txn();
        assert_eq!(t.completed_at().unwrap(), Timestamp(100_008_000_000));
        assert_eq!(t.min_ttl(), Some(60));
        assert_eq!(t.expires_at().unwrap(), Timestamp(160_008_000_000));
    }

    #[test]
    fn addr_extraction() {
        let t = txn();
        let addrs: Vec<_> = t.addrs().collect();
        assert_eq!(addrs.len(), 2);
        assert!(t.has_addrs());
    }

    #[test]
    fn unanswered_has_no_completion() {
        let mut t = txn();
        t.rtt = None;
        t.rcode = None;
        t.answers.clear();
        assert_eq!(t.completed_at(), None);
        assert_eq!(t.expires_at(), None);
        assert!(!t.has_addrs());
    }
}
