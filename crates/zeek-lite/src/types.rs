//! Flow identity types shared by the monitor and the analysis layers.

use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// TCP.
    Tcp,
    /// UDP (covers QUIC implicitly, as in the paper).
    Udp,
}

impl Proto {
    /// Lower-case name used in logs.
    pub fn log_name(self) -> &'static str {
        match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
        }
    }

    /// Parse the log name back.
    pub fn from_log_name(s: &str) -> Option<Proto> {
        match s {
            "tcp" => Some(Proto::Tcp),
            "udp" => Some(Proto::Udp),
            _ => None,
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.log_name())
    }
}

/// Oriented five-tuple: originator (first sender) vs responder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Originator address (the endpoint that sent the first packet).
    pub orig_addr: Ipv4Addr,
    /// Originator port.
    pub orig_port: u16,
    /// Responder address.
    pub resp_addr: Ipv4Addr,
    /// Responder port.
    pub resp_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FiveTuple {
    /// The tuple as seen from the responder's side (swapped orientation).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            orig_addr: self.resp_addr,
            orig_port: self.resp_port,
            resp_addr: self.orig_addr,
            resp_port: self.orig_port,
            proto: self.proto,
        }
    }

    /// An orientation-free key: the endpoint pair sorted so both directions
    /// of a flow map to the same key.
    pub fn canonical_key(&self) -> ((Ipv4Addr, u16), (Ipv4Addr, u16), Proto) {
        let a = (self.orig_addr, self.orig_port);
        let b = (self.resp_addr, self.resp_port);
        if a <= b {
            (a, b, self.proto)
        } else {
            (b, a, self.proto)
        }
    }

    /// True when both ports are ephemeral "high ports" (≥1024) — the
    /// hallmark of peer-to-peer traffic used by the paper's §5.1 analysis.
    pub fn both_high_ports(&self) -> bool {
        self.orig_port >= 1024 && self.resp_port >= 1024
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}/{}",
            self.orig_addr, self.orig_port, self.resp_addr, self.resp_port, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup() -> FiveTuple {
        FiveTuple {
            orig_addr: Ipv4Addr::new(10, 1, 1, 2),
            orig_port: 49152,
            resp_addr: Ipv4Addr::new(93, 184, 216, 34),
            resp_port: 443,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tup();
        let r = t.reversed();
        assert_eq!(r.orig_addr, t.resp_addr);
        assert_eq!(r.resp_port, t.orig_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_key_is_orientation_free() {
        let t = tup();
        assert_eq!(t.canonical_key(), t.reversed().canonical_key());
    }

    #[test]
    fn high_ports() {
        assert!(!tup().both_high_ports());
        let mut t = tup();
        t.resp_port = 51413;
        assert!(t.both_high_ports());
    }

    #[test]
    fn proto_names_round_trip() {
        for p in [Proto::Tcp, Proto::Udp] {
            assert_eq!(Proto::from_log_name(p.log_name()), Some(p));
        }
        assert_eq!(Proto::from_log_name("icmp"), None);
    }

    #[test]
    fn display() {
        assert_eq!(tup().to_string(), "10.1.1.2:49152 -> 93.184.216.34:443/tcp");
    }
}
