//! The passive monitor: packets in, conn.log + dns.log out.

use crate::degradation::DegradationStats;
use crate::dns::{Answer, AnswerData, DnsTransaction};
use crate::time::{Duration, Timestamp};
use crate::tracker::{ConnRecord, FlowTracker, PktMeta};
use crate::types::Proto;
use dns_wire::{Message, RData, RrType};
use netpkt::{Packet, PktError, Transport};
use std::collections::HashMap;
use std::io::Read;
use std::net::Ipv4Addr;
use xkit::obs::{HistSpec, Metrics};

/// Field ↔ metric-name table for the monitor's summing counters
/// (`peak_active_flows` is a max-merged gauge and is handled separately).
macro_rules! monitor_counters {
    ($mac:ident) => {
        $mac! {
            packets => "zeek.packets",
            wire_bytes => "zeek.wire_bytes",
            non_ipv4 => "zeek.non_ipv4",
            non_udp_tcp => "zeek.non_udp_tcp",
            parse_errors => "zeek.parse_errors",
            dot_port_packets => "zeek.dot_port_packets",
            dns_messages => "zeek.dns_messages",
            dns_decode_errors => "zeek.dns_decode_errors",
        }
    };
}

/// Monitor tuning knobs. Defaults follow Bro's, which the paper relies on.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// UDP flow inactivity timeout (Bro default 60 s; the paper states it).
    pub udp_timeout: Duration,
    /// TCP inactivity timeout for flows that never terminate.
    pub tcp_timeout: Duration,
    /// How long an unanswered DNS query is held before being flushed.
    pub dns_query_timeout: Duration,
    /// Whether unanswered queries appear in the DNS log (with empty rtt).
    pub emit_unanswered_dns: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            udp_timeout: Duration::from_secs(60),
            tcp_timeout: Duration::from_secs(300),
            dns_query_timeout: Duration::from_secs(30),
            emit_unanswered_dns: true,
        }
    }
}

/// Counters the monitor keeps about the capture as a whole.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Frames handled.
    pub packets: u64,
    /// Wire bytes represented by those frames (pcap `orig_len` sum).
    pub wire_bytes: u64,
    /// Frames that were not IPv4.
    pub non_ipv4: u64,
    /// IPv4 packets that were neither TCP nor UDP.
    pub non_udp_tcp: u64,
    /// Frames that failed to parse.
    pub parse_errors: u64,
    /// Packets to/from the DNS-over-TLS port (853) — the paper's §5.1
    /// encrypted-DNS presence check.
    pub dot_port_packets: u64,
    /// Successfully decoded DNS messages.
    pub dns_messages: u64,
    /// Port-53 payloads that failed DNS decoding.
    pub dns_decode_errors: u64,
    /// Highest number of simultaneously tracked flows (tracker occupancy
    /// high-water mark; merges by maximum, not sum).
    pub peak_active_flows: u64,
}

impl MonitorStats {
    /// Express the counters as an obs snapshot; `from_metrics` inverts it
    /// exactly. `peak_active_flows` travels as the max-merged gauge
    /// `zeek.peak_active_flows`.
    pub fn to_metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        macro_rules! emit {
            ($($field:ident => $name:literal,)*) => {
                $( m.add($name, self.$field); )*
            };
        }
        monitor_counters!(emit);
        m.gauge_max("zeek.peak_active_flows", self.peak_active_flows as f64);
        m
    }

    /// Rebuild the struct view from an obs snapshot (absent metrics read
    /// as zero, extra metrics are ignored).
    pub fn from_metrics(m: &Metrics) -> MonitorStats {
        let mut s = MonitorStats::default();
        macro_rules! load {
            ($($field:ident => $name:literal,)*) => {
                $( s.$field = m.counter($name); )*
            };
        }
        monitor_counters!(load);
        s.peak_active_flows = m.gauge("zeek.peak_active_flows").unwrap_or(0.0) as u64;
        s
    }

    /// Fold another capture's counters into this one, through the obs
    /// snapshot so there is one merge path (counters sum, the occupancy
    /// peak takes the maximum).
    pub fn merge(&mut self, other: &MonitorStats) {
        let mut m = self.to_metrics();
        m.merge(&other.to_metrics());
        *self = MonitorStats::from_metrics(&m);
    }
}

/// Everything a capture produced.
#[derive(Debug, Clone, Default)]
pub struct Logs {
    /// Connection summaries, sorted by start time.
    pub conns: Vec<ConnRecord>,
    /// DNS transactions, sorted by query time.
    pub dns: Vec<DnsTransaction>,
    /// Whole-capture counters.
    pub stats: MonitorStats,
    /// Classified rejection counters — how partial these logs are.
    pub degradation: DegradationStats,
}

impl Logs {
    /// Application connections only: everything that is not DNS traffic
    /// itself. The paper treats the DNS log and the connection log as
    /// separate datasets; DNS flows must not appear in both.
    pub fn app_conns(&self) -> impl Iterator<Item = &ConnRecord> {
        self.conns.iter().filter(|c| !c.is_dns())
    }

    /// Merge another capture's logs (e.g. from sharded generation),
    /// re-sorting both datasets by time.
    pub fn merge(&mut self, other: Logs) {
        self.conns.extend(other.conns);
        self.dns.extend(other.dns);
        self.stats.merge(&other.stats);
        self.degradation.merge(&other.degradation);
        self.sort();
    }

    /// Everything these logs can report as one obs snapshot: the monitor
    /// counters, the degradation buckets, row counts
    /// (`zeek.conn_rows`/`zeek.dns_rows`/`zeek.app_conns`), and a
    /// `zeek.dns_rtt_ms` histogram over answered lookups. Histograms are
    /// multisets, so the snapshot is identical however the rows were
    /// sharded or ordered.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.stats.to_metrics();
        m.merge(&self.degradation.to_metrics());
        m.add("zeek.conn_rows", self.conns.len() as u64);
        m.add("zeek.dns_rows", self.dns.len() as u64);
        m.add("zeek.app_conns", self.app_conns().count() as u64);
        for d in &self.dns {
            if let Some(rtt) = d.rtt {
                m.observe_with("zeek.dns_rtt_ms", HistSpec::time_ms(), rtt.as_millis_f64());
            }
        }
        m
    }

    /// Sort both logs into their canonical order: connections by
    /// `(ts, uid)`, DNS transactions by [`DnsTransaction::log_order`].
    /// Both keys are total orders, so the result is independent of the
    /// order rows were accumulated in — a requirement for the streaming
    /// engine, whose per-epoch releases must byte-match the batch logs.
    pub fn sort(&mut self) {
        self.conns.sort_by_key(|c| (c.ts, c.uid));
        self.dns.sort_by(DnsTransaction::log_order);
    }

    /// Restrict both logs to records starting in `[from, to)`. Counters in
    /// `stats` describe the original capture and are carried unchanged.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> Logs {
        Logs {
            conns: self
                .conns
                .iter()
                .filter(|c| c.ts >= from && c.ts < to)
                .cloned()
                .collect(),
            dns: self
                .dns
                .iter()
                .filter(|d| d.ts >= from && d.ts < to)
                .cloned()
                .collect(),
            stats: self.stats.clone(),
            degradation: self.degradation.clone(),
        }
    }

    /// Columnar projection of the connection log (index-aligned with
    /// `conns`; see [`crate::columns`]). Derived data — rebuild after
    /// mutating the rows.
    pub fn conn_columns(&self) -> crate::columns::ConnColumns {
        crate::columns::ConnColumns::from_rows(&self.conns)
    }

    /// Columnar projection of the DNS log scalars (index-aligned with
    /// `dns`; see [`crate::columns`]). Derived data — rebuild after
    /// mutating the rows.
    pub fn dns_columns(&self) -> crate::columns::DnsColumns {
        crate::columns::DnsColumns::from_rows(&self.dns)
    }

    /// Distinct originator (house) addresses, sorted — the monitored
    /// population. Includes DNS clients so houses with only DNS traffic
    /// in the window still appear.
    pub fn houses(&self) -> Vec<Ipv4Addr> {
        let mut set: Vec<Ipv4Addr> = self
            .conns
            .iter()
            .map(|c| c.id.orig_addr)
            .chain(self.dns.iter().map(|d| d.client))
            .collect();
        set.sort();
        set.dedup();
        set
    }

    /// Per-service totals over application connections:
    /// `(service, connections, payload bytes)`, sorted by connection count
    /// descending; connections with no recognised service appear as
    /// `"other"`.
    pub fn service_breakdown(&self) -> Vec<(String, usize, u64)> {
        let mut acc: std::collections::HashMap<&str, (usize, u64)> = std::collections::HashMap::new();
        for c in self.app_conns() {
            let e = acc.entry(c.service.unwrap_or("other")).or_default();
            e.0 += 1;
            e.1 += c.total_bytes();
        }
        let mut out: Vec<(String, usize, u64)> = acc
            // lint: allow(no-map-iteration): sorted just below under a total order
            .into_iter()
            .map(|(s, (n, b))| (s.to_string(), n, b))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// First and last record timestamps, or `None` for empty logs.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let starts = [self.conns.first().map(|c| c.ts), self.dns.first().map(|d| d.ts)];
        let ends = [self.conns.last().map(|c| c.ts), self.dns.last().map(|d| d.ts)];
        let start = starts.iter().flatten().min().copied()?;
        let end = ends.iter().flatten().max().copied()?;
        Some((start, end))
    }
}

#[derive(Hash, PartialEq, Eq, Clone)]
struct DnsKey {
    client: Ipv4Addr,
    resolver: Ipv4Addr,
    trans_id: u16,
    query: String,
    qtype: u16,
}

struct PendingQuery {
    ts: Timestamp,
    qtype: RrType,
}

/// The monitor itself. Feed frames with
/// [`handle_frame`](Monitor::handle_frame), then call
/// [`finish`](Monitor::finish).
pub struct Monitor {
    config: MonitorConfig,
    tracker: FlowTracker,
    pending_dns: HashMap<DnsKey, PendingQuery>,
    dns_log: Vec<DnsTransaction>,
    stats: MonitorStats,
    degradation: DegradationStats,
    last_dns_sweep: Timestamp,
    flight: Option<xkit::obs::FlightRecorder>,
}

impl Monitor {
    /// Create a monitor with the given configuration.
    pub fn new(config: MonitorConfig) -> Monitor {
        Monitor {
            tracker: FlowTracker::new(config.udp_timeout, config.tcp_timeout),
            config,
            pending_dns: HashMap::new(),
            dns_log: Vec::new(),
            stats: MonitorStats::default(),
            degradation: DegradationStats::default(),
            last_dns_sweep: Timestamp::ZERO,
            flight: None,
        }
    }

    /// Attach a flight recorder: every rejected frame records a
    /// `fault.reject` event and every undecodable port-53 payload a
    /// `parse.degrade` event. Only rejection paths touch the recorder —
    /// the per-packet accept path stays recorder-free.
    pub fn set_flight(&mut self, flight: xkit::obs::FlightRecorder) {
        self.flight = Some(flight);
    }

    /// Mid-run snapshot: the monitor counters plus the degradation
    /// buckets, without finishing the capture. Every family is a
    /// monotone counter (plus the max-merged occupancy gauge), so any
    /// snapshot is a valid prefix of the final [`Logs::metrics`] — in
    /// particular `zeek.frames_seen = zeek.frames_accepted +
    /// Σ zeek.reject.*` holds at every instant.
    pub fn live_metrics(&self) -> Metrics {
        let mut m = self.stats.to_metrics();
        m.merge(&self.degradation.to_metrics());
        m
    }

    /// Process one captured frame. `captured` holds the stored bytes
    /// (possibly snaplen-truncated); `orig_len` is the on-wire length.
    pub fn handle_frame(&mut self, ts: Timestamp, captured: &[u8], orig_len: u32) {
        self.stats.packets += 1;
        self.stats.wire_bytes += orig_len as u64;
        self.degradation.frames_seen += 1;
        let pkt = match Packet::parse(captured, orig_len as usize) {
            Ok(p) => p,
            Err(e) => {
                // Coarse legacy counters plus the classified bucket.
                if matches!(e, PktError::UnsupportedEtherType(_)) {
                    self.stats.non_ipv4 += 1;
                } else {
                    self.stats.parse_errors += 1;
                }
                self.degradation.record_pkt_error(&e);
                if let Some(flight) = &self.flight {
                    flight.record(
                        "fault.reject",
                        format!("{e:?}"),
                        self.degradation.frames_seen as f64,
                    );
                }
                return;
            }
        };
        self.degradation.frames_accepted += 1;
        let (proto, src_port, dst_port, tcp_flags, seq) = match &pkt.transport {
            Transport::Udp(u) => (Proto::Udp, u.src_port, u.dst_port, None, None),
            Transport::Tcp(t) => (Proto::Tcp, t.src_port, t.dst_port, Some(t.flags), Some(t.seq)),
            Transport::Other(_) => {
                self.stats.non_udp_tcp += 1;
                return;
            }
        };
        if src_port == dns_wire::DOT_PORT || dst_port == dns_wire::DOT_PORT {
            self.stats.dot_port_packets += 1;
        }
        self.tracker.handle(PktMeta {
            ts,
            src: pkt.ip.src,
            dst: pkt.ip.dst,
            src_port,
            dst_port,
            proto,
            tcp_flags,
            seq,
            payload_len: pkt.declared_payload as u64,
        });
        self.stats.peak_active_flows =
            self.stats.peak_active_flows.max(self.tracker.active_flows() as u64);
        // DNS transaction extraction from UDP port-53 payloads.
        if proto == Proto::Udp && (src_port == dns_wire::DNS_PORT || dst_port == dns_wire::DNS_PORT) {
            self.handle_dns_payload(ts, pkt.ip.src, pkt.ip.dst, pkt.payload);
        }
        self.maybe_sweep_dns(ts);
    }

    fn handle_dns_payload(&mut self, ts: Timestamp, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        self.degradation.dns_payloads += 1;
        let msg = match Message::decode(payload) {
            Ok(m) => m,
            Err(e) => {
                self.stats.dns_decode_errors += 1;
                self.degradation.record_dns_error(&e);
                if let Some(flight) = &self.flight {
                    flight.record(
                        "parse.degrade",
                        format!("{e:?}"),
                        self.degradation.dns_payloads as f64,
                    );
                }
                return;
            }
        };
        self.stats.dns_messages += 1;
        self.degradation.dns_accepted += 1;
        let Some(q) = msg.questions.first() else { return };
        if !msg.flags.qr {
            // Query: client -> resolver. First query wins (retransmits
            // keep the original timestamp, matching Bro).
            let key = DnsKey {
                client: src,
                resolver: dst,
                trans_id: msg.id,
                query: q.name.to_string(),
                qtype: q.rtype.to_u16(),
            };
            self.pending_dns
                .entry(key)
                .or_insert(PendingQuery { ts, qtype: q.rtype });
        } else {
            // Response: resolver -> client.
            let key = DnsKey {
                client: dst,
                resolver: src,
                trans_id: msg.id,
                query: q.name.to_string(),
                qtype: q.rtype.to_u16(),
            };
            let Some(pending) = self.pending_dns.remove(&key) else {
                // Response without an observed query (e.g. capture started
                // mid-flight); skip rather than fabricate a timestamp.
                return;
            };
            let answers = msg
                .answers
                .iter()
                .map(|r| Answer {
                    ttl: r.ttl,
                    data: match &r.rdata {
                        RData::A(a) => AnswerData::Addr(*a),
                        RData::Cname(n) => AnswerData::Cname(n.to_string()),
                        other => AnswerData::Other(other.rtype().log_name()),
                    },
                })
                .collect();
            self.dns_log.push(DnsTransaction {
                ts: pending.ts,
                client: dst,
                resolver: src,
                trans_id: msg.id,
                query: key.query,
                qtype: pending.qtype,
                rcode: Some(msg.flags.rcode),
                rtt: Some(ts.since(pending.ts)),
                answers,
            });
        }
    }

    fn maybe_sweep_dns(&mut self, now: Timestamp) {
        if now.since(self.last_dns_sweep) < Duration::from_secs(10) {
            return;
        }
        self.last_dns_sweep = now;
        let timeout = self.config.dns_query_timeout;
        let expired: Vec<DnsKey> = self
            .pending_dns
            // lint: allow(no-map-iteration): expired rows are re-sorted by the total log order
            .iter()
            .filter(|(_, p)| now.since(p.ts) >= timeout)
            .map(|(k, _)| k.clone())
            .collect();
        for key in expired {
            let pending = self.pending_dns.remove(&key).unwrap();
            if self.config.emit_unanswered_dns {
                self.dns_log.push(unanswered(&key, &pending));
            }
        }
    }

    /// Drain connection records that have already completed, for streaming
    /// consumers that do not want to hold the whole capture's logs at once.
    /// DNS transactions are small and are only returned by
    /// [`finish`](Monitor::finish).
    pub fn drain_conns(&mut self) -> Vec<ConnRecord> {
        self.tracker.drain_completed()
    }

    /// Drain DNS transactions recorded so far (matched responses and
    /// timed-out queries), for streaming consumers. Rows drain in arrival
    /// order; callers impose the canonical log order themselves.
    pub fn drain_dns(&mut self) -> Vec<DnsTransaction> {
        std::mem::take(&mut self.dns_log)
    }

    /// Number of flows currently being tracked.
    pub fn active_flows(&self) -> usize {
        self.tracker.active_flows()
    }

    /// Number of DNS queries awaiting a response.
    pub fn pending_dns(&self) -> usize {
        self.pending_dns.len()
    }

    /// Start time of the oldest tracked flow. Every connection record the
    /// monitor emits in the future starts at or after this instant, which
    /// makes it the streaming engine's conn-release watermark.
    pub fn oldest_active_flow_start(&self) -> Option<Timestamp> {
        self.tracker.oldest_active_flow_start()
    }

    /// Query time of the oldest pending DNS query. Every DNS row emitted
    /// in the future carries a query timestamp at or after this instant
    /// (responses and timeouts inherit the query's stamp), making it the
    /// streaming engine's dns-release watermark.
    pub fn oldest_pending_dns_ts(&self) -> Option<Timestamp> {
        // lint: allow(no-map-iteration): order-insensitive min
        self.pending_dns.values().map(|p| p.ts).min()
    }

    /// Counters accumulated so far (the capture need not be finished).
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// Degradation buckets accumulated so far.
    pub fn degradation(&self) -> &DegradationStats {
        &self.degradation
    }

    /// Flush all state and return the logs, sorted by time.
    pub fn finish(mut self) -> Logs {
        if self.config.emit_unanswered_dns {
            // lint: allow(no-map-iteration): drained rows are re-sorted by the total log order
            for (key, pending) in self.pending_dns.drain() {
                self.dns_log.push(unanswered(&key, &pending));
            }
        }
        let mut logs = Logs {
            conns: self.tracker.finish(),
            dns: self.dns_log,
            stats: self.stats,
            degradation: self.degradation,
        };
        logs.sort();
        logs
    }

    /// Convenience: drain any [`pcapio::RecordSource`] — file reader,
    /// in-memory ring, or live interface — through a fresh monitor.
    /// Frames are parsed straight out of the source's reusable buffer —
    /// no per-record allocation.
    pub fn process_source<S: pcapio::RecordSource + ?Sized>(
        source: &mut S,
        config: MonitorConfig,
    ) -> Result<Logs, pcapio::PcapError> {
        let mut monitor = Monitor::new(config);
        while let Some(record) = source.next()? {
            monitor.handle_frame(Timestamp(record.ts_nanos), record.data, record.orig_len);
        }
        Ok(monitor.finish())
    }

    /// [`Monitor::process_source`] with a live observability plane:
    /// feeds the hub's flight recorder and publishes a
    /// [`live_metrics`](Monitor::live_metrics) + source-counter snapshot
    /// into `hub` every `publish_every` frames (clamped to ≥ 1) and once
    /// after the source drains. Scrape-at-any-time: every published
    /// counter is monotone, so a mid-run scrape is a valid prefix of
    /// the final snapshot.
    pub fn process_source_observed<S: pcapio::RecordSource + ?Sized>(
        source: &mut S,
        config: MonitorConfig,
        hub: &xkit::obs::ObsHub,
        publish_every: u64,
    ) -> Result<Logs, pcapio::PcapError> {
        let every = publish_every.max(1);
        let mut monitor = Monitor::new(config);
        monitor.set_flight(hub.flight().clone());
        let mut frames = 0u64;
        while let Some(record) = source.next()? {
            monitor.handle_frame(Timestamp(record.ts_nanos), record.data, record.orig_len);
            frames += 1;
            if frames % every == 0 {
                let mut m = monitor.live_metrics();
                m.merge(&source.metrics());
                hub.publish_metrics(m);
            }
        }
        let mut m = monitor.live_metrics();
        m.merge(&source.metrics());
        hub.publish_metrics(m);
        Ok(monitor.finish())
    }

    /// Convenience: run a whole pcap stream through a fresh monitor —
    /// the file-backend spelling of [`Monitor::process_source`].
    pub fn process_pcap<R: Read>(reader: R, config: MonitorConfig) -> Result<Logs, pcapio::PcapError> {
        let mut source = pcapio::source::file(reader)?;
        Self::process_source(&mut source, config)
    }
}

fn unanswered(key: &DnsKey, pending: &PendingQuery) -> DnsTransaction {
    DnsTransaction {
        ts: pending.ts,
        client: key.client,
        resolver: key.resolver,
        trans_id: key.trans_id,
        query: key.query.clone(),
        qtype: pending.qtype,
        rcode: None,
        rtt: None,
        answers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_wire::{Name, Record};
    use netpkt::{Frame, MacAddr, TcpFlags, TcpHeader};

    const HOUSE: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 2);
    const RESOLVER: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 53);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 7);

    fn feed(m: &mut Monitor, ts_ms: u64, f: &Frame) {
        let bytes = f.encode();
        m.handle_frame(Timestamp::from_millis(ts_ms), &bytes, f.wire_len() as u32);
    }

    fn dns_query(id: u16, name: &str) -> Frame {
        let q = Message::query(id, Name::parse(name).unwrap(), RrType::A);
        Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, HOUSE, RESOLVER, 54321, 53, &q.encode())
    }

    fn dns_response(id: u16, name: &str, addr: Ipv4Addr, ttl: u32) -> Frame {
        let q = Message::query(id, Name::parse(name).unwrap(), RrType::A);
        let mut resp = q.answer_template();
        resp.answers.push(Record::a(Name::parse(name).unwrap(), ttl, addr));
        Frame::udp(MacAddr::UPSTREAM, MacAddr::LOCAL, RESOLVER, HOUSE, 53, 54321, &resp.encode())
    }

    #[test]
    fn dns_transaction_matched() {
        let mut m = Monitor::new(MonitorConfig::default());
        feed(&mut m, 1000, &dns_query(7, "www.example.com"));
        feed(&mut m, 1008, &dns_response(7, "www.example.com", SERVER, 300));
        let logs = m.finish();
        assert_eq!(logs.dns.len(), 1);
        let t = &logs.dns[0];
        assert_eq!(t.query, "www.example.com");
        assert_eq!(t.rtt, Some(Duration::from_millis(8)));
        assert_eq!(t.addrs().collect::<Vec<_>>(), vec![SERVER]);
        assert_eq!(t.min_ttl(), Some(300));
        assert_eq!(logs.stats.dns_messages, 2);
        // The DNS flow also appears as a (dns-service) connection.
        assert_eq!(logs.conns.len(), 1);
        assert!(logs.conns[0].is_dns());
        assert_eq!(logs.app_conns().count(), 0);
    }

    #[test]
    fn unanswered_query_flushed_at_finish() {
        let mut m = Monitor::new(MonitorConfig::default());
        feed(&mut m, 1000, &dns_query(9, "dead.example.com"));
        let logs = m.finish();
        assert_eq!(logs.dns.len(), 1);
        assert_eq!(logs.dns[0].rtt, None);
        assert_eq!(logs.dns[0].rcode, None);
    }

    #[test]
    fn unanswered_query_can_be_suppressed() {
        let mut m = Monitor::new(MonitorConfig {
            emit_unanswered_dns: false,
            ..MonitorConfig::default()
        });
        feed(&mut m, 1000, &dns_query(9, "dead.example.com"));
        assert!(m.finish().dns.is_empty());
    }

    #[test]
    fn retransmitted_query_keeps_first_timestamp() {
        let mut m = Monitor::new(MonitorConfig::default());
        feed(&mut m, 1000, &dns_query(7, "www.example.com"));
        feed(&mut m, 2000, &dns_query(7, "www.example.com"));
        feed(&mut m, 2050, &dns_response(7, "www.example.com", SERVER, 300));
        let logs = m.finish();
        assert_eq!(logs.dns.len(), 1);
        assert_eq!(logs.dns[0].ts, Timestamp::from_millis(1000));
        assert_eq!(logs.dns[0].rtt, Some(Duration::from_millis(1050)));
    }

    #[test]
    fn tcp_connection_produces_app_conn() {
        let mut m = Monitor::new(MonitorConfig::default());
        let syn = Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, HOUSE, SERVER, TcpHeader::syn(49152, 443, 100), &[]);
        let synack = Frame::tcp(
            MacAddr::UPSTREAM,
            MacAddr::LOCAL,
            SERVER,
            HOUSE,
            TcpHeader { flags: TcpFlags::SYN_ACK, ..TcpHeader::syn(443, 49152, 900) },
            &[],
        );
        let fin_o = Frame::tcp(
            MacAddr::LOCAL,
            MacAddr::UPSTREAM,
            HOUSE,
            SERVER,
            TcpHeader::segment(49152, 443, 101 + 500, 901, TcpFlags::FIN_ACK),
            &[],
        );
        let fin_r = Frame::tcp(
            MacAddr::UPSTREAM,
            MacAddr::LOCAL,
            SERVER,
            HOUSE,
            TcpHeader::segment(443, 49152, 901 + 9000, 0, TcpFlags::FIN_ACK),
            &[],
        );
        feed(&mut m, 0, &syn);
        feed(&mut m, 20, &synack);
        feed(&mut m, 500, &fin_o);
        feed(&mut m, 520, &fin_r);
        let logs = m.finish();
        assert_eq!(logs.app_conns().count(), 1);
        let c = logs.app_conns().next().unwrap();
        assert_eq!(c.state, crate::ConnState::SF);
        // Bytes recovered purely from sequence numbers.
        assert_eq!(c.orig_bytes, 500);
        assert_eq!(c.resp_bytes, 9000);
        assert_eq!(c.service, Some("ssl"));
    }

    #[test]
    fn garbage_on_port_53_counted_as_decode_error() {
        let mut m = Monitor::new(MonitorConfig::default());
        let junk = Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, HOUSE, RESOLVER, 50000, 53, b"not dns");
        feed(&mut m, 0, &junk);
        let logs = m.finish();
        assert_eq!(logs.stats.dns_decode_errors, 1);
        assert!(logs.dns.is_empty());
    }

    #[test]
    fn dot_port_traffic_counted() {
        let mut m = Monitor::new(MonitorConfig::default());
        let f = Frame::tcp(MacAddr::LOCAL, MacAddr::UPSTREAM, HOUSE, RESOLVER, TcpHeader::syn(50000, 853, 1), &[]);
        feed(&mut m, 0, &f);
        let logs = m.finish();
        assert_eq!(logs.stats.dot_port_packets, 1);
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut m1 = Monitor::new(MonitorConfig::default());
        feed(&mut m1, 5000, &dns_query(1, "b.example.com"));
        feed(&mut m1, 5010, &dns_response(1, "b.example.com", SERVER, 60));
        let mut logs1 = m1.finish();
        let mut m2 = Monitor::new(MonitorConfig::default());
        feed(&mut m2, 1000, &dns_query(2, "a.example.com"));
        feed(&mut m2, 1010, &dns_response(2, "a.example.com", SERVER, 60));
        let logs2 = m2.finish();
        logs1.merge(logs2);
        assert_eq!(logs1.dns.len(), 2);
        assert_eq!(logs1.dns[0].query, "a.example.com");
        assert_eq!(logs1.stats.dns_messages, 4);
    }

    #[test]
    fn window_and_span_helpers() {
        let mut m = Monitor::new(MonitorConfig::default());
        feed(&mut m, 1_000, &dns_query(1, "a.example.com"));
        feed(&mut m, 1_010, &dns_response(1, "a.example.com", SERVER, 60));
        feed(&mut m, 9_000, &dns_query(2, "b.example.com"));
        feed(&mut m, 9_010, &dns_response(2, "b.example.com", SERVER, 60));
        let logs = m.finish();
        let (start, end) = logs.time_span().unwrap();
        assert_eq!(start, Timestamp::from_millis(1_000));
        assert!(end >= Timestamp::from_millis(9_000));
        let early = logs.window(Timestamp::ZERO, Timestamp::from_millis(5_000));
        assert_eq!(early.dns.len(), 1);
        assert_eq!(early.dns[0].query, "a.example.com");
        assert_eq!(logs.houses(), vec![HOUSE]);
        assert_eq!(Logs::default().time_span(), None);
    }

    #[test]
    fn service_breakdown_aggregates() {
        use crate::tracker::ConnState;
        use crate::types::{FiveTuple, Proto};
        let mk = |uid: u64, port: u16, bytes: u64| ConnRecord {
            uid,
            ts: Timestamp::from_millis(uid),
            id: FiveTuple {
                orig_addr: HOUSE,
                orig_port: 50_000,
                resp_addr: SERVER,
                resp_port: port,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(10),
            orig_bytes: 0,
            resp_bytes: bytes,
            orig_pkts: 1,
            resp_pkts: 1,
            state: ConnState::SF,
            history: crate::history::History::new(),
            service: crate::tracker::service_for_port(Proto::Tcp, port),
        };
        let logs = Logs {
            conns: vec![mk(1, 443, 100), mk(2, 443, 200), mk(3, 80, 50), mk(4, 9999, 1), mk(5, 53, 7)],
            dns: vec![],
            ..Default::default()
        };
        let b = logs.service_breakdown();
        // DNS flows are excluded; ssl (2 conns) leads.
        assert_eq!(b[0], ("ssl".to_string(), 2, 300));
        assert!(b.iter().any(|(s, n, _)| s == "http" && *n == 1));
        assert!(b.iter().any(|(s, n, _)| s == "other" && *n == 1));
        assert!(!b.iter().any(|(s, _, _)| s == "dns"));
    }

    #[test]
    fn process_pcap_end_to_end() {
        use pcapio::{PcapWriter, TsPrecision};
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, 65535, TsPrecision::Nano).unwrap();
            let q = dns_query(3, "pcap.example.com");
            let r = dns_response(3, "pcap.example.com", SERVER, 120);
            w.write_packet(1_000_000_000, &q.encode(), None).unwrap();
            w.write_packet(1_004_000_000, &r.encode(), None).unwrap();
        }
        let logs = Monitor::process_pcap(&buf[..], MonitorConfig::default()).unwrap();
        assert_eq!(logs.dns.len(), 1);
        assert_eq!(logs.dns[0].rtt, Some(Duration::from_millis(4)));
    }

    #[test]
    fn stats_metrics_round_trip_and_peak_max_merge() {
        let mut m = Monitor::new(MonitorConfig::default());
        feed(&mut m, 1000, &dns_query(7, "peak.example.com"));
        feed(&mut m, 1008, &dns_response(7, "peak.example.com", SERVER, 300));
        let logs = m.finish();
        assert!(logs.stats.peak_active_flows >= 1);
        // Exact struct ↔ metrics round trip.
        let snap = logs.stats.to_metrics();
        assert_eq!(MonitorStats::from_metrics(&snap), logs.stats);
        // Counters sum, the occupancy peak takes the max.
        let mut a = MonitorStats {
            packets: 3,
            peak_active_flows: 5,
            ..MonitorStats::default()
        };
        let b = MonitorStats {
            packets: 4,
            peak_active_flows: 2,
            ..MonitorStats::default()
        };
        a.merge(&b);
        assert_eq!(a.packets, 7);
        assert_eq!(a.peak_active_flows, 5);
    }

    #[test]
    fn flight_hooks_fire_on_rejection_paths_only() {
        let flight = xkit::obs::FlightRecorder::new(16);
        let mut m = Monitor::new(MonitorConfig::default());
        m.set_flight(flight.clone());
        // Accepted traffic records nothing.
        feed(&mut m, 1000, &dns_query(7, "ok.example.com"));
        feed(&mut m, 1008, &dns_response(7, "ok.example.com", SERVER, 300));
        assert!(flight.is_empty());
        // A truncated frame is a fault rejection.
        let q = dns_query(8, "cut.example.com").encode();
        m.handle_frame(Timestamp::from_millis(2000), &q[..10], q.len() as u32);
        // Garbage on port 53 is a parse degradation.
        feed(
            &mut m,
            3000,
            &Frame::udp(MacAddr::LOCAL, MacAddr::UPSTREAM, HOUSE, RESOLVER, 50000, 53, b"junk"),
        );
        let kinds: Vec<&str> = flight.snapshot().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["fault.reject", "parse.degrade"]);
        // Mid-run snapshot upholds the frames identity.
        let live = m.live_metrics();
        assert_eq!(
            live.counter("zeek.frames_seen"),
            live.counter("zeek.frames_accepted") + live.sum_counters("zeek.reject.")
        );
    }

    #[test]
    fn process_source_observed_publishes_prefix_snapshots() {
        use pcapio::{PcapWriter, TsPrecision};
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, 65535, TsPrecision::Nano).unwrap();
            for i in 0..6u16 {
                let q = dns_query(i, "obs.example.com");
                let r = dns_response(i, "obs.example.com", SERVER, 60);
                w.write_packet(u64::from(i) * 2_000_000_000, &q.encode(), None).unwrap();
                w.write_packet(u64::from(i) * 2_000_000_000 + 4_000_000, &r.encode(), None)
                    .unwrap();
            }
        }
        let hub = xkit::obs::ObsHub::new(16);
        let mut source = pcapio::source::file(&buf[..]).unwrap();
        let logs =
            Monitor::process_source_observed(&mut source, MonitorConfig::default(), &hub, 5)
                .unwrap();
        let published = hub.metrics();
        // The final publication covers the whole capture...
        assert_eq!(published.counter("zeek.frames_seen"), 12);
        assert_eq!(published.counter("capture.frames_read"), 12);
        // ...and agrees with the finished logs on every shared counter.
        let final_m = logs.metrics();
        assert_eq!(published.counter("zeek.dns_messages"), final_m.counter("zeek.dns_messages"));
        assert_eq!(
            published.counter("zeek.frames_seen"),
            published.counter("zeek.frames_accepted") + published.sum_counters("zeek.reject.")
        );
    }

    #[test]
    fn logs_metrics_cover_rows_and_rtt() {
        let mut m = Monitor::new(MonitorConfig::default());
        feed(&mut m, 1000, &dns_query(1, "a.example.com"));
        feed(&mut m, 1010, &dns_response(1, "a.example.com", SERVER, 60));
        feed(&mut m, 2000, &dns_query(2, "b.example.com"));
        let logs = m.finish();
        let snap = logs.metrics();
        assert_eq!(snap.counter("zeek.conn_rows"), logs.conns.len() as u64);
        assert_eq!(snap.counter("zeek.dns_rows"), 2);
        // Only the answered lookup lands in the RTT histogram.
        let h = snap.hist("zeek.dns_rtt_ms").unwrap();
        assert_eq!(h.count(), 1);
        // Degradation counters ride along in the same snapshot.
        assert_eq!(snap.counter("zeek.frames_seen"), logs.degradation.frames_seen);
    }
}
