//! Flow tracking: turning a packet stream into connection records.
//!
//! TCP connections are delineated by SYN/FIN/RST the way Bro does it; UDP
//! "connections" are all packets sharing an endpoint pair, ended by a
//! 60-second inactivity timeout (the paper's stated methodology). TCP byte
//! counts are recovered from sequence space so that snaplen-truncated
//! captures still produce correct volumes — Zeek's approach.

use crate::history::History;
use crate::time::{Duration, Timestamp};
use crate::types::{FiveTuple, Proto};
use netpkt::TcpFlags;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Terminal state of a connection, following Zeek's conn_state vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnState {
    /// Connection attempt seen, no reply.
    S0,
    /// Established, never terminated (flushed at timeout or end of trace).
    S1,
    /// Normal establishment and termination.
    SF,
    /// Connection attempt rejected (SYN answered by RST).
    Rej,
    /// Established, originator aborted with RST.
    RstO,
    /// Established, responder aborted with RST.
    RstR,
    /// Midstream or otherwise unclassifiable traffic.
    Oth,
}

impl ConnState {
    /// Log spelling (Zeek's).
    pub fn log_name(self) -> &'static str {
        match self {
            ConnState::S0 => "S0",
            ConnState::S1 => "S1",
            ConnState::SF => "SF",
            ConnState::Rej => "REJ",
            ConnState::RstO => "RSTO",
            ConnState::RstR => "RSTR",
            ConnState::Oth => "OTH",
        }
    }

    /// Parse the log spelling back.
    pub fn from_log_name(s: &str) -> Option<ConnState> {
        Some(match s {
            "S0" => ConnState::S0,
            "S1" => ConnState::S1,
            "SF" => ConnState::SF,
            "REJ" => ConnState::Rej,
            "RSTO" => ConnState::RstO,
            "RSTR" => ConnState::RstR,
            "OTH" => ConnState::Oth,
            _ => return None,
        })
    }

    /// Whether any payload could have been exchanged (handshake completed).
    pub fn established(self) -> bool {
        matches!(self, ConnState::S1 | ConnState::SF | ConnState::RstO | ConnState::RstR)
    }
}

/// One connection summary — the analogue of a Bro conn.log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnRecord {
    /// Unique id within the capture.
    pub uid: u64,
    /// Time of the first packet.
    pub ts: Timestamp,
    /// Oriented endpoints.
    pub id: FiveTuple,
    /// First-to-last-packet span.
    pub duration: Duration,
    /// Payload bytes from the originator.
    pub orig_bytes: u64,
    /// Payload bytes from the responder.
    pub resp_bytes: u64,
    /// Packets from the originator.
    pub orig_pkts: u64,
    /// Packets from the responder.
    pub resp_pkts: u64,
    /// Terminal state.
    pub state: ConnState,
    /// Order of notable events ('S' SYN, 'h' SYN-ACK, 'A'/'a' ACK,
    /// 'D'/'d' data, 'F'/'f' FIN, 'R'/'r' RST; upper = originator).
    pub history: History,
    /// Well-known service guessed from the responder port.
    pub service: Option<&'static str>,
}

impl ConnRecord {
    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.orig_bytes + self.resp_bytes
    }

    /// Application-level throughput in bits/second (both directions), or
    /// `None` for zero-duration or zero-byte connections.
    pub fn throughput_bps(&self) -> Option<f64> {
        if self.duration == Duration::ZERO || self.total_bytes() == 0 {
            return None;
        }
        Some(self.total_bytes() as f64 * 8.0 / self.duration.as_secs_f64())
    }

    /// True for DNS traffic (which the analysis treats as its own dataset,
    /// not as application transactions).
    pub fn is_dns(&self) -> bool {
        self.service == Some("dns")
    }
}

/// Guess the service from the responder port, Zeek-style.
pub(crate) fn service_for_port(proto: Proto, resp_port: u16) -> Option<&'static str> {
    match (proto, resp_port) {
        (_, 53) => Some("dns"),
        (_, 853) => Some("dot"),
        (Proto::Tcp, 80) => Some("http"),
        (Proto::Tcp, 443) => Some("ssl"),
        (Proto::Udp, 443) => Some("quic"),
        (Proto::Udp, 123) => Some("ntp"),
        (Proto::Tcp, 25) | (Proto::Tcp, 465) | (Proto::Tcp, 587) => Some("smtp"),
        (Proto::Tcp, 993) => Some("imap"),
        (Proto::Udp, 5353) => Some("mdns"),
        _ => None,
    }
}

/// What the tracker needs to know about one packet.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PktMeta {
    pub ts: Timestamp,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: Proto,
    /// TCP flags; `None` for UDP.
    pub tcp_flags: Option<TcpFlags>,
    /// TCP sequence number; `None` for UDP.
    pub seq: Option<u32>,
    /// Payload length declared by the headers.
    pub payload_len: u64,
}

#[derive(Debug, Default)]
struct DirStats {
    pkts: u64,
    /// Summed declared payload (UDP accounting).
    udp_bytes: u64,
    /// Initial sequence number from this direction's SYN.
    isn: Option<u64>,
    /// First sequence number seen (fallback when no SYN was captured).
    first_seq: Option<u64>,
    /// Highest extended sequence number consumed (seq + payload + SYN + FIN).
    max_end_seq: Option<u64>,
    /// End of the highest FIN segment seen (seq + payload + SYN + FIN), so
    /// the FIN's sequence number is only discounted when it actually falls
    /// inside the counted range.
    fin_end: Option<u64>,
    syn: bool,
    fin: bool,
    rst: bool,
    data_logged: bool,
    ack_logged: bool,
}

impl DirStats {
    /// Extend a 32-bit sequence number to 64 bits near the last seen value.
    fn extend_seq(&self, seq32: u32) -> u64 {
        let anchor = self.max_end_seq.or(self.isn).or(self.first_seq);
        match anchor {
            None => seq32 as u64,
            Some(last) => {
                let delta = seq32.wrapping_sub(last as u32) as i32 as i64;
                let v = last as i64 + delta;
                if v < 0 {
                    seq32 as u64
                } else {
                    v as u64
                }
            }
        }
    }

    /// Payload bytes this direction carried, from sequence space (TCP).
    fn tcp_bytes(&self) -> u64 {
        let start = match (self.isn, self.first_seq) {
            (Some(isn), _) => isn + 1, // SYN consumes one number
            (None, Some(first)) => first,
            (None, None) => return 0,
        };
        let end = match self.max_end_seq {
            Some(e) => e,
            None => return 0,
        };
        let mut bytes = end.saturating_sub(start);
        // The FIN consumes one sequence number (RFC 793 §3.3), but only
        // discount it when the FIN's number actually lies inside the range
        // we counted — an out-of-order FIN below data we already measured
        // must not shave a payload byte, and a FIN-only direction (start ==
        // end after the SYN adjustment) has nothing to shave.
        if let Some(fe) = self.fin_end {
            if fe > start && fe <= end {
                bytes = bytes.saturating_sub(1);
            }
        }
        bytes
    }
}

#[derive(Debug)]
struct Flow {
    uid: u64,
    tuple: FiveTuple,
    start: Timestamp,
    last: Timestamp,
    orig: DirStats,
    resp: DirStats,
    history: History,
}

impl Flow {
    fn state(&self) -> ConnState {
        match self.tuple.proto {
            Proto::Udp => {
                if self.resp.pkts > 0 {
                    ConnState::SF
                } else {
                    ConnState::S0
                }
            }
            Proto::Tcp => {
                if !self.orig.syn {
                    return ConnState::Oth;
                }
                if self.resp.rst && !self.resp.syn {
                    return ConnState::Rej;
                }
                if !self.resp.syn {
                    return if self.orig.rst { ConnState::Oth } else { ConnState::S0 };
                }
                if self.orig.rst {
                    return ConnState::RstO;
                }
                if self.resp.rst {
                    return ConnState::RstR;
                }
                if self.orig.fin && self.resp.fin {
                    return ConnState::SF;
                }
                ConnState::S1
            }
        }
    }

    fn terminated(&self) -> bool {
        match self.tuple.proto {
            Proto::Udp => false,
            Proto::Tcp => {
                (self.orig.fin && self.resp.fin)
                    || self.orig.rst
                    || self.resp.rst
            }
        }
    }

    fn into_record(self) -> ConnRecord {
        let state = self.state();
        let (orig_bytes, resp_bytes) = match self.tuple.proto {
            Proto::Tcp => (self.orig.tcp_bytes(), self.resp.tcp_bytes()),
            Proto::Udp => (self.orig.udp_bytes, self.resp.udp_bytes),
        };
        ConnRecord {
            uid: self.uid,
            ts: self.start,
            id: self.tuple,
            duration: self.last.since(self.start),
            orig_bytes,
            resp_bytes,
            orig_pkts: self.orig.pkts,
            resp_pkts: self.resp.pkts,
            state,
            history: self.history,
            service: service_for_port(self.tuple.proto, self.tuple.resp_port),
        }
    }
}

type CanonKey = ((Ipv4Addr, u16), (Ipv4Addr, u16), Proto);

/// The flow table.
pub(crate) struct FlowTracker {
    udp_timeout: Duration,
    tcp_timeout: Duration,
    /// Delay between a TCP connection terminating and its removal, so that
    /// stray retransmits do not spawn ghost flows.
    linger: Duration,
    flows: HashMap<CanonKey, Flow>,
    completed: Vec<ConnRecord>,
    next_uid: u64,
    last_sweep: Timestamp,
    sweep_interval: Duration,
}

impl FlowTracker {
    pub fn new(udp_timeout: Duration, tcp_timeout: Duration) -> FlowTracker {
        FlowTracker {
            udp_timeout,
            tcp_timeout,
            linger: Duration::from_secs(5),
            flows: HashMap::new(),
            completed: Vec::new(),
            next_uid: 1,
            last_sweep: Timestamp::ZERO,
            sweep_interval: Duration::from_secs(10),
        }
    }

    pub fn handle(&mut self, m: PktMeta) {
        self.maybe_sweep(m.ts);
        let tuple = FiveTuple {
            orig_addr: m.src,
            orig_port: m.src_port,
            resp_addr: m.dst,
            resp_port: m.dst_port,
            proto: m.proto,
        };
        let key = tuple.canonical_key();
        // A terminated TCP flow followed by a fresh SYN on the same tuple
        // starts a new connection (port reuse).
        if let Some(flow) = self.flows.get(&key) {
            let fresh_syn = m
                .tcp_flags
                .map(|f| f.syn && !f.ack)
                .unwrap_or(false);
            if flow.terminated() && fresh_syn {
                let flow = self.flows.remove(&key).unwrap();
                self.completed.push(flow.into_record());
            }
        }
        let next_uid = &mut self.next_uid;
        let flow = self.flows.entry(key).or_insert_with(|| {
            let uid = *next_uid;
            *next_uid += 1;
            Flow {
                uid,
                tuple,
                start: m.ts,
                last: m.ts,
                orig: DirStats::default(),
                resp: DirStats::default(),
                history: History::new(),
            }
        });
        flow.last = m.ts;
        let from_orig = m.src == flow.tuple.orig_addr && m.src_port == flow.tuple.orig_port;
        let (dir, hist_case): (&mut DirStats, fn(char) -> char) = if from_orig {
            (&mut flow.orig, |c| c.to_ascii_uppercase())
        } else {
            (&mut flow.resp, |c| c.to_ascii_lowercase())
        };
        dir.pkts += 1;
        match m.proto {
            Proto::Udp => {
                dir.udp_bytes += m.payload_len;
                if m.payload_len > 0 && !dir.data_logged {
                    dir.data_logged = true;
                    flow.history.push(hist_case('d'));
                }
            }
            Proto::Tcp => {
                let flags = m.tcp_flags.unwrap_or_default();
                let seq32 = m.seq.unwrap_or(0);
                let seq = dir.extend_seq(seq32);
                if flags.syn {
                    match dir.isn {
                        None => dir.isn = Some(seq),
                        // A SYN retransmitted with a *different* ISN before
                        // any data restarts the sequence space; re-anchor so
                        // the stale [old_isn, max_end) range cannot report
                        // phantom bytes.
                        Some(old) if old != seq && !dir.data_logged => {
                            dir.isn = Some(seq);
                            dir.first_seq = Some(seq);
                            dir.max_end_seq = None;
                        }
                        Some(_) => {}
                    }
                }
                if dir.first_seq.is_none() {
                    dir.first_seq = Some(seq);
                }
                let end = seq + m.payload_len + flags.syn as u64 + flags.fin as u64;
                if dir.max_end_seq.map(|e| end > e).unwrap_or(true) {
                    dir.max_end_seq = Some(end);
                }
                if flags.fin {
                    dir.fin_end = Some(dir.fin_end.map_or(end, |e| e.max(end)));
                }
                // History letters, first occurrence each.
                if flags.syn && !flags.ack && !flow.history.contains(hist_case('s')) {
                    flow.history.push(hist_case('s'));
                }
                if flags.syn && flags.ack && !flow.history.contains(hist_case('h')) {
                    flow.history.push(hist_case('h'));
                }
                if flags.ack && !flags.syn && !dir.ack_logged {
                    dir.ack_logged = true;
                    flow.history.push(hist_case('a'));
                }
                if m.payload_len > 0 && !dir.data_logged {
                    dir.data_logged = true;
                    flow.history.push(hist_case('d'));
                }
                if flags.fin && !dir.fin {
                    dir.fin = true;
                    flow.history.push(hist_case('f'));
                }
                if flags.rst && !dir.rst {
                    dir.rst = true;
                    flow.history.push(hist_case('r'));
                }
                if flags.syn {
                    dir.syn = true;
                }
            }
        }
    }

    fn maybe_sweep(&mut self, now: Timestamp) {
        if now.since(self.last_sweep) < self.sweep_interval {
            return;
        }
        self.last_sweep = now;
        let udp_t = self.udp_timeout;
        let tcp_t = self.tcp_timeout;
        let linger = self.linger;
        let mut expired: Vec<CanonKey> = Vec::new();
        // lint: allow(no-map-iteration): expired flows are re-sorted by the total log order
        for (key, flow) in &self.flows {
            let idle = now.since(flow.last);
            let done = match flow.tuple.proto {
                Proto::Udp => idle >= udp_t,
                Proto::Tcp => {
                    if flow.terminated() {
                        idle >= linger
                    } else {
                        idle >= tcp_t
                    }
                }
            };
            if done {
                expired.push(*key);
            }
        }
        for key in expired {
            let flow = self.flows.remove(&key).unwrap();
            self.completed.push(flow.into_record());
        }
    }

    /// Drain connection records completed so far.
    pub fn drain_completed(&mut self) -> Vec<ConnRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Flush every remaining flow (end of capture) and return all records.
    pub fn finish(mut self) -> Vec<ConnRecord> {
        let mut out = std::mem::take(&mut self.completed);
        // lint: allow(no-map-iteration): sorted by start just below; the log sort is total
        let mut remaining: Vec<Flow> = self.flows.into_values().collect();
        remaining.sort_by_key(|f| f.start);
        out.extend(remaining.into_iter().map(Flow::into_record));
        out
    }

    /// Number of currently-tracked flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Start time of the oldest flow still in the table, if any. The
    /// streaming engine uses this as a release watermark: every future
    /// connection record must start at or after this instant.
    pub fn oldest_active_flow_start(&self) -> Option<Timestamp> {
        // lint: allow(no-map-iteration): order-insensitive min
        self.flows.values().map(|f| f.start).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 2);
    const S: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    fn tcp_pkt(ts_ms: u64, from_orig: bool, flags: TcpFlags, seq: u32, payload: u64) -> PktMeta {
        let (src, dst, sp, dp) = if from_orig {
            (H, S, 49152, 443)
        } else {
            (S, H, 443, 49152)
        };
        PktMeta {
            ts: Timestamp::from_millis(ts_ms),
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            proto: Proto::Tcp,
            tcp_flags: Some(flags),
            seq: Some(seq),
            payload_len: payload,
        }
    }

    fn udp_pkt(ts_ms: u64, from_orig: bool, payload: u64) -> PktMeta {
        let (src, dst, sp, dp) = if from_orig {
            (H, S, 50000, 4433)
        } else {
            (S, H, 4433, 50000)
        };
        PktMeta {
            ts: Timestamp::from_millis(ts_ms),
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            proto: Proto::Udp,
            tcp_flags: None,
            seq: None,
            payload_len: payload,
        }
    }

    /// Full handshake, data both ways (via seq advance), clean FIN close.
    fn drive_normal_tcp(t: &mut FlowTracker, base_ms: u64, orig_data: u32, resp_data: u32) {
        let isn_o = 1000u32;
        let isn_r = 9000u32;
        t.handle(tcp_pkt(base_ms, true, TcpFlags::SYN, isn_o, 0));
        t.handle(tcp_pkt(base_ms + 10, false, TcpFlags::SYN_ACK, isn_r, 0));
        t.handle(tcp_pkt(base_ms + 20, true, TcpFlags::ACK, isn_o + 1, 0));
        // Data represented by sequence advance.
        t.handle(tcp_pkt(base_ms + 30, true, TcpFlags::PSH_ACK, isn_o + 1, orig_data as u64));
        t.handle(tcp_pkt(base_ms + 40, false, TcpFlags::PSH_ACK, isn_r + 1, resp_data as u64));
        t.handle(tcp_pkt(base_ms + 50, true, TcpFlags::FIN_ACK, isn_o + 1 + orig_data, 0));
        t.handle(tcp_pkt(base_ms + 60, false, TcpFlags::FIN_ACK, isn_r + 1 + resp_data, 0));
    }

    #[test]
    fn normal_tcp_connection() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        drive_normal_tcp(&mut t, 1000, 500, 70000);
        let recs = t.finish();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.state, ConnState::SF);
        assert_eq!(r.orig_bytes, 500);
        assert_eq!(r.resp_bytes, 70000);
        assert_eq!(r.orig_pkts, 4);
        assert_eq!(r.resp_pkts, 3);
        assert_eq!(r.duration, Duration::from_millis(60));
        assert_eq!(r.service, Some("ssl"));
        assert_eq!(r.id.orig_addr, H);
        assert!(r.history.starts_with("Sh"));
    }

    #[test]
    fn syn_no_answer_is_s0() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 1, 0));
        let recs = t.finish();
        assert_eq!(recs[0].state, ConnState::S0);
        assert_eq!(recs[0].orig_bytes, 0);
    }

    #[test]
    fn syn_rst_is_rej() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 1, 0));
        t.handle(tcp_pkt(10, false, TcpFlags::RST, 0, 0));
        let recs = t.finish();
        assert_eq!(recs[0].state, ConnState::Rej);
    }

    #[test]
    fn established_then_rst_by_orig() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 1, 0));
        t.handle(tcp_pkt(10, false, TcpFlags::SYN_ACK, 100, 0));
        t.handle(tcp_pkt(20, true, TcpFlags::ACK, 2, 0));
        t.handle(tcp_pkt(30, true, TcpFlags::RST, 2, 0));
        let recs = t.finish();
        assert_eq!(recs[0].state, ConnState::RstO);
    }

    #[test]
    fn midstream_traffic_is_oth() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::PSH_ACK, 5000, 100));
        t.handle(tcp_pkt(10, false, TcpFlags::ACK, 800, 0));
        let recs = t.finish();
        assert_eq!(recs[0].state, ConnState::Oth);
        // Bytes still counted from first seen seq.
        assert_eq!(recs[0].orig_bytes, 100);
    }

    #[test]
    fn udp_flow_with_timeout() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(udp_pkt(0, true, 100));
        t.handle(udp_pkt(500, false, 2000));
        // 61 s later: a packet on another tuple triggers the sweep.
        t.handle(tcp_pkt(61_500, true, TcpFlags::SYN, 1, 0));
        let done = t.drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id.proto, Proto::Udp);
        assert_eq!(done[0].orig_bytes, 100);
        assert_eq!(done[0].resp_bytes, 2000);
        assert_eq!(done[0].state, ConnState::SF);
        assert_eq!(done[0].duration, Duration::from_millis(500));
    }

    #[test]
    fn udp_continued_activity_keeps_flow_open() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        for i in 0..10 {
            t.handle(udp_pkt(i * 30_000, true, 10)); // every 30 s
        }
        assert!(t.drain_completed().is_empty());
        let recs = t.finish();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].orig_pkts, 10);
    }

    #[test]
    fn seq_wraparound_counts_bytes() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        let isn = u32::MAX - 10;
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, isn, 0));
        t.handle(tcp_pkt(10, false, TcpFlags::SYN_ACK, 0, 0));
        // Data that wraps the 32-bit space: seq isn+1, 100 bytes.
        t.handle(tcp_pkt(20, true, TcpFlags::PSH_ACK, isn.wrapping_add(1), 100));
        let recs = t.finish();
        assert_eq!(recs[0].orig_bytes, 100);
    }

    #[test]
    fn retransmission_does_not_double_count() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 100, 0));
        t.handle(tcp_pkt(10, false, TcpFlags::SYN_ACK, 500, 0));
        t.handle(tcp_pkt(20, true, TcpFlags::PSH_ACK, 101, 50));
        t.handle(tcp_pkt(30, true, TcpFlags::PSH_ACK, 101, 50)); // retransmit
        let recs = t.finish();
        assert_eq!(recs[0].orig_bytes, 50);
        assert_eq!(recs[0].orig_pkts, 3);
    }

    #[test]
    fn port_reuse_after_termination_starts_new_conn() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        drive_normal_tcp(&mut t, 0, 10, 10);
        // Same 5-tuple, fresh SYN.
        drive_normal_tcp(&mut t, 10_000, 20, 20);
        let recs = t.finish();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].orig_bytes, 10);
        assert_eq!(recs[1].orig_bytes, 20);
        assert_ne!(recs[0].uid, recs[1].uid);
    }

    #[test]
    fn throughput_helper() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        drive_normal_tcp(&mut t, 0, 0, 60_000);
        let recs = t.finish();
        let bps = recs[0].throughput_bps().unwrap();
        // 60 kB over 60 ms = 8 Mbit/s.
        assert!((bps - 8_000_000.0).abs() < 1.0, "bps = {bps}");
    }

    #[test]
    fn rst_after_clean_close_does_not_flip_state() {
        // Some stacks fire an RST after FIN exchange; Zeek keeps SF. Our
        // simplified machine reports RSTO — both are "terminated"; what
        // matters is the byte counts survive.
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        drive_normal_tcp(&mut t, 0, 100, 200);
        t.handle(tcp_pkt(100, true, TcpFlags::RST, 1101, 0));
        let recs = t.finish();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].orig_bytes, 100);
        assert_eq!(recs[0].resp_bytes, 200);
        assert!(recs[0].state.established());
    }

    #[test]
    fn syn_retransmits_counted_once_in_bytes() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 77, 0));
        t.handle(tcp_pkt(1_000, true, TcpFlags::SYN, 77, 0));
        t.handle(tcp_pkt(3_000, true, TcpFlags::SYN, 77, 0));
        let recs = t.finish();
        assert_eq!(recs[0].state, ConnState::S0);
        assert_eq!(recs[0].orig_pkts, 3);
        assert_eq!(recs[0].orig_bytes, 0);
    }

    #[test]
    fn tfo_style_data_on_syn_counted() {
        // TCP Fast Open: payload on the SYN itself.
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        let mut syn = tcp_pkt(0, true, TcpFlags::SYN, 500, 0);
        syn.payload_len = 32;
        t.handle(syn);
        t.handle(tcp_pkt(10, false, TcpFlags::SYN_ACK, 900, 0));
        let recs = t.finish();
        assert_eq!(recs[0].orig_bytes, 32);
    }

    #[test]
    fn out_of_order_segments_do_not_shrink_bytes() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 1_000, 0));
        t.handle(tcp_pkt(5, false, TcpFlags::SYN_ACK, 2_000, 0));
        // Later data arrives first, then the earlier hole is filled.
        t.handle(tcp_pkt(20, true, TcpFlags::PSH_ACK, 1_501, 500));
        t.handle(tcp_pkt(25, true, TcpFlags::PSH_ACK, 1_001, 500));
        let recs = t.finish();
        assert_eq!(recs[0].orig_bytes, 1_000);
    }

    #[test]
    fn two_flows_same_ports_different_hosts_stay_separate() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        let mut a = udp_pkt(0, true, 10);
        let mut b = udp_pkt(1, true, 20);
        b.src = Ipv4Addr::new(10, 1, 1, 3);
        a.dst_port = 443;
        b.dst_port = 443;
        t.handle(a);
        t.handle(b);
        let recs = t.finish();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn fin_only_direction_reports_zero_bytes() {
        // A lone FIN carries no payload: its sequence number is consumed
        // but no data was transferred, so bytes must be exactly zero (and
        // never wrap through saturating arithmetic).
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 100, 0));
        t.handle(tcp_pkt(10, false, TcpFlags::SYN_ACK, 900, 0));
        t.handle(tcp_pkt(20, false, TcpFlags::FIN_ACK, 901, 0));
        let recs = t.finish();
        assert_eq!(recs[0].resp_bytes, 0);
        assert_eq!(recs[0].orig_bytes, 0);
    }

    #[test]
    fn data_plus_fin_counts_payload_exactly() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 100, 0));
        t.handle(tcp_pkt(10, false, TcpFlags::SYN_ACK, 900, 0));
        // 50 bytes of data, then a FIN carrying 10 more bytes.
        t.handle(tcp_pkt(20, true, TcpFlags::PSH_ACK, 101, 50));
        t.handle(tcp_pkt(30, true, TcpFlags::FIN_ACK, 151, 10));
        let recs = t.finish();
        assert_eq!(recs[0].orig_bytes, 60);
    }

    #[test]
    fn out_of_order_fin_below_data_does_not_undercount() {
        // Data advanced max_end_seq past the point where an old
        // (retransmitted, below-window) FIN lands: the FIN's sequence
        // number is outside the counted range, so no byte may be shaved.
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::PSH_ACK, 5000, 100));
        t.handle(tcp_pkt(10, true, TcpFlags::FIN_ACK, 4000, 0));
        let recs = t.finish();
        assert_eq!(recs[0].orig_bytes, 100);
    }

    #[test]
    fn syn_retransmit_with_new_isn_reports_no_phantom_bytes() {
        // A client giving up and restarting with a fresh ISN (no data ever
        // sent) must not report the ISN delta as payload.
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        t.handle(tcp_pkt(0, true, TcpFlags::SYN, 1_000, 0));
        t.handle(tcp_pkt(3_000, true, TcpFlags::SYN, 50_000, 0));
        let recs = t.finish();
        assert_eq!(recs[0].state, ConnState::S0);
        assert_eq!(recs[0].orig_bytes, 0);
    }

    #[test]
    fn oldest_active_flow_start_tracks_minimum() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        assert_eq!(t.oldest_active_flow_start(), None);
        t.handle(udp_pkt(5_000, true, 10));
        let mut other = udp_pkt(9_000, true, 10);
        other.src = Ipv4Addr::new(10, 1, 1, 9);
        t.handle(other);
        assert_eq!(t.oldest_active_flow_start(), Some(Timestamp::from_millis(5_000)));
    }

    #[test]
    fn dns_service_detection() {
        let mut t = FlowTracker::new(Duration::from_secs(60), Duration::from_secs(300));
        let mut p = udp_pkt(0, true, 40);
        p.dst_port = 53;
        t.handle(p);
        let recs = t.finish();
        assert!(recs[0].is_dns());
    }
}
