//! Columnar (struct-of-arrays) projections of the log tables.
//!
//! The row structs ([`ConnRecord`], [`DnsTransaction`]) stay the
//! workspace's interchange format — sorting, merging, and serialisation
//! all speak rows. But the analysis hot loops (pairing, classification,
//! §6 performance) each read only two or three fields per record, and
//! scanning them through 100-byte rows wastes most of every cache line.
//! These projections lay the scanned fields out as contiguous columns:
//!
//! * [`ConnColumns`] carries *every* conn.log field (all are `Copy`), so
//!   it can also reconstruct exact rows — [`ConnColumns::row`] is the
//!   row view used by the columnar log writer, which must byte-match
//!   the row writer.
//! * [`DnsColumns`] carries only the per-transaction scalars the
//!   analyses scan (client, resolver, rtt, derived completion/expiry);
//!   variable-length data (query names, answer sets) stays in the rows.
//!
//! Invariant: a projection is positionally aligned with the rows it was
//! built from — index `i` in every column refers to row `i`. Projections
//! are derived data; rebuild them after any mutation of the rows.

use crate::dns::DnsTransaction;
use crate::history::History;
use crate::time::{Duration, Timestamp};
use crate::tracker::{ConnRecord, ConnState};
use crate::types::{FiveTuple, Proto};
use std::net::Ipv4Addr;

/// Struct-of-arrays projection of a conn.log (all fields).
#[derive(Debug, Clone, Default)]
pub struct ConnColumns {
    /// First-packet times.
    pub ts: Vec<Timestamp>,
    /// Capture-unique ids.
    pub uid: Vec<u64>,
    /// Originator addresses.
    pub orig_addr: Vec<Ipv4Addr>,
    /// Originator ports.
    pub orig_port: Vec<u16>,
    /// Responder addresses.
    pub resp_addr: Vec<Ipv4Addr>,
    /// Responder ports.
    pub resp_port: Vec<u16>,
    /// Transport protocols.
    pub proto: Vec<Proto>,
    /// Guessed services.
    pub service: Vec<Option<&'static str>>,
    /// Connection durations.
    pub duration: Vec<Duration>,
    /// Originator payload bytes.
    pub orig_bytes: Vec<u64>,
    /// Responder payload bytes.
    pub resp_bytes: Vec<u64>,
    /// Terminal states.
    pub state: Vec<ConnState>,
    /// Originator packets.
    pub orig_pkts: Vec<u64>,
    /// Responder packets.
    pub resp_pkts: Vec<u64>,
    /// Event histories.
    pub history: Vec<History>,
    /// Cached `ConnRecord::is_dns` per row.
    pub is_dns: Vec<bool>,
}

impl ConnColumns {
    /// Project rows into columns (index-aligned).
    pub fn from_rows(conns: &[ConnRecord]) -> ConnColumns {
        let mut c = ConnColumns::default();
        c.reserve(conns.len());
        for r in conns {
            c.push(r);
        }
        c
    }

    fn reserve(&mut self, n: usize) {
        self.ts.reserve(n);
        self.uid.reserve(n);
        self.orig_addr.reserve(n);
        self.orig_port.reserve(n);
        self.resp_addr.reserve(n);
        self.resp_port.reserve(n);
        self.proto.reserve(n);
        self.service.reserve(n);
        self.duration.reserve(n);
        self.orig_bytes.reserve(n);
        self.resp_bytes.reserve(n);
        self.state.reserve(n);
        self.orig_pkts.reserve(n);
        self.resp_pkts.reserve(n);
        self.history.reserve(n);
        self.is_dns.reserve(n);
    }

    /// Append one row to every column.
    pub fn push(&mut self, r: &ConnRecord) {
        self.ts.push(r.ts);
        self.uid.push(r.uid);
        self.orig_addr.push(r.id.orig_addr);
        self.orig_port.push(r.id.orig_port);
        self.resp_addr.push(r.id.resp_addr);
        self.resp_port.push(r.id.resp_port);
        self.proto.push(r.id.proto);
        self.service.push(r.service);
        self.duration.push(r.duration);
        self.orig_bytes.push(r.orig_bytes);
        self.resp_bytes.push(r.resp_bytes);
        self.state.push(r.state);
        self.orig_pkts.push(r.orig_pkts);
        self.resp_pkts.push(r.resp_pkts);
        self.history.push(r.history);
        self.is_dns.push(r.is_dns());
    }

    /// Number of rows projected.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// Whether the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Reassemble row `i` exactly (every conn.log field is `Copy`, so
    /// this allocates nothing). The columnar log writer serialises these
    /// views and byte-matches the row writer.
    pub fn row(&self, i: usize) -> ConnRecord {
        ConnRecord {
            uid: self.uid[i],
            ts: self.ts[i],
            id: FiveTuple {
                orig_addr: self.orig_addr[i],
                orig_port: self.orig_port[i],
                resp_addr: self.resp_addr[i],
                resp_port: self.resp_port[i],
                proto: self.proto[i],
            },
            duration: self.duration[i],
            orig_bytes: self.orig_bytes[i],
            resp_bytes: self.resp_bytes[i],
            orig_pkts: self.orig_pkts[i],
            resp_pkts: self.resp_pkts[i],
            state: self.state[i],
            history: self.history[i],
            service: self.service[i],
        }
    }

    /// Row views in order.
    pub fn rows(&self) -> impl Iterator<Item = ConnRecord> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }
}

/// Struct-of-arrays projection of the dns.log scalars the analyses scan.
///
/// Completion and expiry are derived once here ([`DnsTransaction`]
/// computes them from `ts + rtt` and the minimum answer TTL), so hot
/// loops read plain columns instead of re-deriving per access.
#[derive(Debug, Clone, Default)]
pub struct DnsColumns {
    /// Querying clients.
    pub client: Vec<Ipv4Addr>,
    /// Serving resolvers.
    pub resolver: Vec<Ipv4Addr>,
    /// Lookup durations (`None` for unanswered queries).
    pub rtt: Vec<Option<Duration>>,
    /// `DnsTransaction::completed_at` per row.
    pub completed: Vec<Option<Timestamp>>,
    /// `DnsTransaction::expires_at` per row.
    pub expires: Vec<Option<Timestamp>>,
    /// `DnsTransaction::has_addrs` per row.
    pub has_addrs: Vec<bool>,
}

impl DnsColumns {
    /// Project rows into columns (index-aligned).
    pub fn from_rows(dns: &[DnsTransaction]) -> DnsColumns {
        let mut c = DnsColumns {
            client: Vec::with_capacity(dns.len()),
            resolver: Vec::with_capacity(dns.len()),
            rtt: Vec::with_capacity(dns.len()),
            completed: Vec::with_capacity(dns.len()),
            expires: Vec::with_capacity(dns.len()),
            has_addrs: Vec::with_capacity(dns.len()),
        };
        for t in dns {
            c.client.push(t.client);
            c.resolver.push(t.resolver);
            c.rtt.push(t.rtt);
            c.completed.push(t.completed_at());
            c.expires.push(t.expires_at());
            c.has_addrs.push(t.has_addrs());
        }
        c
    }

    /// Number of rows projected.
    pub fn len(&self) -> usize {
        self.client.len()
    }

    /// Whether the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.client.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::Answer;
    use dns_wire::{Rcode, RrType};

    fn sample_conns() -> Vec<ConnRecord> {
        (0..5u64)
            .map(|i| ConnRecord {
                uid: i,
                ts: Timestamp(i * 1_000_000_007),
                id: FiveTuple {
                    orig_addr: Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                    orig_port: 50_000 + i as u16,
                    resp_addr: Ipv4Addr::new(93, 184, 216, 34),
                    resp_port: if i == 0 { 53 } else { 443 },
                    proto: if i == 0 { Proto::Udp } else { Proto::Tcp },
                },
                duration: Duration::from_millis(100 + i),
                orig_bytes: i * 10,
                resp_bytes: i * 100,
                orig_pkts: i,
                resp_pkts: i * 2,
                state: ConnState::SF,
                history: "ShAaFf".into(),
                service: if i == 0 { Some("dns") } else { Some("ssl") },
            })
            .collect()
    }

    #[test]
    fn conn_rows_round_trip_exactly() {
        let rows = sample_conns();
        let cols = ConnColumns::from_rows(&rows);
        assert_eq!(cols.len(), rows.len());
        let back: Vec<ConnRecord> = cols.rows().collect();
        assert_eq!(back, rows);
        assert!(cols.is_dns[0]);
        assert!(!cols.is_dns[1]);
    }

    #[test]
    fn dns_columns_match_row_derivations() {
        let answered = DnsTransaction {
            ts: Timestamp::from_millis(1_000),
            client: Ipv4Addr::new(10, 0, 0, 1),
            resolver: Ipv4Addr::new(8, 8, 8, 8),
            trans_id: 1,
            query: "www.example.com".into(),
            qtype: RrType::A,
            rcode: Some(Rcode::NoError),
            rtt: Some(Duration::from_millis(10)),
            answers: vec![Answer::addr(Ipv4Addr::new(203, 0, 113, 7), 60)],
        };
        let mut unanswered = answered.clone();
        unanswered.rcode = None;
        unanswered.rtt = None;
        unanswered.answers.clear();
        let rows = vec![answered, unanswered];
        let cols = DnsColumns::from_rows(&rows);
        for (i, t) in rows.iter().enumerate() {
            assert_eq!(cols.client[i], t.client);
            assert_eq!(cols.resolver[i], t.resolver);
            assert_eq!(cols.rtt[i], t.rtt);
            assert_eq!(cols.completed[i], t.completed_at());
            assert_eq!(cols.expires[i], t.expires_at());
            assert_eq!(cols.has_addrs[i], t.has_addrs());
        }
    }
}
