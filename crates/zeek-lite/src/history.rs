//! Inline connection-history codes.
//!
//! Zeek's `history` column is a short string of single-letter event codes
//! ('S' SYN, 'h' SYN-ACK, 'A'/'a' ACK, 'D'/'d' data, 'F'/'f' FIN, 'R'/'r'
//! RST; upper = originator). Each letter is logged at most once per
//! direction, so a real history never exceeds 12 bytes. Storing it as a
//! heap `String` put one allocation on every connection record in the hot
//! path; [`History`] is the interned replacement — a fixed inline buffer
//! that is `Copy`, allocation-free, and dereferences to `&str` so existing
//! call sites (`contains`, `starts_with`, `is_empty`, formatting) keep
//! working unchanged.

use std::fmt;
use std::ops::Deref;

/// A connection-history code string stored inline (no heap allocation).
///
/// Capacity is [`History::CAPACITY`] bytes — comfortably above the 12-byte
/// maximum a well-formed history can reach. Pushes beyond capacity are
/// silently dropped rather than panicking, matching the "best-effort
/// annotation" role the column plays in Zeek.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct History {
    len: u8,
    buf: [u8; History::CAPACITY],
}

impl History {
    /// Maximum number of code bytes an instance can hold.
    pub const CAPACITY: usize = 15;

    /// The empty history.
    pub const fn new() -> History {
        History { len: 0, buf: [0; History::CAPACITY] }
    }

    /// Append one ASCII code character. Non-ASCII characters and pushes
    /// past capacity are ignored.
    pub fn push(&mut self, c: char) {
        if c.is_ascii() && (self.len as usize) < History::CAPACITY {
            self.buf[self.len as usize] = c as u8;
            self.len += 1;
        }
    }

    /// View the codes as a string slice.
    pub fn as_str(&self) -> &str {
        // Only ASCII bytes are ever stored, so this cannot fail; the
        // fallback keeps the accessor panic-free regardless.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl Deref for History {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for History {
    fn from(s: &str) -> History {
        let mut h = History::new();
        for c in s.chars() {
            h.push(c);
        }
        h
    }
}

impl From<String> for History {
    fn from(s: String) -> History {
        History::from(s.as_str())
    }
}

impl PartialEq<&str> for History {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_view() {
        let mut h = History::new();
        assert!(h.is_empty());
        for c in "ShAaDdFf".chars() {
            h.push(c);
        }
        assert_eq!(h.as_str(), "ShAaDdFf");
        assert_eq!(h.len(), 8);
        assert!(h.starts_with("Sh"));
        assert!(h.contains('D'));
        assert!(!h.contains('r'));
    }

    #[test]
    fn from_str_round_trips() {
        let h = History::from("ShADadFf");
        assert_eq!(h, "ShADadFf");
        assert_eq!(format!("{h}"), "ShADadFf");
        assert_eq!(format!("{h:?}"), "\"ShADadFf\"");
        assert_eq!(History::from(String::from("Sr")).as_str(), "Sr");
    }

    #[test]
    fn capacity_saturates_without_panic() {
        let mut h = History::new();
        for _ in 0..40 {
            h.push('D');
        }
        assert_eq!(h.len(), History::CAPACITY);
        let long = "ShAaDdFfRrShAaDdFfRr";
        let t = History::from(long);
        assert_eq!(t.as_str(), &long[..History::CAPACITY]);
    }

    #[test]
    fn equality_ignores_garbage_tail() {
        // Two identical sequences must compare equal however they were
        // built (derived Eq includes the buffer tail, which stays zeroed).
        let mut a = History::new();
        a.push('S');
        let b = History::from("S");
        assert_eq!(a, b);
        assert_ne!(a, History::new());
    }

    #[test]
    fn non_ascii_is_dropped() {
        let mut h = History::new();
        h.push('é');
        h.push('S');
        assert_eq!(h.as_str(), "S");
    }
}
