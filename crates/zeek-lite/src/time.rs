//! Monotonic capture time.
//!
//! Everything in the pipeline — simulator events, pcap records, log
//! entries — is stamped with nanoseconds since the capture epoch. Newtypes
//! keep instants and spans from being mixed up in analysis arithmetic,
//! which this workspace does a lot of.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant: nanoseconds since the capture epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span: a non-negative number of nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The capture epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Timestamp {
        Timestamp(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for logs and stats).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span from an earlier instant, saturating at zero if `earlier` is
    /// actually later (out-of-order capture timestamps happen).
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from fractional seconds; negative input clamps to zero.
    pub fn from_secs_f64(s: f64) -> Duration {
        if s <= 0.0 {
            Duration(0)
        } else {
            Duration((s * 1e9).round() as u64)
        }
    }

    /// Nanoseconds in the span.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, o: Duration) -> Duration {
        Duration(self.0 + o.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, o: Duration) {
        self.0 += o.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, o: Duration) -> Duration {
        Duration(self.0.saturating_sub(o.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        let d = Duration::from_millis(1500);
        assert_eq!((t + d).nanos(), 11_500_000_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.since(t + d), Duration::ZERO);
        assert_eq!(t - Duration::from_secs(20), Timestamp::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_secs(), 2);
        assert_eq!(Duration::from_micros(1500).as_millis_f64(), 1.5);
        assert_eq!(Duration::from_secs_f64(0.25).nanos(), 250_000_000);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Timestamp::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn display_fixed_precision() {
        assert_eq!(Timestamp::from_millis(1500).to_string(), "1.500000");
        assert_eq!(Duration::from_micros(250).to_string(), "0.000250");
    }

    #[test]
    fn duration_saturating_sub() {
        assert_eq!(Duration::from_secs(1) - Duration::from_secs(2), Duration::ZERO);
    }
}
