//! Zeek-style TSV log serialisation.
//!
//! The reproduced study consumed Bro's `conn.log` and `dns.log`; this
//! module writes and reads the equivalent files so that captures can be
//! processed once and analysed many times (or inspected with awk, like the
//! originals). Layout follows Zeek conventions: `#`-prefixed header lines,
//! one tab-separated record per line, `-` for unset fields.
//!
//! Divergences from Zeek proper (documented, deliberate):
//! * timestamps are written as `seconds.nanoseconds` with full precision so
//!   a written log re-reads to exactly the same in-memory records;
//! * `dns.log` carries the fields the paper's analysis needs (client,
//!   resolver, answers with TTLs) rather than Zeek's full column set.

use crate::dns::{Answer, AnswerData, DnsTransaction};
use crate::history::History;
use crate::time::{Duration, Timestamp};
use crate::tracker::{ConnRecord, ConnState};
use crate::types::{FiveTuple, Proto};
use dns_wire::{Rcode, RrType};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Errors from reading a log file.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A record line did not match the expected schema.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "i/o error: {e}"),
            LogError::BadLine { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

const CONN_FIELDS: &str = "ts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tproto\tservice\tduration\torig_bytes\tresp_bytes\tconn_state\torig_pkts\tresp_pkts\thistory";
const DNS_FIELDS: &str = "ts\tclient\tresolver\ttrans_id\tquery\tqtype\trcode\trtt\tanswers\tttls";

fn fmt_ts(t: Timestamp) -> String {
    format!("{}.{:09}", t.nanos() / 1_000_000_000, t.nanos() % 1_000_000_000)
}

fn fmt_dur(d: Duration) -> String {
    format!("{}.{:09}", d.nanos() / 1_000_000_000, d.nanos() % 1_000_000_000)
}

fn parse_nanos(s: &str, line: usize, what: &str) -> Result<u64, LogError> {
    let bad = || LogError::BadLine { line, what: format!("bad {what}: {s:?}") };
    let (secs, frac) = s.split_once('.').ok_or_else(bad)?;
    let secs: u64 = secs.parse().map_err(|_| bad())?;
    if frac.len() != 9 {
        return Err(bad());
    }
    let nanos: u64 = frac.parse().map_err(|_| bad())?;
    Ok(secs * 1_000_000_000 + nanos)
}

fn parse_field<T: FromStr>(s: &str, line: usize, what: &str) -> Result<T, LogError> {
    s.parse().map_err(|_| LogError::BadLine { line, what: format!("bad {what}: {s:?}") })
}

fn write_conn_header<W: Write>(out: &mut W) -> io::Result<()> {
    writeln!(out, "#separator \\x09")?;
    writeln!(out, "#path\tconn")?;
    writeln!(out, "#fields\t{CONN_FIELDS}")
}

fn write_conn_line<W: Write>(out: &mut W, c: &ConnRecord) -> io::Result<()> {
    writeln!(
        out,
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        fmt_ts(c.ts),
        c.uid,
        c.id.orig_addr,
        c.id.orig_port,
        c.id.resp_addr,
        c.id.resp_port,
        c.id.proto.log_name(),
        c.service.unwrap_or("-"),
        fmt_dur(c.duration),
        c.orig_bytes,
        c.resp_bytes,
        c.state.log_name(),
        c.orig_pkts,
        c.resp_pkts,
        if c.history.is_empty() { "-" } else { &c.history },
    )
}

/// Write a conn.log for the given records.
pub fn write_conn_log<W: Write>(mut out: W, conns: &[ConnRecord]) -> io::Result<()> {
    write_conn_header(&mut out)?;
    for c in conns {
        write_conn_line(&mut out, c)?;
    }
    Ok(())
}

/// Write a conn.log from a columnar projection, via its row views.
/// Byte-identical to [`write_conn_log`] over the rows the projection
/// was built from (both writers share the same line formatter).
pub fn write_conn_log_columns<W: Write>(
    mut out: W,
    cols: &crate::columns::ConnColumns,
) -> io::Result<()> {
    write_conn_header(&mut out)?;
    for c in cols.rows() {
        write_conn_line(&mut out, &c)?;
    }
    Ok(())
}

/// Read a conn.log written by [`write_conn_log`].
pub fn read_conn_log<R: Read>(input: R) -> Result<Vec<ConnRecord>, LogError> {
    let reader = BufReader::new(input);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 15 {
            return Err(LogError::BadLine {
                line: line_no,
                what: format!("expected 15 fields, got {}", f.len()),
            });
        }
        let proto = Proto::from_log_name(f[6]).ok_or_else(|| LogError::BadLine {
            line: line_no,
            what: format!("bad proto {:?}", f[6]),
        })?;
        let state = ConnState::from_log_name(f[11]).ok_or_else(|| LogError::BadLine {
            line: line_no,
            what: format!("bad conn_state {:?}", f[11]),
        })?;
        let id = FiveTuple {
            orig_addr: parse_field(f[2], line_no, "orig_h")?,
            orig_port: parse_field(f[3], line_no, "orig_p")?,
            resp_addr: parse_field(f[4], line_no, "resp_h")?,
            resp_port: parse_field(f[5], line_no, "resp_p")?,
            proto,
        };
        out.push(ConnRecord {
            ts: Timestamp(parse_nanos(f[0], line_no, "ts")?),
            uid: parse_field(f[1], line_no, "uid")?,
            id,
            service: crate::tracker::service_for_port(proto, id.resp_port),
            duration: Duration(parse_nanos(f[8], line_no, "duration")?),
            orig_bytes: parse_field(f[9], line_no, "orig_bytes")?,
            resp_bytes: parse_field(f[10], line_no, "resp_bytes")?,
            state,
            orig_pkts: parse_field(f[12], line_no, "orig_pkts")?,
            resp_pkts: parse_field(f[13], line_no, "resp_pkts")?,
            history: if f[14] == "-" { History::new() } else { History::from(f[14]) },
        });
    }
    Ok(out)
}

fn rcode_from_log(s: &str) -> Option<Rcode> {
    Some(match s {
        "NOERROR" => Rcode::NoError,
        "FORMERR" => Rcode::FormErr,
        "SERVFAIL" => Rcode::ServFail,
        "NXDOMAIN" => Rcode::NxDomain,
        "NOTIMP" => Rcode::NotImp,
        "REFUSED" => Rcode::Refused,
        "OTHER" => Rcode::Other(6),
        _ => return None,
    })
}

fn qtype_from_log(s: &str) -> Option<RrType> {
    Some(match s {
        "A" => RrType::A,
        "NS" => RrType::Ns,
        "CNAME" => RrType::Cname,
        "SOA" => RrType::Soa,
        "PTR" => RrType::Ptr,
        "MX" => RrType::Mx,
        "TXT" => RrType::Txt,
        "AAAA" => RrType::Aaaa,
        "SRV" => RrType::Srv,
        "OPT" => RrType::Opt,
        "HTTPS" => RrType::Https,
        other => RrType::Other(other.strip_prefix("TYPE")?.parse().ok()?),
    })
}

fn answer_to_log(a: &AnswerData) -> String {
    match a {
        AnswerData::Addr(ip) => ip.to_string(),
        AnswerData::Cname(n) => n.clone(),
        AnswerData::Other(t) => format!("<{t}>"),
    }
}

fn answer_from_log(s: &str) -> AnswerData {
    if let Ok(ip) = Ipv4Addr::from_str(s) {
        return AnswerData::Addr(ip);
    }
    if let Some(t) = s.strip_prefix('<').and_then(|s| s.strip_suffix('>')) {
        return AnswerData::Other(t.to_string());
    }
    AnswerData::Cname(s.to_string())
}

/// Write a dns.log for the given transactions.
pub fn write_dns_log<W: Write>(mut out: W, txns: &[DnsTransaction]) -> io::Result<()> {
    writeln!(out, "#separator \\x09")?;
    writeln!(out, "#path\tdns")?;
    writeln!(out, "#fields\t{DNS_FIELDS}")?;
    for t in txns {
        let answers = if t.answers.is_empty() {
            "-".to_string()
        } else {
            t.answers.iter().map(|a| answer_to_log(&a.data)).collect::<Vec<_>>().join(",")
        };
        let ttls = if t.answers.is_empty() {
            "-".to_string()
        } else {
            t.answers.iter().map(|a| a.ttl.to_string()).collect::<Vec<_>>().join(",")
        };
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            fmt_ts(t.ts),
            t.client,
            t.resolver,
            t.trans_id,
            t.query,
            t.qtype.log_name(),
            t.rcode.map(|r| r.log_name()).unwrap_or("-"),
            t.rtt.map(fmt_dur).unwrap_or_else(|| "-".into()),
            answers,
            ttls,
        )?;
    }
    Ok(())
}

/// Read a dns.log written by [`write_dns_log`].
pub fn read_dns_log<R: Read>(input: R) -> Result<Vec<DnsTransaction>, LogError> {
    let reader = BufReader::new(input);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 10 {
            return Err(LogError::BadLine {
                line: line_no,
                what: format!("expected 10 fields, got {}", f.len()),
            });
        }
        let qtype = qtype_from_log(f[5]).ok_or_else(|| LogError::BadLine {
            line: line_no,
            what: format!("bad qtype {:?}", f[5]),
        })?;
        let rcode = if f[6] == "-" {
            None
        } else {
            Some(rcode_from_log(f[6]).ok_or_else(|| LogError::BadLine {
                line: line_no,
                what: format!("bad rcode {:?}", f[6]),
            })?)
        };
        let rtt = if f[7] == "-" {
            None
        } else {
            Some(Duration(parse_nanos(f[7], line_no, "rtt")?))
        };
        let answers = if f[8] == "-" {
            Vec::new()
        } else {
            let datas: Vec<AnswerData> = f[8].split(',').map(answer_from_log).collect();
            let ttls: Vec<u32> = f[9]
                .split(',')
                .map(|s| parse_field(s, line_no, "ttl"))
                .collect::<Result<_, _>>()?;
            if datas.len() != ttls.len() {
                return Err(LogError::BadLine {
                    line: line_no,
                    what: format!("{} answers but {} ttls", datas.len(), ttls.len()),
                });
            }
            datas
                .into_iter()
                .zip(ttls)
                .map(|(data, ttl)| Answer { data, ttl })
                .collect()
        };
        out.push(DnsTransaction {
            ts: Timestamp(parse_nanos(f[0], line_no, "ts")?),
            client: parse_field(f[1], line_no, "client")?,
            resolver: parse_field(f[2], line_no, "resolver")?,
            trans_id: parse_field(f[3], line_no, "trans_id")?,
            query: f[4].to_string(),
            qtype,
            rcode,
            rtt,
            answers,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_conn() -> ConnRecord {
        ConnRecord {
            uid: 42,
            ts: Timestamp(1_234_567_890_123_456_789),
            id: FiveTuple {
                orig_addr: Ipv4Addr::new(10, 1, 1, 2),
                orig_port: 49152,
                resp_addr: Ipv4Addr::new(93, 184, 216, 34),
                resp_port: 443,
                proto: Proto::Tcp,
            },
            duration: Duration::from_millis(2500),
            orig_bytes: 1111,
            resp_bytes: 222_222,
            orig_pkts: 10,
            resp_pkts: 20,
            state: ConnState::SF,
            history: "ShADadFf".into(),
            service: Some("ssl"),
        }
    }

    fn sample_dns() -> DnsTransaction {
        DnsTransaction {
            ts: Timestamp(999_000_000_001),
            client: Ipv4Addr::new(10, 1, 1, 2),
            resolver: Ipv4Addr::new(8, 8, 8, 8),
            trans_id: 7,
            query: "www.example.com".into(),
            qtype: RrType::A,
            rcode: Some(Rcode::NoError),
            rtt: Some(Duration(8_000_001)),
            answers: vec![
                Answer { data: AnswerData::Cname("edge.example.net".into()), ttl: 300 },
                Answer::addr(Ipv4Addr::new(203, 0, 113, 7), 60),
            ],
        }
    }

    #[test]
    fn conn_log_round_trips_exactly() {
        let conns = vec![sample_conn()];
        let mut buf = Vec::new();
        write_conn_log(&mut buf, &conns).unwrap();
        let back = read_conn_log(&buf[..]).unwrap();
        assert_eq!(back, conns);
    }

    #[test]
    fn columnar_conn_writer_is_byte_identical() {
        let mut conns = Vec::new();
        for i in 0..50u64 {
            let mut c = sample_conn();
            c.uid = i;
            c.ts = Timestamp(i * 999_999_937);
            c.history = if i % 3 == 0 { History::new() } else { "ShAaDdFf".into() };
            c.service = if i % 2 == 0 { None } else { Some("ssl") };
            conns.push(c);
        }
        let cols = crate::columns::ConnColumns::from_rows(&conns);
        let (mut by_rows, mut by_cols) = (Vec::new(), Vec::new());
        write_conn_log(&mut by_rows, &conns).unwrap();
        write_conn_log_columns(&mut by_cols, &cols).unwrap();
        assert_eq!(by_rows, by_cols);
    }

    #[test]
    fn dns_log_round_trips_exactly() {
        let txns = vec![sample_dns()];
        let mut buf = Vec::new();
        write_dns_log(&mut buf, &txns).unwrap();
        let back = read_dns_log(&buf[..]).unwrap();
        assert_eq!(back, txns);
    }

    #[test]
    fn unanswered_dns_round_trips() {
        let mut t = sample_dns();
        t.rcode = None;
        t.rtt = None;
        t.answers.clear();
        let mut buf = Vec::new();
        write_dns_log(&mut buf, &[t.clone()]).unwrap();
        let back = read_dns_log(&buf[..]).unwrap();
        assert_eq!(back, vec![t]);
    }

    #[test]
    fn header_lines_are_skipped() {
        let mut buf = Vec::new();
        write_conn_log(&mut buf, &[sample_conn()]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("#separator"));
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 1);
    }

    #[test]
    fn bad_field_count_reported_with_line() {
        let input = "#fields\tts\n1.000000000\tonly_two\n";
        match read_conn_log(input.as_bytes()) {
            Err(LogError::BadLine { line: 2, .. }) => {}
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn bad_timestamp_rejected() {
        let good = {
            let mut buf = Vec::new();
            write_dns_log(&mut buf, &[sample_dns()]).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let corrupted = good.replace("999.000000001", "notatime");
        assert!(read_dns_log(corrupted.as_bytes()).is_err());
    }

    #[test]
    fn qtype_log_names_round_trip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Srv,
            RrType::Opt,
            RrType::Https,
            RrType::Other(999),
        ] {
            assert_eq!(qtype_from_log(&t.log_name()), Some(t), "{t:?}");
        }
        assert_eq!(qtype_from_log("BOGUS"), None);
    }

    #[test]
    fn answer_data_parsing_disambiguates() {
        assert_eq!(
            answer_from_log("203.0.113.7"),
            AnswerData::Addr(Ipv4Addr::new(203, 0, 113, 7))
        );
        assert_eq!(answer_from_log("www.example.com"), AnswerData::Cname("www.example.com".into()));
        assert_eq!(answer_from_log("<TXT>"), AnswerData::Other("TXT".into()));
    }

    #[test]
    fn many_records_round_trip() {
        let mut conns = Vec::new();
        for i in 0..500u64 {
            let mut c = sample_conn();
            c.uid = i;
            c.ts = Timestamp(i * 1_000_000_007);
            c.orig_bytes = i * 13;
            conns.push(c);
        }
        let mut buf = Vec::new();
        write_conn_log(&mut buf, &conns).unwrap();
        assert_eq!(read_conn_log(&buf[..]).unwrap(), conns);
    }
}
