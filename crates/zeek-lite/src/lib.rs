//! A passive network monitor in the spirit of Bro/Zeek.
//!
//! The reproduced study's two datasets are Bro connection summaries and DNS
//! transaction summaries collected at a residential ISP's first aggregation
//! point. This crate rebuilds that observation layer:
//!
//! * [`Monitor`] consumes captured frames (e.g. from a
//!   [`pcapio::PcapReader`]) and produces
//! * [`ConnRecord`]s — TCP connections delineated by SYN/FIN/RST tracking,
//!   UDP "connections" delineated by a 60-second inactivity timeout (Bro's
//!   definition, which the paper adopts; QUIC is implicitly covered as UDP),
//!   with byte counts recovered from TCP sequence space the way Zeek does,
//!   so snaplen-truncated captures still yield correct volumes; and
//! * [`DnsTransaction`]s — query/response pairs matched on (client,
//!   resolver, transaction id, question), with lookup durations and full
//!   answer sets.
//!
//! The record types here are also the lingua franca of the workspace: the
//! traffic simulator can emit them directly (fast path) or via real packets
//! through this monitor (faithful path), and the analysis crates consume
//! them without caring which path produced them.
//!
//! Zeek-style TSV serialisation lives in [`logfmt`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod degradation;
pub mod dns;
pub mod history;
pub mod logfmt;
mod monitor;
pub mod time;
mod tracker;
pub mod types;

pub use columns::{ConnColumns, DnsColumns};
pub use degradation::DegradationStats;
pub use dns::{Answer, AnswerData, DnsTransaction};
pub use history::History;
pub use monitor::{Logs, Monitor, MonitorConfig, MonitorStats};
pub use time::{Duration, Timestamp};
pub use tracker::{ConnRecord, ConnState};
pub use types::{FiveTuple, Proto};
