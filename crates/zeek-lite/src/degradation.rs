//! Soft-error accounting: what the monitor rejected, and why.
//!
//! A production capture point sees damaged input constantly — clipped
//! snaplens, runt frames, flipped bits, malformed DNS. The monitor never
//! crashes on any of it; instead every rejection lands in exactly one
//! bucket here, so an analysis over partial logs can report *how* partial
//! they are. The struct rides on [`Logs`](crate::Logs) and merges
//! shard-wise like every other counter block.

use dns_wire::WireError;
use netpkt::PktError;
use std::fmt;
use xkit::obs::Metrics;

/// Field ↔ metric-name table shared by `to_metrics`, `from_metrics`, and
/// `merge`, so the struct and its obs counters cannot drift apart. Frame
/// rejections live under `zeek.reject.*` and DNS rejections under
/// `zeek.reject_dns.*` (disjoint prefixes, so prefix sums stay layered).
macro_rules! degradation_fields {
    ($mac:ident) => {
        $mac! {
            frames_seen => "zeek.frames_seen",
            frames_accepted => "zeek.frames_accepted",
            truncated_ethernet => "zeek.reject.truncated_ethernet",
            truncated_ipv4 => "zeek.reject.truncated_ipv4",
            truncated_transport => "zeek.reject.truncated_transport",
            unsupported_ethertype => "zeek.reject.unsupported_ethertype",
            not_ipv4 => "zeek.reject.not_ipv4",
            bad_ipv4_header => "zeek.reject.bad_ipv4_header",
            bad_checksum => "zeek.reject.bad_checksum",
            unsupported_protocol => "zeek.reject.unsupported_protocol",
            bad_tcp_offset => "zeek.reject.bad_tcp_offset",
            dns_payloads => "zeek.dns_payloads",
            dns_accepted => "zeek.dns_accepted",
            dns_truncated => "zeek.reject_dns.truncated",
            dns_bad_name => "zeek.reject_dns.bad_name",
            dns_bad_pointer => "zeek.reject_dns.bad_pointer",
            dns_length_mismatch => "zeek.reject_dns.length_mismatch",
            dns_other => "zeek.reject_dns.other",
        }
    };
}

/// Classified counts of every frame and DNS payload the monitor rejected.
///
/// `frames_seen = frames_accepted + sum(frame rejection buckets)` and
/// `dns_payloads = dns_accepted + sum(dns rejection buckets)` hold by
/// construction; the tests assert both.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Frames offered to the monitor.
    pub frames_seen: u64,
    /// Frames that parsed through Ethernet/IPv4/transport.
    pub frames_accepted: u64,
    /// Frame ended inside the Ethernet header.
    pub truncated_ethernet: u64,
    /// Frame ended inside the IPv4 header or its options.
    pub truncated_ipv4: u64,
    /// Frame ended inside the UDP or TCP header.
    pub truncated_transport: u64,
    /// EtherType the monitor does not parse (ARP, IPv6, ...).
    pub unsupported_ethertype: u64,
    /// IP version field was not 4.
    pub not_ipv4: u64,
    /// Structurally bad IPv4 header (IHL/total-length fields).
    pub bad_ipv4_header: u64,
    /// A verified IPv4/UDP/TCP checksum did not match (bit damage).
    pub bad_checksum: u64,
    /// IP protocol that is neither TCP nor UDP.
    pub unsupported_protocol: u64,
    /// TCP data-offset field below the legal minimum.
    pub bad_tcp_offset: u64,
    /// Port-53 payloads offered to the DNS decoder.
    pub dns_payloads: u64,
    /// Payloads that decoded into a DNS message.
    pub dns_accepted: u64,
    /// DNS message ended mid-structure.
    pub dns_truncated: u64,
    /// Malformed name (label/name length, alphabet, empty label).
    pub dns_bad_name: u64,
    /// Bad or reserved compression pointer.
    pub dns_bad_pointer: u64,
    /// RDLENGTH or section-count fields inconsistent with the bytes.
    pub dns_length_mismatch: u64,
    /// Any other DNS decode failure.
    pub dns_other: u64,
}

impl DegradationStats {
    /// Classify one frame-level parse failure into its bucket.
    pub fn record_pkt_error(&mut self, err: &PktError) {
        match err {
            PktError::Truncated { layer, .. } => match *layer {
                "ethernet" => self.truncated_ethernet += 1,
                "ipv4" | "ipv4 options" => self.truncated_ipv4 += 1,
                _ => self.truncated_transport += 1,
            },
            PktError::UnsupportedEtherType(_) => self.unsupported_ethertype += 1,
            PktError::NotIpv4(_) => self.not_ipv4 += 1,
            PktError::BadIhl(_) | PktError::BadTotalLength(_) => self.bad_ipv4_header += 1,
            PktError::BadChecksum { .. } => self.bad_checksum += 1,
            PktError::UnsupportedProtocol(_) => self.unsupported_protocol += 1,
            PktError::BadDataOffset(_) => self.bad_tcp_offset += 1,
        }
    }

    /// Classify one DNS decode failure into its bucket.
    pub fn record_dns_error(&mut self, err: &WireError) {
        match err {
            WireError::Truncated { .. } => self.dns_truncated += 1,
            WireError::LabelTooLong(_)
            | WireError::NameTooLong(_)
            | WireError::BadLabelByte(_)
            | WireError::EmptyLabel
            | WireError::BadNameString(_) => self.dns_bad_name += 1,
            WireError::BadPointer { .. } | WireError::ReservedLabelType(_) => {
                self.dns_bad_pointer += 1
            }
            WireError::RdataLengthMismatch { .. } | WireError::CountMismatch { .. } => {
                self.dns_length_mismatch += 1
            }
            WireError::BadTcpFrame => self.dns_other += 1,
        }
    }

    /// Express the counters as an obs snapshot (the transport every
    /// stage shares); `from_metrics` inverts it exactly.
    pub fn to_metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        macro_rules! emit {
            ($($field:ident => $name:literal,)*) => {
                $( m.add($name, self.$field); )*
            };
        }
        degradation_fields!(emit);
        m
    }

    /// Rebuild the struct view from an obs snapshot (absent counters read
    /// as zero, extra metrics are ignored).
    pub fn from_metrics(m: &Metrics) -> DegradationStats {
        let mut d = DegradationStats::default();
        macro_rules! load {
            ($($field:ident => $name:literal,)*) => {
                $( d.$field = m.counter($name); )*
            };
        }
        degradation_fields!(load);
        d
    }

    /// Fold another capture's (or shard's) counters into this one.
    ///
    /// Routed through the obs snapshot so there is exactly one merge path
    /// for these counters; this struct is a thin view over it.
    pub fn merge(&mut self, other: &DegradationStats) {
        let mut m = self.to_metrics();
        m.merge(&other.to_metrics());
        *self = DegradationStats::from_metrics(&m);
    }

    /// Frames rejected at any layer.
    pub fn frames_rejected(&self) -> u64 {
        self.truncated_ethernet
            + self.truncated_ipv4
            + self.truncated_transport
            + self.unsupported_ethertype
            + self.not_ipv4
            + self.bad_ipv4_header
            + self.bad_checksum
            + self.unsupported_protocol
            + self.bad_tcp_offset
    }

    /// Port-53 payloads the DNS decoder rejected.
    pub fn dns_rejected(&self) -> u64 {
        self.dns_truncated + self.dns_bad_name + self.dns_bad_pointer + self.dns_length_mismatch + self.dns_other
    }

    /// Fraction of offered frames that parsed, in `[0, 1]` (1.0 when no
    /// frames were offered).
    pub fn frame_acceptance(&self) -> f64 {
        if self.frames_seen == 0 {
            1.0
        } else {
            self.frames_accepted as f64 / self.frames_seen as f64
        }
    }

    /// Fraction of port-53 payloads that decoded, in `[0, 1]` (1.0 when
    /// none were offered).
    pub fn dns_acceptance(&self) -> f64 {
        if self.dns_payloads == 0 {
            1.0
        } else {
            self.dns_accepted as f64 / self.dns_payloads as f64
        }
    }

    /// True when nothing was rejected at any layer.
    pub fn is_clean(&self) -> bool {
        self.frames_rejected() == 0 && self.dns_rejected() == 0
    }
}

impl fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "frames: {} seen, {} accepted ({:.2}%), {} rejected",
            self.frames_seen,
            self.frames_accepted,
            self.frame_acceptance() * 100.0,
            self.frames_rejected()
        )?;
        let frame_buckets = [
            ("truncated ethernet", self.truncated_ethernet),
            ("truncated ipv4", self.truncated_ipv4),
            ("truncated transport", self.truncated_transport),
            ("unsupported ethertype", self.unsupported_ethertype),
            ("not ipv4", self.not_ipv4),
            ("bad ipv4 header", self.bad_ipv4_header),
            ("bad checksum", self.bad_checksum),
            ("unsupported protocol", self.unsupported_protocol),
            ("bad tcp offset", self.bad_tcp_offset),
        ];
        for (label, n) in frame_buckets {
            if n > 0 {
                writeln!(f, "  {label}: {n}")?;
            }
        }
        writeln!(
            f,
            "dns payloads: {} seen, {} decoded ({:.2}%), {} rejected",
            self.dns_payloads,
            self.dns_accepted,
            self.dns_acceptance() * 100.0,
            self.dns_rejected()
        )?;
        let dns_buckets = [
            ("truncated", self.dns_truncated),
            ("bad name", self.dns_bad_name),
            ("bad pointer", self.dns_bad_pointer),
            ("length mismatch", self.dns_length_mismatch),
            ("other", self.dns_other),
        ];
        for (label, n) in dns_buckets {
            if n > 0 {
                writeln!(f, "  dns {label}: {n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pkt_error_lands_in_exactly_one_bucket() {
        let errors = [
            PktError::Truncated { layer: "ethernet", need: 14, have: 3 },
            PktError::Truncated { layer: "ipv4", need: 20, have: 6 },
            PktError::Truncated { layer: "ipv4 options", need: 24, have: 21 },
            PktError::Truncated { layer: "udp", need: 8, have: 2 },
            PktError::Truncated { layer: "tcp", need: 20, have: 9 },
            PktError::UnsupportedEtherType(0x0806),
            PktError::NotIpv4(6),
            PktError::BadIhl(3),
            PktError::BadTotalLength(4),
            PktError::BadChecksum { layer: "ipv4" },
            PktError::UnsupportedProtocol(1),
            PktError::BadDataOffset(2),
        ];
        let mut d = DegradationStats::default();
        for e in &errors {
            d.record_pkt_error(e);
        }
        assert_eq!(d.frames_rejected(), errors.len() as u64);
    }

    #[test]
    fn every_wire_error_lands_in_exactly_one_bucket() {
        let errors = [
            WireError::Truncated { context: "header" },
            WireError::LabelTooLong(64),
            WireError::NameTooLong(256),
            WireError::BadLabelByte(0),
            WireError::EmptyLabel,
            WireError::BadPointer { target: 99 },
            WireError::ReservedLabelType(0x40),
            WireError::RdataLengthMismatch { declared: 4, actual: 2 },
            WireError::CountMismatch { section: "answer" },
            WireError::BadTcpFrame,
            WireError::BadNameString("bad!".into()),
        ];
        let mut d = DegradationStats::default();
        for e in &errors {
            d.record_dns_error(e);
        }
        assert_eq!(d.dns_rejected(), errors.len() as u64);
    }

    #[test]
    fn merge_sums_and_acceptance_ratios() {
        let mut a = DegradationStats {
            frames_seen: 10,
            frames_accepted: 8,
            bad_checksum: 2,
            ..Default::default()
        };
        let b = DegradationStats {
            frames_seen: 10,
            frames_accepted: 10,
            dns_payloads: 4,
            dns_accepted: 3,
            dns_truncated: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_seen, 20);
        assert_eq!(a.frames_accepted, 18);
        assert_eq!(a.frames_rejected(), 2);
        assert!((a.frame_acceptance() - 0.9).abs() < 1e-12);
        assert!((a.dns_acceptance() - 0.75).abs() < 1e-12);
        assert!(!a.is_clean());
        assert!(DegradationStats::default().is_clean());
        assert_eq!(DegradationStats::default().frame_acceptance(), 1.0);
    }

    #[test]
    fn metrics_round_trip_is_exact() {
        // Populate every field with a distinct value so a dropped or
        // swapped mapping cannot cancel out.
        let mut d = DegradationStats::default();
        let errors: [PktError; 3] = [
            PktError::Truncated { layer: "ethernet", need: 14, have: 3 },
            PktError::BadChecksum { layer: "ipv4" },
            PktError::NotIpv4(6),
        ];
        for (i, e) in errors.iter().enumerate() {
            for _ in 0..=i {
                d.record_pkt_error(e);
            }
        }
        d.frames_seen = 100;
        d.frames_accepted = 94;
        d.dns_payloads = 40;
        d.dns_accepted = 37;
        d.record_dns_error(&WireError::EmptyLabel);
        d.record_dns_error(&WireError::BadTcpFrame);
        d.record_dns_error(&WireError::BadPointer { target: 9 });
        let m = d.to_metrics();
        assert_eq!(DegradationStats::from_metrics(&m), d);
        // The layered prefixes keep frame and dns rejects separable.
        assert_eq!(m.sum_counters("zeek.reject."), d.frames_rejected());
        assert_eq!(m.sum_counters("zeek.reject_dns."), d.dns_rejected());
        // The struct merge and the metrics merge are the same operation.
        let mut via_struct = d.clone();
        via_struct.merge(&d);
        let mut via_metrics = d.to_metrics();
        via_metrics.merge(&d.to_metrics());
        assert_eq!(via_struct.to_metrics(), via_metrics);
    }

    #[test]
    fn display_lists_only_nonzero_buckets() {
        let d = DegradationStats {
            frames_seen: 5,
            frames_accepted: 4,
            bad_checksum: 1,
            ..Default::default()
        };
        let s = d.to_string();
        assert!(s.contains("bad checksum: 1"));
        assert!(!s.contains("truncated ethernet"));
    }
}
