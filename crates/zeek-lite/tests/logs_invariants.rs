//! Invariants of `Logs::merge` / `sort` / `window`: the shard-merge path
//! must be indistinguishable from a single pass, and windowing must use
//! half-open `[from, to)` bounds with nothing lost or duplicated.

use std::net::Ipv4Addr;
use zeek_lite::{
    Answer, ConnRecord, ConnState, DegradationStats, DnsTransaction, Duration, FiveTuple, Logs,
    Proto, Timestamp,
};

fn conn(ts_ms: u64, uid: u64) -> ConnRecord {
    ConnRecord {
        uid,
        ts: Timestamp::from_millis(ts_ms),
        id: FiveTuple {
            orig_addr: Ipv4Addr::new(10, 0, 0, (uid % 200) as u8 + 1),
            orig_port: 40_000 + uid as u16,
            resp_addr: Ipv4Addr::new(104, 16, 0, 1),
            resp_port: 443,
            proto: Proto::Tcp,
        },
        duration: Duration::from_millis(100),
        orig_bytes: 100,
        resp_bytes: 1_000,
        orig_pkts: 3,
        resp_pkts: 5,
        state: ConnState::SF,
        history: "ShAaFf".into(),
        service: Some("ssl"),
    }
}

fn dns(ts_ms: u64, id: u16) -> DnsTransaction {
    DnsTransaction {
        ts: Timestamp::from_millis(ts_ms),
        client: Ipv4Addr::new(10, 0, 0, 1),
        resolver: Ipv4Addr::new(198, 51, 100, 53),
        trans_id: id,
        query: format!("q{id}.example.com"),
        qtype: dns_wire::RrType::A,
        rcode: Some(dns_wire::Rcode::NoError),
        rtt: Some(Duration::from_millis(5)),
        answers: vec![Answer::addr(Ipv4Addr::new(104, 16, 0, 1), 300)],
    }
}

fn logs_with(conn_ts: &[u64], dns_ts: &[u64]) -> Logs {
    let mut logs = Logs {
        conns: conn_ts.iter().enumerate().map(|(i, &t)| conn(t, i as u64)).collect(),
        dns: dns_ts.iter().enumerate().map(|(i, &t)| dns(t, i as u16)).collect(),
        ..Default::default()
    };
    logs.sort();
    logs
}

#[test]
fn window_bounds_are_half_open() {
    let logs = logs_with(&[999, 1_000, 1_500, 1_999, 2_000], &[1_000, 2_000]);
    let w = logs.window(Timestamp::from_millis(1_000), Timestamp::from_millis(2_000));
    // `from` is included, `to` is not.
    let times: Vec<u64> = w.conns.iter().map(|c| c.ts.nanos() / 1_000_000).collect();
    assert_eq!(times, vec![1_000, 1_500, 1_999]);
    assert_eq!(w.dns.len(), 1);
    assert_eq!(w.dns[0].ts, Timestamp::from_millis(1_000));
}

#[test]
fn adjacent_windows_partition_the_log() {
    let logs = logs_with(&[0, 100, 500, 999, 1_000, 1_700, 2_400], &[50, 1_050, 2_050]);
    let cut = Timestamp::from_millis(1_000);
    let end = Timestamp::from_millis(10_000);
    let lo = logs.window(Timestamp::from_millis(0), cut);
    let hi = logs.window(cut, end);
    assert_eq!(lo.conns.len() + hi.conns.len(), logs.conns.len());
    assert_eq!(lo.dns.len() + hi.dns.len(), logs.dns.len());
    // Re-merging the two windows reproduces the original record streams.
    let mut rejoined = lo;
    rejoined.merge(hi);
    assert_eq!(rejoined.conns, logs.conns);
    assert_eq!(rejoined.dns, logs.dns);
}

#[test]
fn merge_preserves_counts_and_resorts() {
    let a = logs_with(&[5_000, 1_000], &[4_000]);
    let b = logs_with(&[3_000, 2_000], &[500, 6_000]);
    let mut merged = a.clone();
    merged.merge(b.clone());
    assert_eq!(merged.conns.len(), a.conns.len() + b.conns.len());
    assert_eq!(merged.dns.len(), a.dns.len() + b.dns.len());
    assert!(merged.conns.windows(2).all(|w| w[0].ts <= w[1].ts), "conns must be time-sorted");
    assert!(merged.dns.windows(2).all(|w| w[0].ts <= w[1].ts), "dns must be time-sorted");
}

#[test]
fn merge_is_associative_on_record_streams() {
    let a = logs_with(&[1_000], &[100]);
    let b = logs_with(&[2_000], &[200]);
    let c = logs_with(&[3_000], &[300]);
    let mut left = a.clone();
    left.merge(b.clone());
    left.merge(c.clone());
    let mut bc = b;
    bc.merge(c);
    let mut right = a;
    right.merge(bc);
    assert_eq!(left.conns, right.conns);
    assert_eq!(left.dns, right.dns);
    assert_eq!(left.degradation, right.degradation);
}

#[test]
fn merge_sums_degradation_stats() {
    let mut a = logs_with(&[1_000], &[]);
    a.degradation = DegradationStats {
        frames_seen: 10,
        frames_accepted: 8,
        truncated_ipv4: 2,
        dns_payloads: 4,
        dns_accepted: 3,
        dns_truncated: 1,
        ..Default::default()
    };
    let mut b = logs_with(&[2_000], &[]);
    b.degradation = DegradationStats {
        frames_seen: 5,
        frames_accepted: 5,
        dns_payloads: 2,
        dns_accepted: 2,
        ..Default::default()
    };
    a.merge(b);
    assert_eq!(a.degradation.frames_seen, 15);
    assert_eq!(a.degradation.frames_accepted, 13);
    assert_eq!(a.degradation.truncated_ipv4, 2);
    assert_eq!(a.degradation.frames_rejected(), 2);
    assert_eq!(a.degradation.dns_payloads, 6);
    assert_eq!(a.degradation.dns_rejected(), 1);
    assert!(!a.degradation.is_clean());
}

#[test]
fn sort_order_is_total_and_input_order_independent() {
    // Equal timestamps break ties on uid, so the sorted log is a pure
    // function of the record *set* — the property that lets streamed
    // per-epoch releases concatenate into the exact batch log.
    let mut logs = Logs {
        conns: vec![conn(1_000, 7), conn(1_000, 3), conn(500, 9)],
        ..Default::default()
    };
    logs.sort();
    let uids: Vec<u64> = logs.conns.iter().map(|c| c.uid).collect();
    assert_eq!(uids, vec![9, 3, 7]);

    let mut reversed = Logs {
        conns: vec![conn(500, 9), conn(1_000, 3), conn(1_000, 7)],
        ..Default::default()
    };
    reversed.sort();
    assert_eq!(reversed.conns, logs.conns);

    // Same for dns rows with identical stamps: the log_order tiebreak
    // (here: trans_id/query) makes the result accumulation-independent.
    let mut d1 = Logs { dns: vec![dns(1_000, 2), dns(1_000, 1)], ..Default::default() };
    let mut d2 = Logs { dns: vec![dns(1_000, 1), dns(1_000, 2)], ..Default::default() };
    d1.sort();
    d2.sort();
    assert_eq!(d1.dns, d2.dns);
    assert_eq!(d1.dns[0].trans_id, 1);
}
