//! Property tests for the monitor layer: TSV logs round-trip arbitrary
//! records, the tracker's byte accounting is permutation-safe, and the
//! monitor survives arbitrary input frames.

use dns_wire::{Rcode, RrType};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use zeek_lite::{
    logfmt, Answer, AnswerData, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple,
    Monitor, MonitorConfig, Proto, Timestamp,
};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr::from)
}

fn arb_state() -> impl Strategy<Value = ConnState> {
    prop_oneof![
        Just(ConnState::S0),
        Just(ConnState::S1),
        Just(ConnState::SF),
        Just(ConnState::Rej),
        Just(ConnState::RstO),
        Just(ConnState::RstR),
        Just(ConnState::Oth),
    ]
}

fn arb_conn() -> impl Strategy<Value = ConnRecord> {
    (
        any::<u64>(),
        0u64..u32::MAX as u64,
        (arb_addr(), any::<u16>(), arb_addr(), any::<u16>(), any::<bool>()),
        0u64..1u64 << 40,
        0u64..1u64 << 40,
        (0u64..1_000_000, 0u64..1_000_000),
        arb_state(),
        proptest::string::string_regex("[ShAaDdFfRr]{0,8}").unwrap(),
    )
        .prop_map(|(uid, ts_ms, (oa, op, ra, rp, tcp), ob, rb, (opk, rpk), state, history)| {
            let proto = if tcp { Proto::Tcp } else { Proto::Udp };
            ConnRecord {
                uid,
                ts: Timestamp::from_millis(ts_ms),
                id: FiveTuple { orig_addr: oa, orig_port: op, resp_addr: ra, resp_port: rp, proto },
                duration: Duration::from_millis(ts_ms % 100_000),
                orig_bytes: ob,
                resp_bytes: rb,
                orig_pkts: opk,
                resp_pkts: rpk,
                state,
                history,
                service: zeek_lite_service(proto, rp),
            }
        })
}

// Mirror of the monitor's port map (the log reader re-derives service).
fn zeek_lite_service(proto: Proto, port: u16) -> Option<&'static str> {
    match (proto, port) {
        (_, 53) => Some("dns"),
        (_, 853) => Some("dot"),
        (Proto::Tcp, 80) => Some("http"),
        (Proto::Tcp, 443) => Some("ssl"),
        (Proto::Udp, 443) => Some("quic"),
        (Proto::Udp, 123) => Some("ntp"),
        (Proto::Tcp, 25) | (Proto::Tcp, 465) | (Proto::Tcp, 587) => Some("smtp"),
        (Proto::Tcp, 993) => Some("imap"),
        (Proto::Udp, 5353) => Some("mdns"),
        _ => None,
    }
}

fn arb_answer() -> impl Strategy<Value = Answer> {
    (
        prop_oneof![
            arb_addr().prop_map(AnswerData::Addr),
            proptest::string::string_regex("[a-z0-9-]{1,12}(\\.[a-z0-9-]{1,12}){1,3}")
                .unwrap()
                .prop_map(AnswerData::Cname),
            proptest::string::string_regex("[A-Z]{1,6}").unwrap().prop_map(AnswerData::Other),
        ],
        any::<u32>(),
    )
        .prop_map(|(data, ttl)| Answer { data, ttl })
}

fn arb_dns() -> impl Strategy<Value = DnsTransaction> {
    (
        0u64..u32::MAX as u64,
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        proptest::string::string_regex("[a-z0-9_-]{1,16}(\\.[a-z0-9_-]{1,10}){0,3}").unwrap(),
        proptest::option::of((0u64..60_000u64, 0u8..6)),
        proptest::collection::vec(arb_answer(), 0..5),
    )
        .prop_map(|(ts_ms, client, resolver, trans_id, query, answered, answers)| {
            let (rtt, rcode, answers) = match answered {
                Some((rtt_us, rc)) => (
                    Some(Duration::from_micros(rtt_us)),
                    Some(Rcode::from_u8(rc)),
                    answers,
                ),
                None => (None, None, Vec::new()),
            };
            DnsTransaction {
                ts: Timestamp::from_millis(ts_ms),
                client,
                resolver,
                trans_id,
                query,
                qtype: RrType::A,
                rcode,
                rtt,
                answers,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// conn.log round-trips arbitrary records exactly.
    #[test]
    fn conn_log_round_trips(conns in proptest::collection::vec(arb_conn(), 0..30)) {
        let mut buf = Vec::new();
        logfmt::write_conn_log(&mut buf, &conns).unwrap();
        let back = logfmt::read_conn_log(&buf[..]).unwrap();
        prop_assert_eq!(back, conns);
    }

    /// dns.log round-trips arbitrary records exactly.
    #[test]
    fn dns_log_round_trips(txns in proptest::collection::vec(arb_dns(), 0..30)) {
        let mut buf = Vec::new();
        logfmt::write_dns_log(&mut buf, &txns).unwrap();
        let back = logfmt::read_dns_log(&buf[..]).unwrap();
        prop_assert_eq!(back, txns);
    }

    /// The log reader never panics on arbitrary text.
    #[test]
    fn log_reader_never_panics(text in "\\PC{0,400}") {
        let _ = logfmt::read_conn_log(text.as_bytes());
        let _ = logfmt::read_dns_log(text.as_bytes());
    }

    /// The monitor never panics on arbitrary frames.
    #[test]
    fn monitor_survives_fuzz_frames(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..120), 0..30)
    ) {
        let mut m = Monitor::new(MonitorConfig::default());
        for (i, f) in frames.iter().enumerate() {
            m.handle_frame(Timestamp::from_millis(i as u64), f, f.len().max(1) as u32);
        }
        let logs = m.finish();
        prop_assert_eq!(logs.stats.packets as usize, frames.len());
    }

    /// Logs::window returns exactly the in-range records and merge+sort
    /// is permutation-invariant on conn timestamps.
    #[test]
    fn window_selects_in_range(conns in proptest::collection::vec(arb_conn(), 0..40), cut_ms in 0u64..u32::MAX as u64) {
        let mut logs = zeek_lite::Logs { conns, dns: vec![], stats: Default::default() };
        logs.sort();
        let cut = Timestamp::from_millis(cut_ms);
        let early = logs.window(Timestamp::ZERO, cut);
        let late = logs.window(cut, Timestamp(u64::MAX));
        prop_assert_eq!(early.conns.len() + late.conns.len(), logs.conns.len());
        prop_assert!(early.conns.iter().all(|c| c.ts < cut));
        prop_assert!(late.conns.iter().all(|c| c.ts >= cut));
    }
}
