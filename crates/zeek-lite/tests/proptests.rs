//! Randomized tests for the monitor layer: TSV logs round-trip
//! arbitrary records, windowing partitions cleanly, and the monitor
//! survives arbitrary input frames. Cases come from fixed `xkit::rng`
//! streams so every run exercises the same inputs.

use dns_wire::{Rcode, RrType};
use std::net::Ipv4Addr;
use xkit::rng::{RngExt, SeedableRng, StdRng};
use zeek_lite::{
    logfmt, Answer, AnswerData, ConnRecord, ConnState, DnsTransaction, Duration, FiveTuple,
    Monitor, MonitorConfig, Proto, Timestamp,
};

const CASES: usize = 128;

fn rng(label: u64) -> StdRng {
    StdRng::seed_from_u64(0x2EE_C11 ^ label)
}

fn gen_addr(r: &mut StdRng) -> Ipv4Addr {
    Ipv4Addr::from(r.random::<u32>())
}

fn gen_string(r: &mut StdRng, charset: &[u8], min: usize, max: usize) -> String {
    (0..r.random_range(min..=max)).map(|_| *r.choose(charset).unwrap() as char).collect()
}

fn gen_state(r: &mut StdRng) -> ConnState {
    *r.choose(&[
        ConnState::S0,
        ConnState::S1,
        ConnState::SF,
        ConnState::Rej,
        ConnState::RstO,
        ConnState::RstR,
        ConnState::Oth,
    ])
    .unwrap()
}

// Mirror of the monitor's port map (the log reader re-derives service).
fn zeek_lite_service(proto: Proto, port: u16) -> Option<&'static str> {
    match (proto, port) {
        (_, 53) => Some("dns"),
        (_, 853) => Some("dot"),
        (Proto::Tcp, 80) => Some("http"),
        (Proto::Tcp, 443) => Some("ssl"),
        (Proto::Udp, 443) => Some("quic"),
        (Proto::Udp, 123) => Some("ntp"),
        (Proto::Tcp, 25) | (Proto::Tcp, 465) | (Proto::Tcp, 587) => Some("smtp"),
        (Proto::Tcp, 993) => Some("imap"),
        (Proto::Udp, 5353) => Some("mdns"),
        _ => None,
    }
}

fn gen_conn(r: &mut StdRng) -> ConnRecord {
    let proto = if r.random::<bool>() { Proto::Tcp } else { Proto::Udp };
    let ts_ms = r.random_range(0..u32::MAX as u64);
    let resp_port = r.random::<u16>();
    ConnRecord {
        uid: r.random::<u64>(),
        ts: Timestamp::from_millis(ts_ms),
        id: FiveTuple {
            orig_addr: gen_addr(r),
            orig_port: r.random::<u16>(),
            resp_addr: gen_addr(r),
            resp_port,
            proto,
        },
        duration: Duration::from_millis(ts_ms % 100_000),
        orig_bytes: r.random_range(0..1u64 << 40),
        resp_bytes: r.random_range(0..1u64 << 40),
        orig_pkts: r.random_range(0u64..1_000_000),
        resp_pkts: r.random_range(0u64..1_000_000),
        state: gen_state(r),
        history: gen_string(r, b"ShAaDdFfRr", 0, 8).into(),
        service: zeek_lite_service(proto, resp_port),
    }
}

fn gen_answer(r: &mut StdRng) -> Answer {
    let data = match r.random_range(0..3u32) {
        0 => AnswerData::Addr(gen_addr(r)),
        1 => {
            let labels: Vec<String> = (0..r.random_range(2..=4usize))
                .map(|_| gen_string(r, b"abcdefghijklmnopqrstuvwxyz0123456789-", 1, 12))
                .collect();
            AnswerData::Cname(labels.join("."))
        }
        _ => AnswerData::Other(gen_string(r, b"ABCDEFGHIJKLMNOPQRSTUVWXYZ", 1, 6)),
    };
    Answer { data, ttl: r.random::<u32>() }
}

fn gen_dns(r: &mut StdRng) -> DnsTransaction {
    let labels: Vec<String> = std::iter::once(gen_string(r, b"abcdefghijklmnopqrstuvwxyz0123456789_-", 1, 16))
        .chain(
            (0..r.random_range(0..=3usize))
                .map(|_| gen_string(r, b"abcdefghijklmnopqrstuvwxyz0123456789_-", 1, 10)),
        )
        .collect();
    let answered = r.random::<bool>();
    let (rtt, rcode, answers) = if answered {
        (
            Some(Duration::from_micros(r.random_range(0u64..60_000))),
            Some(Rcode::from_u8(r.random_range(0u8..6))),
            (0..r.random_range(0..5usize)).map(|_| gen_answer(r)).collect(),
        )
    } else {
        (None, None, Vec::new())
    };
    DnsTransaction {
        ts: Timestamp::from_millis(r.random_range(0..u32::MAX as u64)),
        client: gen_addr(r),
        resolver: gen_addr(r),
        trans_id: r.random::<u16>(),
        query: labels.join("."),
        qtype: RrType::A,
        rcode,
        rtt,
        answers,
    }
}

/// conn.log round-trips arbitrary records exactly.
#[test]
fn conn_log_round_trips() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let conns: Vec<ConnRecord> =
            (0..r.random_range(0..30usize)).map(|_| gen_conn(&mut r)).collect();
        let mut buf = Vec::new();
        logfmt::write_conn_log(&mut buf, &conns).unwrap();
        let back = logfmt::read_conn_log(&buf[..]).unwrap();
        assert_eq!(back, conns);
    }
}

/// dns.log round-trips arbitrary records exactly.
#[test]
fn dns_log_round_trips() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let txns: Vec<DnsTransaction> =
            (0..r.random_range(0..30usize)).map(|_| gen_dns(&mut r)).collect();
        let mut buf = Vec::new();
        logfmt::write_dns_log(&mut buf, &txns).unwrap();
        let back = logfmt::read_dns_log(&buf[..]).unwrap();
        assert_eq!(back, txns);
    }
}

/// The log reader never panics on arbitrary printable text.
#[test]
fn log_reader_never_panics() {
    let mut r = rng(3);
    // Printable ASCII plus a few multi-byte characters; no control chars
    // beyond the newlines we insert ourselves.
    let pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).chain(['é', 'λ', '中', '\u{2028}']).collect();
    for _ in 0..CASES {
        let mut text: String =
            (0..r.random_range(0..400usize)).map(|_| *r.choose(&pool).unwrap()).collect();
        // Sprinkle line breaks so multi-line parsing paths run too.
        if text.len() > 40 {
            let cut = r.random_range(1..text.len());
            if text.is_char_boundary(cut) {
                text.insert(cut, '\n');
            }
        }
        let _ = logfmt::read_conn_log(text.as_bytes());
        let _ = logfmt::read_dns_log(text.as_bytes());
    }
}

/// The monitor never panics on arbitrary frames.
#[test]
fn monitor_survives_fuzz_frames() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let frames: Vec<Vec<u8>> = (0..r.random_range(0..30usize))
            .map(|_| (0..r.random_range(0..120usize)).map(|_| r.random::<u8>()).collect())
            .collect();
        let mut m = Monitor::new(MonitorConfig::default());
        for (i, f) in frames.iter().enumerate() {
            m.handle_frame(Timestamp::from_millis(i as u64), f, f.len().max(1) as u32);
        }
        let logs = m.finish();
        assert_eq!(logs.stats.packets as usize, frames.len());
    }
}

/// Logs::window returns exactly the in-range records and merge+sort
/// is permutation-invariant on conn timestamps.
#[test]
fn window_selects_in_range() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let conns: Vec<ConnRecord> =
            (0..r.random_range(0..40usize)).map(|_| gen_conn(&mut r)).collect();
        let cut_ms = r.random_range(0..u32::MAX as u64);
        let mut logs = zeek_lite::Logs { conns, dns: vec![], ..Default::default() };
        logs.sort();
        let cut = Timestamp::from_millis(cut_ms);
        let early = logs.window(Timestamp::ZERO, cut);
        let late = logs.window(cut, Timestamp(u64::MAX));
        assert_eq!(early.conns.len() + late.conns.len(), logs.conns.len());
        assert!(early.conns.iter().all(|c| c.ts < cut));
        assert!(late.conns.iter().all(|c| c.ts >= cut));
    }
}
