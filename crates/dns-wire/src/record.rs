use crate::rdata::RData;
use crate::{Name, WireError};
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record (RR) types understood by the codec.
///
/// Unknown types are preserved numerically so a passive monitor never drops
/// a record it cannot interpret.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum RrType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    Srv,
    Opt,
    Https,
    Other(u16),
}

impl RrType {
    /// Numeric TYPE value.
    pub fn to_u16(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Srv => 33,
            RrType::Opt => 41,
            RrType::Https => 65,
            RrType::Other(v) => v,
        }
    }

    /// Decode from the numeric TYPE value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            33 => RrType::Srv,
            41 => RrType::Opt,
            65 => RrType::Https,
            other => RrType::Other(other),
        }
    }

    /// Textual name used in Zeek-style logs.
    pub fn log_name(self) -> String {
        match self {
            RrType::A => "A".into(),
            RrType::Ns => "NS".into(),
            RrType::Cname => "CNAME".into(),
            RrType::Soa => "SOA".into(),
            RrType::Ptr => "PTR".into(),
            RrType::Mx => "MX".into(),
            RrType::Txt => "TXT".into(),
            RrType::Aaaa => "AAAA".into(),
            RrType::Srv => "SRV".into(),
            RrType::Opt => "OPT".into(),
            RrType::Https => "HTTPS".into(),
            RrType::Other(v) => format!("TYPE{v}"),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.log_name())
    }
}

/// DNS record classes. `In` covers all real resolution traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RrClass {
    In,
    Ch,
    Hs,
    Any,
    Other(u16),
}

impl RrClass {
    /// Numeric CLASS value.
    pub fn to_u16(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Ch => 3,
            RrClass::Hs => 4,
            RrClass::Any => 255,
            RrClass::Other(v) => v,
        }
    }

    /// Decode from the numeric CLASS value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RrClass::In,
            3 => RrClass::Ch,
            4 => RrClass::Hs,
            255 => RrClass::Any,
            other => RrClass::Other(other),
        }
    }
}

/// A resource record: owner name, class, TTL and typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name the record is about.
    pub name: Name,
    /// Record class (always `In` in resolution traffic).
    pub class: RrClass,
    /// Time-to-live in seconds.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for an A record.
    pub fn a(name: Name, ttl: u32, addr: Ipv4Addr) -> Record {
        Record {
            name,
            class: RrClass::In,
            ttl,
            rdata: RData::A(addr),
        }
    }

    /// Convenience constructor for an AAAA record.
    pub fn aaaa(name: Name, ttl: u32, addr: Ipv6Addr) -> Record {
        Record {
            name,
            class: RrClass::In,
            ttl,
            rdata: RData::Aaaa(addr),
        }
    }

    /// Convenience constructor for a CNAME record.
    pub fn cname(name: Name, ttl: u32, target: Name) -> Record {
        Record {
            name,
            class: RrClass::In,
            ttl,
            rdata: RData::Cname(target),
        }
    }

    /// The record's type code, derived from its RDATA.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    /// Encode with name compression, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>, compressor: &mut HashMap<Name, usize>) {
        self.name.encode_compressed(out, compressor);
        out.extend_from_slice(&self.rtype().to_u16().to_be_bytes());
        out.extend_from_slice(&self.class.to_u16().to_be_bytes());
        out.extend_from_slice(&self.ttl.to_be_bytes());
        // Reserve RDLENGTH, encode RDATA, then backfill the length.
        let len_pos = out.len();
        out.extend_from_slice(&[0, 0]);
        self.rdata.encode(out, compressor);
        let rdlen = out.len() - len_pos - 2;
        debug_assert!(rdlen <= u16::MAX as usize);
        out[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
    }

    /// Decode one record starting at `*pos` within `msg`.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Record, WireError> {
        let name = Name::decode(msg, pos)?;
        let fixed = msg
            .get(*pos..*pos + 10)
            .ok_or(WireError::Truncated { context: "record fixed fields" })?;
        let rtype = RrType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
        let class = RrClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
        let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
        let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
        *pos += 10;
        let rdata_start = *pos;
        let rdata_end = rdata_start + rdlen;
        if msg.len() < rdata_end {
            return Err(WireError::Truncated { context: "rdata" });
        }
        let rdata = RData::decode(msg, rdata_start, rdlen, rtype)?;
        *pos = rdata_end;
        Ok(Record { name, class, ttl, rdata })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtype_round_trip() {
        for v in 0u16..100 {
            assert_eq!(RrType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RrType::from_u16(1), RrType::A);
        assert_eq!(RrType::Other(4711).to_u16(), 4711);
    }

    #[test]
    fn class_round_trip() {
        for v in [1u16, 3, 4, 255, 77] {
            assert_eq!(RrClass::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn a_record_round_trip() {
        let r = Record::a(Name::parse("x.test").unwrap(), 60, Ipv4Addr::new(10, 0, 0, 1));
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        r.encode(&mut buf, &mut comp);
        let mut pos = 0;
        let back = Record::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, r);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_rdata_rejected() {
        let r = Record::a(Name::parse("x.test").unwrap(), 60, Ipv4Addr::new(10, 0, 0, 1));
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        r.encode(&mut buf, &mut comp);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(Record::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn rrtype_log_names() {
        assert_eq!(RrType::A.log_name(), "A");
        assert_eq!(RrType::Other(99).log_name(), "TYPE99");
    }
}
