use std::fmt;

/// Errors produced while encoding or decoding DNS wire data.
///
/// A passive monitor feeds arbitrary captured bytes into the decoder, so
/// every malformed input maps to a variant here instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded when the data ran out.
        context: &'static str,
    },
    /// A label exceeded 63 octets (RFC 1035 §2.3.4).
    LabelTooLong(usize),
    /// An encoded name exceeded 255 octets (RFC 1035 §2.3.4).
    NameTooLong(usize),
    /// A label contained a byte outside the accepted hostname alphabet.
    BadLabelByte(u8),
    /// An empty label appeared somewhere other than the root position.
    EmptyLabel,
    /// A compression pointer pointed at or after its own position,
    /// or the pointer chain exceeded the loop budget.
    BadPointer {
        /// Offset the pointer referenced.
        target: usize,
    },
    /// The two high bits of a length octet were `01` or `10`, which RFC 1035
    /// reserves for future use.
    ReservedLabelType(u8),
    /// RDATA length did not match the actual RDATA encoding.
    RdataLengthMismatch {
        /// Declared RDLENGTH.
        declared: usize,
        /// Bytes actually present/consumed.
        actual: usize,
    },
    /// A count field in the header promised more records than the message holds.
    CountMismatch {
        /// Which section was short.
        section: &'static str,
    },
    /// TCP length prefix promised more bytes than are available.
    BadTcpFrame,
    /// A name string passed to [`crate::Name::parse`] was not a valid hostname.
    BadNameString(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { context } => write!(f, "truncated message while decoding {context}"),
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadLabelByte(b) => write!(f, "byte {b:#04x} not allowed in a label"),
            WireError::EmptyLabel => write!(f, "empty label inside a name"),
            WireError::BadPointer { target } => write!(f, "bad compression pointer to offset {target}"),
            WireError::ReservedLabelType(b) => write!(f, "reserved label type in length octet {b:#04x}"),
            WireError::RdataLengthMismatch { declared, actual } => {
                write!(f, "rdata length mismatch: declared {declared}, actual {actual}")
            }
            WireError::CountMismatch { section } => write!(f, "header count exceeds records in {section}"),
            WireError::BadTcpFrame => write!(f, "TCP length prefix inconsistent with payload"),
            WireError::BadNameString(s) => write!(f, "invalid domain name string {s:?}"),
        }
    }
}

impl std::error::Error for WireError {}
