//! The 2-byte length framing used when DNS runs over TCP (RFC 1035 §4.2.2).
//!
//! The CCZ dataset is UDP-only, but a monitor must still recognise TCP DNS,
//! so the framing lives here and is exercised by the monitor's tests.

use crate::WireError;

/// Prefix `payload` with its big-endian 16-bit length.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= u16::MAX as usize);
    let mut out = Vec::with_capacity(payload.len() + 2);
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Split one length-prefixed message off the front of `buf`.
///
/// Returns the message payload and the remaining bytes, or `Ok(None)` if
/// the buffer does not yet hold a complete message (streaming callers
/// accumulate and retry).
pub fn deframe(buf: &[u8]) -> Result<Option<(&[u8], &[u8])>, WireError> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if buf.len() - 2 < len {
        return Ok(None);
    }
    let (msg, rest) = buf[2..].split_at(len);
    Ok(Some((msg, rest)))
}

/// Split a buffer into all complete framed messages, erroring on a
/// trailing partial frame (used when a whole TCP stream has been captured).
pub fn deframe_all(mut buf: &[u8]) -> Result<Vec<&[u8]>, WireError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        match deframe(buf)? {
            Some((msg, rest)) => {
                out.push(msg);
                buf = rest;
            }
            None => return Err(WireError::BadTcpFrame),
        }
    }
    Ok(out)
}

/// Incremental deframer for DNS-over-TCP byte streams.
///
/// Feed arbitrarily-sized chunks (as a capture or socket delivers them);
/// complete messages come out as they finish. Holds at most one partial
/// message of buffered bytes.
#[derive(Debug, Default)]
pub struct Deframer {
    buf: Vec<u8>,
}

impl Deframer {
    /// An empty deframer.
    pub fn new() -> Deframer {
        Deframer::default()
    }

    /// Append stream bytes and pull out every now-complete message.
    pub fn push(&mut self, chunk: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(chunk);
        let mut out = Vec::new();
        loop {
            match deframe(&self.buf) {
                Ok(Some((msg, rest))) => {
                    out.push(msg.to_vec()); // owned-fallback: stream reassembly must buffer across chunks
                    self.buf = rest.to_vec(); // owned-fallback: stream reassembly must buffer across chunks
                }
                _ => break,
            }
        }
        out
    }

    /// Bytes currently buffered (a partial frame, or nothing).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// True when the stream ended mid-message.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deframer_handles_arbitrary_chunking() {
        let mut stream = Vec::new();
        let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; (i as usize) * 7 + 1]).collect();
        for m in &msgs {
            stream.extend(frame(m));
        }
        // Feed one byte at a time — the worst case.
        let mut d = Deframer::new();
        let mut got = Vec::new();
        for b in &stream {
            got.extend(d.push(&[*b]));
        }
        assert_eq!(got, msgs);
        assert!(!d.has_partial());
    }

    #[test]
    fn deframer_reports_partial_tail() {
        let mut d = Deframer::new();
        let framed = frame(b"hello");
        assert!(d.push(&framed[..4]).is_empty());
        assert!(d.has_partial());
        assert_eq!(d.pending(), 4);
        let got = d.push(&framed[4..]);
        assert_eq!(got, vec![b"hello".to_vec()]);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn frame_deframe_round_trip() {
        let payload = b"hello dns";
        let framed = frame(payload);
        let (msg, rest) = deframe(&framed).unwrap().unwrap();
        assert_eq!(msg, payload);
        assert!(rest.is_empty());
    }

    #[test]
    fn incomplete_returns_none() {
        assert_eq!(deframe(&[0]).unwrap(), None);
        assert_eq!(deframe(&[0, 5, 1, 2]).unwrap(), None);
    }

    #[test]
    fn deframe_all_multiple() {
        let mut buf = frame(b"one");
        buf.extend(frame(b"two"));
        let msgs = deframe_all(&buf).unwrap();
        assert_eq!(msgs, vec![b"one".as_ref(), b"two".as_ref()]);
    }

    #[test]
    fn deframe_all_trailing_partial_is_error() {
        let mut buf = frame(b"one");
        buf.extend_from_slice(&[0, 9, 1]);
        assert!(deframe_all(&buf).is_err());
    }

    #[test]
    fn empty_payload() {
        let framed = frame(b"");
        let (msg, rest) = deframe(&framed).unwrap().unwrap();
        assert!(msg.is_empty());
        assert!(rest.is_empty());
    }
}
