use crate::WireError;

/// Size of the fixed DNS header (RFC 1035 §4.1.1).
pub const HEADER_LEN: usize = 12;

/// DNS opcodes relevant to a monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query (the only opcode in normal resolution traffic).
    Query,
    /// Inverse query (obsolete, still seen in the wild).
    IQuery,
    /// Server status request.
    Status,
    /// Zone change notification (RFC 1996).
    Notify,
    /// Dynamic update (RFC 2136).
    Update,
    /// Anything else, preserved numerically.
    Other(u8),
}

impl Opcode {
    /// Numeric value as carried in the header.
    pub fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(v) => v & 0x0F,
        }
    }

    /// Decode from the 4-bit field.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// DNS response codes (RFC 1035 §4.1.1, extended by later RFCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused by policy.
    Refused,
    /// Anything else, preserved numerically.
    Other(u8),
}

impl Rcode {
    /// Numeric value as carried in the header.
    pub fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    /// Decode from the 4-bit field.
    pub fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }

    /// Zeek-style textual name used in dns.log.
    pub fn log_name(self) -> &'static str {
        match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
            Rcode::Other(_) => "OTHER",
        }
    }
}

/// The flag bits of the DNS header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags {
    /// Query (false) or response (true).
    pub qr: bool,
    /// Kind of query.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated — response exceeded the transport limit.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Flags {
    /// Flags for a standard recursive query.
    pub fn query() -> Self {
        Flags {
            qr: false,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: Rcode::NoError,
        }
    }

    /// Flags for a recursive resolver's response.
    pub fn response(rcode: Rcode) -> Self {
        Flags {
            qr: true,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: true,
            rcode,
        }
    }

    /// Pack into the 16-bit wire field.
    pub fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.qr {
            v |= 1 << 15;
        }
        v |= (self.opcode.to_u8() as u16) << 11;
        if self.aa {
            v |= 1 << 10;
        }
        if self.tc {
            v |= 1 << 9;
        }
        if self.rd {
            v |= 1 << 8;
        }
        if self.ra {
            v |= 1 << 7;
        }
        v |= self.rcode.to_u8() as u16;
        v
    }

    /// Unpack from the 16-bit wire field. Reserved Z bits are ignored, as
    /// resolvers do in practice.
    pub fn from_u16(v: u16) -> Self {
        Flags {
            qr: v & (1 << 15) != 0,
            opcode: Opcode::from_u8((v >> 11) as u8),
            aa: v & (1 << 10) != 0,
            tc: v & (1 << 9) != 0,
            rd: v & (1 << 8) != 0,
            ra: v & (1 << 7) != 0,
            rcode: Rcode::from_u8(v as u8),
        }
    }
}

/// The fixed 12-octet DNS message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier chosen by the querier.
    pub id: u16,
    /// Flag bits.
    pub flags: Flags,
    /// Entries in the question section.
    pub qdcount: u16,
    /// Entries in the answer section.
    pub ancount: u16,
    /// Entries in the authority section.
    pub nscount: u16,
    /// Entries in the additional section.
    pub arcount: u16,
}

impl Header {
    /// Encode into 12 octets appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.to_u16().to_be_bytes());
        out.extend_from_slice(&self.qdcount.to_be_bytes());
        out.extend_from_slice(&self.ancount.to_be_bytes());
        out.extend_from_slice(&self.nscount.to_be_bytes());
        out.extend_from_slice(&self.arcount.to_be_bytes());
    }

    /// Decode from the first 12 octets of `msg`.
    pub fn decode(msg: &[u8]) -> Result<Self, WireError> {
        if msg.len() < HEADER_LEN {
            return Err(WireError::Truncated { context: "header" });
        }
        let rd = |i: usize| u16::from_be_bytes([msg[i], msg[i + 1]]);
        Ok(Header {
            id: rd(0),
            flags: Flags::from_u16(rd(2)),
            qdcount: rd(4),
            ancount: rd(6),
            nscount: rd(8),
            arcount: rd(10),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip_all_combinations() {
        for qr in [false, true] {
            for aa in [false, true] {
                for tc in [false, true] {
                    for rd in [false, true] {
                        for ra in [false, true] {
                            for rc in 0u8..16 {
                                let f = Flags {
                                    qr,
                                    opcode: Opcode::Query,
                                    aa,
                                    tc,
                                    rd,
                                    ra,
                                    rcode: Rcode::from_u8(rc),
                                };
                                assert_eq!(Flags::from_u16(f.to_u16()), f);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn opcode_round_trip() {
        for v in 0u8..16 {
            assert_eq!(Opcode::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn header_round_trip() {
        let h = Header {
            id: 0xBEEF,
            flags: Flags::response(Rcode::NxDomain),
            qdcount: 1,
            ancount: 2,
            nscount: 3,
            arcount: 4,
        };
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn short_header_rejected() {
        assert!(Header::decode(&[0u8; 11]).is_err());
    }

    #[test]
    fn rcode_log_names() {
        assert_eq!(Rcode::NoError.log_name(), "NOERROR");
        assert_eq!(Rcode::NxDomain.log_name(), "NXDOMAIN");
    }
}
