use crate::header::{Flags, Header, Rcode};
use crate::question::Question;
use crate::record::Record;
use crate::{Name, RrType, WireError};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A complete DNS message: header plus the four record sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Header flag bits.
    pub flags: Flags,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section.
    pub additionals: Vec<Record>,
}

impl Message {
    /// Build a standard recursive query for `name`/`rtype`.
    pub fn query(id: u16, name: Name, rtype: RrType) -> Message {
        Message {
            id,
            flags: Flags::query(),
            questions: vec![Question::new(name, rtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Start a response to this query: same id and question, response
    /// flags, empty record sections for the caller to fill.
    pub fn answer_template(&self) -> Message {
        Message {
            id: self.id,
            flags: Flags::response(Rcode::NoError),
            questions: self.questions.clone(), // owned-fallback: response builder (simulator side), not the decode path
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build a negative (NXDOMAIN) response to this query, carrying the
    /// zone's SOA in the authority section as RFC 2308 negative caching
    /// requires — the SOA's MINIMUM bounds how long the non-existence may
    /// be cached.
    pub fn nxdomain_response(&self, zone: Name, soa: crate::SoaData) -> Message {
        let mut m = self.answer_template();
        m.flags.rcode = Rcode::NxDomain;
        let negative_ttl = soa.minimum;
        m.authorities.push(Record {
            name: zone,
            class: crate::RrClass::In,
            ttl: negative_ttl,
            rdata: crate::RData::Soa(soa),
        });
        m
    }

    /// True when `self` is a plausible response to `query`: response bit
    /// set, matching transaction id, and a matching first question —
    /// the checks a stub resolver applies before accepting an answer.
    pub fn is_response_to(&self, query: &Message) -> bool {
        self.flags.qr
            && !query.flags.qr
            && self.id == query.id
            && match (self.questions.first(), query.questions.first()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
    }

    /// All IPv4 addresses in the answer section (following the convention
    /// that CNAME chains terminate in A records within the same response).
    pub fn answer_ipv4(&self) -> Vec<Ipv4Addr> {
        self.answers.iter().filter_map(|r| r.rdata.as_ipv4()).collect()
    }

    /// The first question's name, if any — what passive monitors log as the
    /// query string.
    pub fn query_name(&self) -> Option<&Name> {
        self.questions.first().map(|q| &q.name)
    }

    /// Minimum TTL across answer records, or `None` for an empty answer
    /// section. This is the effective lifetime of the response as a unit.
    pub fn min_answer_ttl(&self) -> Option<u32> {
        self.answers.iter().map(|r| r.ttl).min()
    }

    /// Encode to wire format with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        Header {
            id: self.id,
            flags: self.flags,
            qdcount: self.questions.len() as u16,
            ancount: self.answers.len() as u16,
            nscount: self.authorities.len() as u16,
            arcount: self.additionals.len() as u16,
        }
        .encode(&mut out);
        let mut comp: HashMap<Name, usize> = HashMap::new();
        for q in &self.questions {
            q.encode(&mut out, &mut comp);
        }
        for r in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            r.encode(&mut out, &mut comp);
        }
        out
    }

    /// Decode a message from wire format.
    ///
    /// Trailing bytes after the records promised by the header are ignored
    /// (they occur in the wild, e.g. TSIG-stripped messages); short
    /// sections are an error.
    pub fn decode(msg: &[u8]) -> Result<Message, WireError> {
        let header = Header::decode(msg)?;
        let mut pos = crate::header::HEADER_LEN;
        let mut questions = Vec::with_capacity(header.qdcount as usize);
        for _ in 0..header.qdcount {
            questions.push(
                Question::decode(msg, &mut pos)
                    .map_err(|_| WireError::CountMismatch { section: "question" })?,
            );
        }
        let mut decode_section = |count: u16, section: &'static str| -> Result<Vec<Record>, WireError> {
            let mut records = Vec::with_capacity(count as usize);
            for _ in 0..count {
                records.push(Record::decode(msg, &mut pos).map_err(|e| match e {
                    WireError::Truncated { .. } => WireError::CountMismatch { section },
                    other => other,
                })?);
            }
            Ok(records)
        };
        let answers = decode_section(header.ancount, "answer")?;
        let authorities = decode_section(header.nscount, "authority")?;
        let additionals = decode_section(header.arcount, "additional")?;
        Ok(Message {
            id: header.id,
            flags: header.flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::RData;

    fn sample_response() -> Message {
        let q = Message::query(7, Name::parse("www.example.com").unwrap(), RrType::A);
        let mut m = q.answer_template();
        m.answers.push(Record::cname(
            Name::parse("www.example.com").unwrap(),
            3600,
            Name::parse("edge.cdn.example.net").unwrap(),
        ));
        m.answers.push(Record::a(
            Name::parse("edge.cdn.example.net").unwrap(),
            30,
            Ipv4Addr::new(203, 0, 113, 7),
        ));
        m.authorities.push(Record {
            name: Name::parse("cdn.example.net").unwrap(),
            class: crate::RrClass::In,
            ttl: 86400,
            rdata: RData::Ns(Name::parse("ns1.cdn.example.net").unwrap()),
        });
        m.additionals.push(Record::a(
            Name::parse("ns1.cdn.example.net").unwrap(),
            86400,
            Ipv4Addr::new(198, 51, 100, 53),
        ));
        m
    }

    #[test]
    fn full_message_round_trip() {
        let m = sample_response();
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn compression_shrinks_message() {
        let m = sample_response();
        let compressed = m.encode();
        // Rough check: shared example.net suffixes must compress.
        let uncompressed_len: usize = 12
            + m.questions.iter().map(|q| q.name.wire_len() + 4).sum::<usize>()
            + m.answers
                .iter()
                .chain(&m.authorities)
                .chain(&m.additionals)
                .map(|r| r.name.wire_len() + 10 + 64)
                .sum::<usize>();
        assert!(compressed.len() < uncompressed_len);
    }

    #[test]
    fn query_helpers() {
        let m = sample_response();
        assert_eq!(m.query_name().unwrap().to_string(), "www.example.com");
        assert_eq!(m.answer_ipv4(), vec![Ipv4Addr::new(203, 0, 113, 7)]);
        assert_eq!(m.min_answer_ttl(), Some(30));
        assert_eq!(Message::query(1, Name::root(), RrType::A).min_answer_ttl(), None);
    }

    #[test]
    fn header_counts_must_match_body() {
        let m = sample_response();
        let mut wire = m.encode();
        // Claim one more answer than present.
        wire[7] += 1;
        assert!(matches!(
            Message::decode(&wire),
            Err(WireError::CountMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_tolerated() {
        let m = sample_response();
        let mut wire = m.encode();
        wire.extend_from_slice(&[0xDE, 0xAD]);
        assert_eq!(Message::decode(&wire).unwrap(), m);
    }

    #[test]
    fn empty_message_decodes() {
        let m = Message {
            id: 0,
            flags: Flags::query(),
            questions: vec![],
            answers: vec![],
            authorities: vec![],
            additionals: vec![],
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn nxdomain_response_carries_soa() {
        let q = Message::query(9, Name::parse("missing.example.com").unwrap(), RrType::A);
        let soa = crate::SoaData {
            mname: Name::parse("ns1.example.com").unwrap(),
            rname: Name::parse("hostmaster.example.com").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        };
        let resp = q.nxdomain_response(Name::parse("example.com").unwrap(), soa);
        assert_eq!(resp.flags.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
        assert_eq!(resp.authorities[0].ttl, 300, "negative ttl = SOA minimum");
        // Round-trips on the wire.
        let back = Message::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
        assert!(back.is_response_to(&q));
    }

    #[test]
    fn is_response_to_rejects_mismatches() {
        let q = Message::query(7, Name::parse("a.example.com").unwrap(), RrType::A);
        let mut good = q.answer_template();
        assert!(good.is_response_to(&q));

        let mut wrong_id = good.clone();
        wrong_id.id = 8;
        assert!(!wrong_id.is_response_to(&q));

        let mut wrong_q = good.clone();
        wrong_q.questions[0].name = Name::parse("b.example.com").unwrap();
        assert!(!wrong_q.is_response_to(&q));

        good.flags.qr = false; // not a response at all
        assert!(!good.is_response_to(&q));
        let q2 = {
            let mut m = q.clone();
            m.flags.qr = true; // "query" that is actually a response
            m
        };
        assert!(!q.answer_template().is_response_to(&q2));
    }

    #[test]
    fn garbage_rejected_not_panic() {
        for len in 0..64 {
            let buf: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
            let _ = Message::decode(&buf); // must not panic
        }
    }
}
