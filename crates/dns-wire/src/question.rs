use crate::record::{RrClass, RrType};
use crate::{Name, WireError};
use std::collections::HashMap;

/// One entry of the question section (RFC 1035 §4.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Name being asked about.
    pub name: Name,
    /// Type being asked for.
    pub rtype: RrType,
    /// Class (always `In` in resolution traffic).
    pub rclass: RrClass,
}

impl Question {
    /// A standard Internet-class question.
    pub fn new(name: Name, rtype: RrType) -> Question {
        Question {
            name,
            rtype,
            rclass: RrClass::In,
        }
    }

    /// Encode with name compression, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>, compressor: &mut HashMap<Name, usize>) {
        self.name.encode_compressed(out, compressor);
        out.extend_from_slice(&self.rtype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.rclass.to_u16().to_be_bytes());
    }

    /// Decode one question starting at `*pos` within `msg`.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Question, WireError> {
        let name = Name::decode(msg, pos)?;
        let fixed = msg
            .get(*pos..*pos + 4)
            .ok_or(WireError::Truncated { context: "question fixed fields" })?;
        let rtype = RrType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
        let rclass = RrClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
        *pos += 4;
        Ok(Question { name, rtype, rclass })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let q = Question::new(Name::parse("www.example.com").unwrap(), RrType::Aaaa);
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        q.encode(&mut buf, &mut comp);
        let mut pos = 0;
        assert_eq!(Question::decode(&buf, &mut pos).unwrap(), q);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_rejected() {
        let q = Question::new(Name::parse("a.b").unwrap(), RrType::A);
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        q.encode(&mut buf, &mut comp);
        buf.truncate(buf.len() - 2);
        let mut pos = 0;
        assert!(Question::decode(&buf, &mut pos).is_err());
    }
}
