//! RFC 1034/1035 DNS wire format.
//!
//! This crate implements the subset of the DNS protocol needed by a passive
//! network monitor and a traffic simulator:
//!
//! * [`Name`] — domain names with the RFC 1035 length limits, case-insensitive
//!   comparison, and wire encoding/decoding including message compression
//!   pointers (§4.1.4).
//! * [`Message`] / [`Header`] / [`Question`] / [`Record`] — full message
//!   encode and decode for the common record types (see [`RData`]).
//! * [`tcp_frame`] — the 2-byte length prefix used for DNS over TCP (§4.2.2).
//!
//! The codec is strict on decode (malformed packets return [`WireError`]
//! rather than panicking — a passive monitor must survive arbitrary input)
//! and canonical on encode (names are compressed against earlier
//! occurrences, as real resolvers do).
//!
//! # Example
//!
//! ```
//! use dns_wire::{Message, Name, Record, RrType};
//! use std::net::Ipv4Addr;
//!
//! let q = Message::query(0x1234, Name::parse("www.example.com").unwrap(), RrType::A);
//! let wire = q.encode();
//! let back = Message::decode(&wire).unwrap();
//! assert_eq!(back.questions[0].name.to_string(), "www.example.com");
//!
//! let mut resp = back.answer_template();
//! resp.answers.push(Record::a(
//!     Name::parse("www.example.com").unwrap(),
//!     300,
//!     Ipv4Addr::new(93, 184, 216, 34),
//! ));
//! let wire = resp.encode();
//! assert!(wire.len() < 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod header;
mod message;
mod name;
mod question;
mod rdata;
mod record;
pub mod tcp_frame;

pub use error::WireError;
pub use header::{Flags, Header, Opcode, Rcode};
pub use message::Message;
pub use name::Name;
pub use question::Question;
pub use rdata::{RData, SoaData, SrvData};
pub use record::{Record, RrClass, RrType};

/// Maximum length of a DNS message carried over UDP without EDNS (RFC 1035 §2.3.4).
pub const MAX_UDP_PAYLOAD: usize = 512;

/// Conventional DNS server port.
pub const DNS_PORT: u16 = 53;

/// DNS-over-TLS port (RFC 7858). The monitor checks that no traffic uses it.
pub const DOT_PORT: u16 = 853;
