use crate::WireError;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum total encoded length of a name, including the root octet.
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of one label.
pub const MAX_LABEL_LEN: usize = 63;
/// Upper bound on compression-pointer hops while decoding one name.
const MAX_POINTER_HOPS: usize = 64;

/// A fully-qualified domain name.
///
/// Stored as lower-cased labels (DNS names compare case-insensitively,
/// RFC 1035 §2.3.3; we normalise on construction so `Eq`/`Hash` are cheap).
/// The root name has zero labels and displays as `.`.
#[derive(Clone, Eq)]
pub struct Name {
    labels: Vec<Box<[u8]>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse a presentation-format name such as `"www.example.com"`.
    ///
    /// A single trailing dot is accepted and ignored. Labels must be
    /// non-empty, at most 63 octets, and drawn from the letter/digit/hyphen/
    /// underscore alphabet (underscore appears in real traffic for SRV and
    /// DKIM names, so a monitor must accept it).
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        let mut total = 1usize; // root octet
        for raw in s.split('.') {
            if raw.is_empty() {
                return Err(WireError::EmptyLabel);
            }
            if raw.len() > MAX_LABEL_LEN {
                return Err(WireError::LabelTooLong(raw.len()));
            }
            for &b in raw.as_bytes() {
                if !label_byte_ok(b) {
                    return Err(WireError::BadNameString(s.to_string()));
                }
            }
            total += 1 + raw.len();
            labels.push(raw.to_ascii_lowercase().into_bytes().into_boxed_slice());
        }
        if total > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(total));
        }
        Ok(Name { labels })
    }

    /// Construct from already-validated labels. Used by the decoder.
    fn from_labels(labels: Vec<Box<[u8]>>) -> Self {
        Name { labels }
    }

    /// Number of labels (zero for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterate over the labels, most-specific first.
    pub fn labels(&self) -> impl Iterator<Item = &[u8]> {
        self.labels.iter().map(|l| l.as_ref())
    }

    /// Encoded length on the wire without compression.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// True if `self` is a subdomain of (or equal to) `ancestor`.
    pub fn is_within(&self, ancestor: &Name) -> bool {
        if ancestor.labels.len() > self.labels.len() {
            return false;
        }
        self.labels
            .iter()
            .rev()
            .zip(ancestor.labels.iter().rev())
            .all(|(a, b)| a == b)
    }

    /// The parent name (one label removed), or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            return None;
        }
        Some(Name {
            labels: self.labels[1..].to_vec(), // owned-fallback: analysis-time name algebra, not per-frame decode
        })
    }

    /// Prepend a label, returning the child name.
    pub fn child(&self, label: &str) -> Result<Name, WireError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        if label.is_empty() {
            return Err(WireError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(label.len()));
        }
        for &b in label.as_bytes() {
            if !label_byte_ok(b) {
                return Err(WireError::BadNameString(label.to_string()));
            }
        }
        labels.push(label.to_ascii_lowercase().into_bytes().into_boxed_slice());
        labels.extend_from_slice(&self.labels);
        let n = Name { labels };
        if n.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(n.wire_len()));
        }
        Ok(n)
    }

    /// The registrable-suffix heuristic used by log analysis: the last two
    /// labels (e.g. `example.com` for `www.example.com`). Names with fewer
    /// than two labels return themselves.
    pub fn base_domain(&self) -> Name {
        if self.labels.len() <= 2 {
            return self.clone(); // owned-fallback: analysis-time name algebra, not per-frame decode
        }
        Name {
            labels: self.labels[self.labels.len() - 2..].to_vec(), // owned-fallback: analysis-time name algebra
        }
    }

    /// Encode without compression, appending to `out`.
    pub fn encode_uncompressed(&self, out: &mut Vec<u8>) {
        for l in &self.labels {
            out.push(l.len() as u8);
            out.extend_from_slice(l);
        }
        out.push(0);
    }

    /// Encode with message compression.
    ///
    /// `compressor` maps previously-emitted names (as suffix strings) to
    /// their offsets. Offsets beyond the 14-bit pointer range are not
    /// registered, per RFC 1035 §4.1.4.
    pub fn encode_compressed(&self, out: &mut Vec<u8>, compressor: &mut HashMap<Name, usize>) {
        // Walk suffixes from the full name down; emit labels until a known
        // suffix is found, then emit a pointer.
        let mut idx = 0usize;
        while idx < self.labels.len() {
            let suffix = Name {
                labels: self.labels[idx..].to_vec(), // owned-fallback: encoder (simulator side), not the decode path
            };
            if let Some(&off) = compressor.get(&suffix) {
                debug_assert!(off < 0x4000);
                out.push(0xC0 | ((off >> 8) as u8));
                out.push((off & 0xFF) as u8);
                return;
            }
            if out.len() < 0x4000 {
                compressor.insert(suffix, out.len());
            }
            let l = &self.labels[idx];
            out.push(l.len() as u8);
            out.extend_from_slice(l);
            idx += 1;
        }
        out.push(0);
    }

    /// Decode a name starting at `*pos` within `msg` (the whole message,
    /// needed to chase compression pointers). Advances `*pos` past the name
    /// as it appears at the original location.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut cursor = *pos;
        let mut jumped = false;
        let mut hops = 0usize;
        let mut total = 1usize;
        loop {
            let len_octet = *msg
                .get(cursor)
                .ok_or(WireError::Truncated { context: "name length octet" })?;
            match len_octet & 0xC0 {
                0x00 => {
                    if len_octet == 0 {
                        if !jumped {
                            *pos = cursor + 1;
                        }
                        return Ok(Name::from_labels(labels));
                    }
                    let len = len_octet as usize;
                    let start = cursor + 1;
                    let end = start + len;
                    let bytes = msg
                        .get(start..end)
                        .ok_or(WireError::Truncated { context: "name label" })?;
                    total += 1 + len;
                    if total > MAX_NAME_LEN {
                        return Err(WireError::NameTooLong(total));
                    }
                    labels.push(bytes.to_ascii_lowercase().into_boxed_slice());
                    cursor = end;
                }
                0xC0 => {
                    let second = *msg
                        .get(cursor + 1)
                        .ok_or(WireError::Truncated { context: "pointer second octet" })?;
                    let target = (((len_octet & 0x3F) as usize) << 8) | second as usize;
                    // Pointers must reference earlier data; this also bounds
                    // the chase together with the hop budget.
                    if target >= cursor {
                        return Err(WireError::BadPointer { target });
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer { target });
                    }
                    if !jumped {
                        *pos = cursor + 2;
                        jumped = true;
                    }
                    cursor = target;
                }
                other => return Err(WireError::ReservedLabelType(other)),
            }
        }
    }

    /// True if this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }
}

fn label_byte_ok(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_'
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels == other.labels
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.labels.hash(state)
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Canonical DNS ordering: compare label sequences from the root down.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.labels
            .iter()
            .rev()
            .cmp(other.labels.iter().rev())
            .then(self.labels.len().cmp(&other.labels.len()))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in l.iter() {
                write!(f, "{}", b as char)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({self})")
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let n = Name::parse("WWW.Example.COM").unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn trailing_dot_accepted() {
        assert_eq!(Name::parse("a.b.").unwrap(), Name::parse("a.b").unwrap());
    }

    #[test]
    fn root_name() {
        let r = Name::parse("").unwrap();
        assert!(r.is_root());
        assert_eq!(r.to_string(), ".");
        assert_eq!(r.wire_len(), 1);
    }

    #[test]
    fn rejects_empty_interior_label() {
        assert!(matches!(Name::parse("a..b"), Err(WireError::EmptyLabel)));
    }

    #[test]
    fn rejects_long_label() {
        let l = "x".repeat(64);
        assert!(matches!(Name::parse(&l), Err(WireError::LabelTooLong(64))));
    }

    #[test]
    fn rejects_long_name() {
        let n = (0..40).map(|_| "abcdef").collect::<Vec<_>>().join(".");
        assert!(matches!(Name::parse(&n), Err(WireError::NameTooLong(_))));
    }

    #[test]
    fn rejects_bad_bytes() {
        assert!(Name::parse("exa mple.com").is_err());
        assert!(Name::parse("exa\u{7f}mple.com").is_err());
    }

    #[test]
    fn underscore_allowed() {
        assert!(Name::parse("_dmarc.example.com").is_ok());
    }

    #[test]
    fn case_insensitive_eq_and_hash() {
        use std::collections::HashSet;
        let a = Name::parse("A.B.C").unwrap();
        let b = Name::parse("a.b.c").unwrap();
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    fn uncompressed_encode_decode_round_trip() {
        let n = Name::parse("mail.example.org").unwrap();
        let mut buf = Vec::new();
        n.encode_uncompressed(&mut buf);
        assert_eq!(buf.len(), n.wire_len());
        let mut pos = 0;
        let back = Name::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, n);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compression_emits_pointer_for_shared_suffix() {
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        let a = Name::parse("www.example.com").unwrap();
        let b = Name::parse("mail.example.com").unwrap();
        a.encode_compressed(&mut buf, &mut comp);
        let len_a = buf.len();
        b.encode_compressed(&mut buf, &mut comp);
        // "mail" label (5) + 2-byte pointer
        assert_eq!(buf.len() - len_a, 5 + 2);
        let mut pos = 0;
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), a);
        assert_eq!(pos, len_a);
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), b);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn identical_name_compresses_to_single_pointer() {
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        let a = Name::parse("www.example.com").unwrap();
        a.encode_compressed(&mut buf, &mut comp);
        let len_a = buf.len();
        a.encode_compressed(&mut buf, &mut comp);
        assert_eq!(buf.len() - len_a, 2);
    }

    #[test]
    fn forward_pointer_rejected() {
        // Pointer to its own offset.
        let buf = [0xC0, 0x00];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn pointer_loop_rejected() {
        // Two pointers that point at each other.
        let buf = [0xC0, 0x02, 0xC0, 0x00];
        let mut pos = 2;
        assert!(Name::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_label_rejected() {
        let buf = [5, b'a', b'b'];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn reserved_label_type_rejected() {
        let buf = [0x80, 0x00];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::ReservedLabelType(_))
        ));
    }

    #[test]
    fn is_within_and_parent() {
        let n = Name::parse("a.b.example.com").unwrap();
        let anc = Name::parse("example.com").unwrap();
        assert!(n.is_within(&anc));
        assert!(n.is_within(&n));
        assert!(!anc.is_within(&n));
        assert_eq!(n.parent().unwrap().to_string(), "b.example.com");
        assert!(Name::root().parent().is_none());
        assert!(n.is_within(&Name::root()));
    }

    #[test]
    fn child_builds_down() {
        let n = Name::parse("example.com").unwrap();
        assert_eq!(n.child("www").unwrap().to_string(), "www.example.com");
        assert!(n.child("").is_err());
    }

    #[test]
    fn base_domain() {
        assert_eq!(
            Name::parse("a.b.example.com").unwrap().base_domain().to_string(),
            "example.com"
        );
        assert_eq!(Name::parse("com").unwrap().base_domain().to_string(), "com");
    }

    #[test]
    fn canonical_ordering_groups_by_suffix() {
        let mut v = vec![
            Name::parse("b.com").unwrap(),
            Name::parse("a.org").unwrap(),
            Name::parse("a.com").unwrap(),
        ];
        v.sort();
        let s: Vec<String> = v.iter().map(|n| n.to_string()).collect();
        assert_eq!(s, vec!["a.com", "b.com", "a.org"]);
    }
}
