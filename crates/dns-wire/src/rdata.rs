use crate::record::RrType;
use crate::{Name, WireError};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// SOA record data (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaData {
    /// Primary nameserver for the zone.
    pub mname: Name,
    /// Mailbox of the person responsible for the zone.
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry limit, seconds.
    pub expire: u32,
    /// Negative-caching TTL (RFC 2308).
    pub minimum: u32,
}

/// SRV record data (RFC 2782).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvData {
    /// Selection priority (lower preferred).
    pub priority: u16,
    /// Selection weight among equal priorities.
    pub weight: u16,
    /// Service port.
    pub port: u16,
    /// Target host.
    pub target: Name,
}

/// Typed record data for the supported record types.
///
/// Types the codec does not interpret are preserved as raw bytes in
/// [`RData::Unknown`], so round-tripping a message never loses data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Canonical-name alias.
    Cname(Name),
    /// Delegation to a nameserver.
    Ns(Name),
    /// Reverse-mapping pointer.
    Ptr(Name),
    /// Mail exchanger: preference and host.
    Mx(u16, Name),
    /// Text strings (each at most 255 octets on the wire).
    Txt(Vec<Vec<u8>>),
    /// Start of authority.
    Soa(SoaData),
    /// Service locator.
    Srv(SrvData),
    /// EDNS(0) pseudo-record payload, kept opaque.
    Opt(Vec<u8>),
    /// Any other type: numeric type code plus raw RDATA bytes.
    Unknown(u16, Vec<u8>),
}

impl RData {
    /// The TYPE code this data encodes as.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Cname(_) => RrType::Cname,
            RData::Ns(_) => RrType::Ns,
            RData::Ptr(_) => RrType::Ptr,
            RData::Mx(..) => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Soa(_) => RrType::Soa,
            RData::Srv(_) => RrType::Srv,
            RData::Opt(_) => RrType::Opt,
            RData::Unknown(t, _) => RrType::from_u16(*t),
        }
    }

    /// The IPv4 address if this is an A record.
    pub fn as_ipv4(&self) -> Option<Ipv4Addr> {
        match self {
            RData::A(a) => Some(*a),
            _ => None,
        }
    }

    /// Encode RDATA (without the RDLENGTH prefix) appending to `out`.
    ///
    /// Names inside NS/CNAME/PTR/MX/SOA/SRV participate in compression,
    /// matching common server behaviour.
    pub fn encode(&self, out: &mut Vec<u8>, compressor: &mut HashMap<Name, usize>) {
        match self {
            RData::A(a) => out.extend_from_slice(&a.octets()),
            RData::Aaaa(a) => out.extend_from_slice(&a.octets()),
            RData::Cname(n) | RData::Ns(n) | RData::Ptr(n) => n.encode_compressed(out, compressor),
            RData::Mx(pref, n) => {
                out.extend_from_slice(&pref.to_be_bytes());
                n.encode_compressed(out, compressor);
            }
            RData::Txt(strings) => {
                for s in strings {
                    debug_assert!(s.len() <= 255);
                    out.push(s.len() as u8);
                    out.extend_from_slice(s);
                }
            }
            RData::Soa(soa) => {
                soa.mname.encode_compressed(out, compressor);
                soa.rname.encode_compressed(out, compressor);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Srv(srv) => {
                out.extend_from_slice(&srv.priority.to_be_bytes());
                out.extend_from_slice(&srv.weight.to_be_bytes());
                out.extend_from_slice(&srv.port.to_be_bytes());
                // RFC 2782: the SRV target must not be compressed.
                srv.target.encode_uncompressed(out);
            }
            RData::Opt(raw) | RData::Unknown(_, raw) => out.extend_from_slice(raw),
        }
    }

    /// Decode `rdlen` bytes of RDATA at `start` within the full message
    /// `msg` (the full message is required because RDATA names may contain
    /// compression pointers into earlier sections).
    pub fn decode(msg: &[u8], start: usize, rdlen: usize, rtype: RrType) -> Result<RData, WireError> {
        let end = start + rdlen;
        let raw = &msg[start..end];
        let exact = |want: usize| -> Result<(), WireError> {
            if rdlen != want {
                Err(WireError::RdataLengthMismatch { declared: rdlen, actual: want })
            } else {
                Ok(())
            }
        };
        match rtype {
            RrType::A => {
                exact(4)?;
                Ok(RData::A(Ipv4Addr::new(raw[0], raw[1], raw[2], raw[3])))
            }
            RrType::Aaaa => {
                exact(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(raw);
                Ok(RData::Aaaa(Ipv6Addr::from(o)))
            }
            RrType::Cname | RrType::Ns | RrType::Ptr => {
                let mut pos = start;
                let n = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(WireError::RdataLengthMismatch { declared: rdlen, actual: pos - start });
                }
                Ok(match rtype {
                    RrType::Cname => RData::Cname(n),
                    RrType::Ns => RData::Ns(n),
                    _ => RData::Ptr(n),
                })
            }
            RrType::Mx => {
                if rdlen < 3 {
                    return Err(WireError::Truncated { context: "MX rdata" });
                }
                let pref = u16::from_be_bytes([raw[0], raw[1]]);
                let mut pos = start + 2;
                let n = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(WireError::RdataLengthMismatch { declared: rdlen, actual: pos - start });
                }
                Ok(RData::Mx(pref, n))
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                let mut i = 0usize;
                while i < raw.len() {
                    let l = raw[i] as usize;
                    i += 1;
                    let s = raw
                        .get(i..i + l)
                        .ok_or(WireError::Truncated { context: "TXT string" })?;
                    strings.push(s.to_vec()); // owned-fallback: TXT strings outlive the message buffer by design
                    i += l;
                }
                Ok(RData::Txt(strings))
            }
            RrType::Soa => {
                let mut pos = start;
                let mname = Name::decode(msg, &mut pos)?;
                let rname = Name::decode(msg, &mut pos)?;
                let fixed = msg
                    .get(pos..pos + 20)
                    .ok_or(WireError::Truncated { context: "SOA counters" })?;
                let rd = |i: usize| u32::from_be_bytes([fixed[i], fixed[i + 1], fixed[i + 2], fixed[i + 3]]);
                pos += 20;
                if pos != end {
                    return Err(WireError::RdataLengthMismatch { declared: rdlen, actual: pos - start });
                }
                Ok(RData::Soa(SoaData {
                    mname,
                    rname,
                    serial: rd(0),
                    refresh: rd(4),
                    retry: rd(8),
                    expire: rd(12),
                    minimum: rd(16),
                }))
            }
            RrType::Srv => {
                if rdlen < 7 {
                    return Err(WireError::Truncated { context: "SRV rdata" });
                }
                let mut pos = start + 6;
                let target = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(WireError::RdataLengthMismatch { declared: rdlen, actual: pos - start });
                }
                Ok(RData::Srv(SrvData {
                    priority: u16::from_be_bytes([raw[0], raw[1]]),
                    weight: u16::from_be_bytes([raw[2], raw[3]]),
                    port: u16::from_be_bytes([raw[4], raw[5]]),
                    target,
                }))
            }
            RrType::Opt => Ok(RData::Opt(raw.to_vec())), // owned-fallback: opaque rdata kept owned
            other => Ok(RData::Unknown(other.to_u16(), raw.to_vec())), // owned-fallback: opaque rdata kept owned
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rd: RData) {
        let mut buf = Vec::new();
        let mut comp = HashMap::new();
        let rtype = rd.rtype();
        rd.encode(&mut buf, &mut comp);
        let back = RData::decode(&buf, 0, buf.len(), rtype).unwrap();
        assert_eq!(back, rd);
    }

    #[test]
    fn round_trip_all_types() {
        round_trip(RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        round_trip(RData::Aaaa("2001:db8::1".parse().unwrap()));
        round_trip(RData::Cname(Name::parse("alias.example.com").unwrap()));
        round_trip(RData::Ns(Name::parse("ns1.example.com").unwrap()));
        round_trip(RData::Ptr(Name::parse("host.example.com").unwrap()));
        round_trip(RData::Mx(10, Name::parse("mx.example.com").unwrap()));
        round_trip(RData::Txt(vec![b"v=spf1 -all".to_vec(), b"second".to_vec()]));
        round_trip(RData::Soa(SoaData {
            mname: Name::parse("ns1.example.com").unwrap(),
            rname: Name::parse("hostmaster.example.com").unwrap(),
            serial: 2019020601,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }));
        round_trip(RData::Srv(SrvData {
            priority: 0,
            weight: 5,
            port: 5060,
            target: Name::parse("sip.example.com").unwrap(),
        }));
        round_trip(RData::Opt(vec![0, 1, 2, 3]));
        round_trip(RData::Unknown(4711, vec![9, 9, 9]));
    }

    #[test]
    fn a_with_wrong_length_rejected() {
        let buf = [1, 2, 3];
        assert!(matches!(
            RData::decode(&buf, 0, 3, RrType::A),
            Err(WireError::RdataLengthMismatch { declared: 3, actual: 4 })
        ));
    }

    #[test]
    fn txt_with_truncated_string_rejected() {
        let buf = [5, b'a', b'b'];
        assert!(RData::decode(&buf, 0, 3, RrType::Txt).is_err());
    }

    #[test]
    fn cname_with_trailing_garbage_rejected() {
        let mut buf = Vec::new();
        Name::parse("a.b").unwrap().encode_uncompressed(&mut buf);
        buf.push(0xFF);
        assert!(RData::decode(&buf, 0, buf.len(), RrType::Cname).is_err());
    }

    #[test]
    fn as_ipv4() {
        assert_eq!(
            RData::A(Ipv4Addr::new(1, 2, 3, 4)).as_ipv4(),
            Some(Ipv4Addr::new(1, 2, 3, 4))
        );
        assert_eq!(RData::Txt(vec![]).as_ipv4(), None);
    }
}
