//! Seeded fuzz smoke test: arbitrary bytes through the message decoder.
//!
//! The decoder's contract is total (`Ok` or typed `Err`, never a panic)
//! and every accepted message must survive an encode → decode round trip
//! unchanged — otherwise the monitor and the simulator would disagree
//! about what was on the wire.

use dns_wire::{tcp_frame, Message, Name, Record, RrType};
use std::net::Ipv4Addr;
use xkit::rng::{RngExt, SeedableRng, StdRng};

/// Decode, and if accepted, assert the round trip is lossless.
fn check(buf: &[u8]) {
    if let Ok(msg) = Message::decode(buf) {
        let enc = msg.encode();
        let back = Message::decode(&enc).expect("re-encoded message must decode");
        assert_eq!(back, msg, "encode/decode round trip changed the message");
    }
}

#[test]
fn random_buffers_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xD15);
    for _ in 0..10_000 {
        let len = rng.random_range(0..96usize);
        let buf: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        check(&buf);
    }
}

#[test]
fn mutated_valid_messages_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let base = {
        let q = Message::query(42, Name::parse("fuzz.example.com").unwrap(), RrType::A);
        let mut resp = q.answer_template();
        resp.answers.push(Record::a(
            Name::parse("fuzz.example.com").unwrap(),
            300,
            Ipv4Addr::new(192, 0, 2, 1),
        ));
        resp.encode()
    };
    for _ in 0..10_000 {
        let mut buf = base.clone();
        for _ in 0..rng.random_range(1..5usize) {
            let i = rng.random_range(0..buf.len());
            buf[i] = rng.random::<u8>();
        }
        if rng.random_bool(0.3) {
            buf.truncate(rng.random_range(0..buf.len() + 1));
        }
        check(&buf);
    }
}

#[test]
fn random_tcp_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x7C9);
    for _ in 0..5_000 {
        let len = rng.random_range(0..64usize);
        let buf: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        if let Ok(msgs) = tcp_frame::deframe_all(&buf) {
            for m in msgs {
                check(m);
            }
        }
        let mut d = tcp_frame::Deframer::new();
        for chunk in buf.chunks(7) {
            for m in d.push(chunk) {
                check(&m);
            }
        }
    }
}
